#!/usr/bin/env bash
# Bench trajectory gate: rerun every micro-bench suite and diff the
# fresh `results/BENCH_<suite>.json` reports against the committed
# baselines in `results/baselines/`.
#
#   ci/bench_diff.sh              # report only
#   ci/bench_diff.sh --fail-over 25   # exit 1 on any >25% regression
#
# Knobs pass through to the harness: WASLA_BENCH_SAMPLES,
# WASLA_BENCH_TARGET_MS (lower both for a quick smoke run) and
# WASLA_THREADS. Refresh the baselines after an intentional perf
# change with:
#
#   cp results/BENCH_*.json results/baselines/
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== rerun micro-bench suites (offline) =="
cargo bench --offline

echo
echo "== diff against results/baselines/ =="
cargo run --release --offline --bin repro -- bench-diff "$@"
