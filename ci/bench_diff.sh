#!/usr/bin/env bash
# Bench trajectory gate: rerun every micro-bench suite and diff the
# fresh `results/BENCH_<suite>.json` reports against the committed
# baselines in `results/baselines/`.
#
#   ci/bench_diff.sh              # report only
#   ci/bench_diff.sh --fail-over 25   # exit 1 on any >25% regression
#
# Knobs pass through to the harness: WASLA_BENCH_SAMPLES,
# WASLA_BENCH_TARGET_MS (lower both for a quick smoke run) and
# WASLA_THREADS. Refresh the baselines after an intentional perf
# change with:
#
#   cp results/BENCH_*.json results/baselines/
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== rerun micro-bench suites (offline) =="
cargo bench --offline

echo
echo "== diff against results/baselines/ =="
cargo run --release --offline --bin repro -- bench-diff "$@"

echo
echo "== eval-engine speedup gate (nlp_gradient sweep) =="
# The incremental evaluation engine (DESIGN.md §10) must keep the full
# LSE gradient at least 5x faster than the from-scratch path on the
# gradient-heavy N=128, M=16 configuration. Reads the freshly written
# solver report; the harness emits "id" then "median_ns" lines per
# bench, so a small awk state machine pairs them up.
median_of() {
    awk -v want="\"$1\"" '
        /"id":/       { id = $2; sub(/,$/, "", id) }
        /"median_ns":/ && id == want { v = $2; sub(/,$/, "", v); print v; exit }
    ' "results/BENCH_${2:-solver}.json"
}
engine_ns=$(median_of "nlp_gradient_engine/n128_m16")
scratch_ns=$(median_of "nlp_gradient_scratch/n128_m16")
if [ -z "$engine_ns" ] || [ -z "$scratch_ns" ]; then
    echo "error: nlp_gradient sweep missing from results/BENCH_solver.json" >&2
    echo "(expected nlp_gradient_engine/n128_m16 and nlp_gradient_scratch/n128_m16)" >&2
    exit 1
fi
ratio=$(awk -v s="$scratch_ns" -v e="$engine_ns" 'BEGIN { printf "%.1f", s / e }')
echo "nlp_gradient n128_m16: scratch ${scratch_ns} ns / engine ${engine_ns} ns = ${ratio}x"
if awk -v s="$scratch_ns" -v e="$engine_ns" 'BEGIN { exit !(s / e >= 5.0) }'; then
    echo "speedup gate passed (>= 5x)"
else
    echo "error: eval-engine speedup ${ratio}x is below the 5x gate" >&2
    exit 1
fi

echo
echo "== analytic-gradient speedup gate (gradient sweep) =="
# The analytic gradient (DESIGN.md §15) must keep one objective
# gradient at least 5x cheaper than the structured-FD path it retired
# from the solver hot loop, on the same gradient-heavy N=128, M=16
# configuration the engine gate uses. Both numbers come from the same
# fresh run of the gradient suite, so machine drift cancels out.
analytic_ns=$(median_of "gradient_analytic/n128_m16" gradient)
fd_delta_ns=$(median_of "gradient_fd_delta/n128_m16" gradient)
if [ -z "$analytic_ns" ] || [ -z "$fd_delta_ns" ]; then
    echo "error: gradient sweep missing from results/BENCH_gradient.json" >&2
    echo "(expected gradient_analytic/n128_m16 and gradient_fd_delta/n128_m16)" >&2
    exit 1
fi
ratio=$(awk -v f="$fd_delta_ns" -v a="$analytic_ns" 'BEGIN { printf "%.1f", f / a }')
echo "gradient n128_m16: fd_delta ${fd_delta_ns} ns / analytic ${analytic_ns} ns = ${ratio}x"
if awk -v f="$fd_delta_ns" -v a="$analytic_ns" 'BEGIN { exit !(f / a >= 5.0) }'; then
    echo "analytic-gradient gate passed (>= 5x)"
else
    echo "error: analytic gradient speedup ${ratio}x is below the 5x gate" >&2
    exit 1
fi
# End-to-end verdict (report only): the per-gradient win must be
# visible in complete solves where gradient work dominates.
solve_analytic_ns=$(median_of "gradient_solve/analytic_n128_m16" gradient)
solve_fd_ns=$(median_of "gradient_solve/fd_n128_m16" gradient)
if [ -n "$solve_analytic_ns" ] && [ -n "$solve_fd_ns" ]; then
    ratio=$(awk -v f="$solve_fd_ns" -v a="$solve_analytic_ns" 'BEGIN { printf "%.2f", f / a }')
    echo "solve n128_m16: fd ${solve_fd_ns} ns / analytic ${solve_analytic_ns} ns = ${ratio}x faster end-to-end"
fi

echo
echo "== streamed-ingest gate (op-log chunked reader) =="
# Streaming an op-log through the chunked reader (DESIGN.md §12) must
# not lose to materializing the trace first: same fit, strictly less
# copying. Compared at a single thread so pool overhead cancels out;
# 1.25x of slack absorbs wall-clock noise.
streamed_ns=$(median_of "oplog_ingest_streamed/threads1" ingest)
materialized_ns=$(median_of "oplog_ingest_materialized/threads1" ingest)
if [ -z "$streamed_ns" ] || [ -z "$materialized_ns" ]; then
    echo "error: ingest sweep missing from results/BENCH_ingest.json" >&2
    echo "(expected oplog_ingest_streamed/threads1 and oplog_ingest_materialized/threads1)" >&2
    exit 1
fi
ratio=$(awk -v m="$materialized_ns" -v s="$streamed_ns" 'BEGIN { printf "%.2f", s / m }')
echo "oplog ingest threads1: streamed ${streamed_ns} ns / materialized ${materialized_ns} ns = ${ratio}x"
if awk -v m="$materialized_ns" -v s="$streamed_ns" 'BEGIN { exit !(s <= 1.25 * m) }'; then
    echo "ingest gate passed (streamed <= 1.25x materialized)"
else
    echo "error: streamed ingestion is ${ratio}x the materialized path (gate: 1.25x)" >&2
    exit 1
fi

echo
echo "== objective-trait overhead gate (weighted vs raw gradient) =="
# The pluggable-objective refactor (DESIGN.md §13) routes the solver's
# LSE gradient through LayoutObjective weights; the raw pre-refactor
# min-max entry points are benched in the same run, and the default
# MinMax objective must stay within 1.05x of them. In-run comparison,
# so machine drift cancels out.
for size in n32_m4 n128_m4; do
    raw_ns=$(median_of "objective_gradient/raw_${size}" objectives)
    weighted_ns=$(median_of "objective_gradient/minmax_${size}" objectives)
    if [ -z "$raw_ns" ] || [ -z "$weighted_ns" ]; then
        echo "error: objective gradient sweep missing from results/BENCH_objectives.json" >&2
        echo "(expected objective_gradient/raw_${size} and objective_gradient/minmax_${size})" >&2
        exit 1
    fi
    ratio=$(awk -v r="$raw_ns" -v w="$weighted_ns" 'BEGIN { printf "%.3f", w / r }')
    echo "objective_gradient ${size}: weighted ${weighted_ns} ns / raw ${raw_ns} ns = ${ratio}x"
    if awk -v r="$raw_ns" -v w="$weighted_ns" 'BEGIN { exit !(w <= 1.05 * r) }'; then
        echo "objective gate passed (minmax <= 1.05x raw)"
    else
        echo "error: MinMax-through-trait is ${ratio}x the raw path (gate: 1.05x)" >&2
        exit 1
    fi
done

echo
echo "== daemon tick-cost gate (no-drift tick vs full re-solve) =="
# The control loop's economics (DESIGN.md §14): a quiet tick is one
# EvalEngine pass over the deployed layout, a drifted tick pays for a
# warm-started solve. The cheap path must stay >= 50x cheaper than the
# full re-solve or the daemon's "probe every tick, solve rarely"
# design stops paying for itself. In-run comparison, so machine drift
# cancels out.
tick_ns=$(median_of "daemon/no_drift_tick" daemon)
resolve_ns=$(median_of "daemon/full_resolve" daemon)
if [ -z "$tick_ns" ] || [ -z "$resolve_ns" ]; then
    echo "error: daemon sweep missing from results/BENCH_daemon.json" >&2
    echo "(expected daemon/no_drift_tick and daemon/full_resolve)" >&2
    exit 1
fi
ratio=$(awk -v r="$resolve_ns" -v t="$tick_ns" 'BEGIN { printf "%.1f", r / t }')
echo "daemon: full_resolve ${resolve_ns} ns / no_drift_tick ${tick_ns} ns = ${ratio}x"
if awk -v r="$resolve_ns" -v t="$tick_ns" 'BEGIN { exit !(r / t >= 50.0) }'; then
    echo "daemon gate passed (no-drift tick >= 50x cheaper than re-solve)"
else
    echo "error: no-drift tick is only ${ratio}x cheaper than a full re-solve (gate: 50x)" >&2
    exit 1
fi

echo
echo "== stress admission-control gate (rejected tick vs served tick) =="
# Load shedding only defends the service if rejecting a request is
# nearly free: a shed slot must skip calibration, the trace run, and
# the solve entirely. The rejected tick must stay >= 50x cheaper than
# the served tick or admission control has become its own overload
# source. In-run comparison, so machine drift cancels out.
served_ns=$(median_of "stress/tick_served_b8" stress)
rejected_ns=$(median_of "stress/tick_rejected_b8" stress)
if [ -z "$served_ns" ] || [ -z "$rejected_ns" ]; then
    echo "error: stress sweep missing from results/BENCH_stress.json" >&2
    echo "(expected stress/tick_served_b8 and stress/tick_rejected_b8)" >&2
    exit 1
fi
ratio=$(awk -v s="$served_ns" -v r="$rejected_ns" 'BEGIN { printf "%.1f", s / r }')
echo "stress: tick_served ${served_ns} ns / tick_rejected ${rejected_ns} ns = ${ratio}x"
if awk -v s="$served_ns" -v r="$rejected_ns" 'BEGIN { exit !(s / r >= 50.0) }'; then
    echo "stress gate passed (rejection >= 50x cheaper than service)"
else
    echo "error: rejecting a request is only ${ratio}x cheaper than serving it (gate: 50x)" >&2
    exit 1
fi
