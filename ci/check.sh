#!/usr/bin/env bash
# Offline CI gate for the WASLA workspace.
#
# The build is hermetic by policy: every dependency is an in-tree path
# crate, so everything here must succeed with no network and no crate
# registry. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { echo; echo "== $* =="; }

step "dependency allowlist (path-only, no registry or git deps)"
# Any `version = "..."` or `git = "..."` dependency spec would reach
# outside the tree; `[workspace.dependencies]` may declare only
# `path = ...` entries and crates may only consume them.
if grep -RnE '\{[^}]*(version|git)[[:space:]]*=' Cargo.toml crates/*/Cargo.toml; then
    echo "error: non-path dependency found (see matches above)" >&2
    exit 1
fi
if grep -RnE '^[a-zA-Z0-9_-]+[[:space:]]*=[[:space:]]*"' Cargo.toml crates/*/Cargo.toml \
    | grep -vE '(name|version|edition|license|repository|rust-version|description|path|resolver)[[:space:]]*='; then
    echo "error: bare-version dependency found (see matches above)" >&2
    exit 1
fi

step "formatting"
cargo fmt --all --check

step "release build (offline)"
cargo build --release --offline --workspace

step "raw thread use confined to simlib::par"
# The concurrency policy (DESIGN.md) routes all parallelism through
# `wasla_simlib::par` so determinism is auditable in one place. Any
# other `std::thread` use (scoped pools, ad-hoc spawns) is a policy
# violation; `thread::sleep`-style uses would be too — simulators model
# time, they don't wait on it.
if grep -RnE 'std::thread|[^_a-zA-Z]thread::(spawn|scope|sleep|Builder)' crates/*/src \
    | grep -v 'crates/simlib/src/par.rs'; then
    echo "error: raw std::thread use outside crates/simlib/src/par.rs (see matches above)" >&2
    echo "route parallel work through wasla_simlib::par instead" >&2
    exit 1
fi

step "panic-site ratchet (library crates return typed errors)"
# The error policy (DESIGN.md §Error hierarchy) threads `WaslaError`
# through every public entry point; library code must not add new
# `unwrap()`/`panic!`-family sites. `ci/panic_budget.txt` grandfathers
# the existing ones per file; `#[cfg(test)]` modules (which sit at the
# end of each file, by convention) and the bench harness crate are
# exempt. The gate fails when a file exceeds its budget.
panic_sites() {
    # Non-test, non-comment panic-family sites in one source file.
    awk '/^#\[cfg\(test\)\]/{exit} {print}' "$1" \
        | grep -vE '^[[:space:]]*(//|#)' \
        | grep -cE '\.unwrap\(\)|panic!\(|\.expect\(|unreachable!\(|todo!\(|unimplemented!\(' \
        || true
}
ratchet_failed=0
for f in $(find crates/*/src -name '*.rs' | grep -v '^crates/bench/' | sort); do
    count=$(panic_sites "$f")
    budget=$(awk -v f="$f" '!/^#/ && $2 == f {print $1}' ci/panic_budget.txt)
    budget=${budget:-0}
    if [ "$count" -gt "$budget" ]; then
        echo "error: $f has $count panic-family sites (budget $budget)" >&2
        ratchet_failed=1
    elif [ "$count" -lt "$budget" ]; then
        echo "note: $f is under budget ($count < $budget) — tighten ci/panic_budget.txt"
    fi
done
if [ "$ratchet_failed" -ne 0 ]; then
    echo "return WaslaError (or the layer's typed error) instead of panicking," >&2
    echo "or move the site into a #[cfg(test)] module" >&2
    exit 1
fi

step "hot-loop allocation ratchet (solver closures stay allocation-free)"
# The evaluation-engine work (DESIGN.md §10) hoisted every per-call
# allocation out of the solver's objective/gradient/constraint
# closures; those hot regions are fenced with `// hot-closure-begin` /
# `// hot-closure-end` markers. The gate extracts each fenced region
# and fails on allocation idioms creeping back in — and on a file
# losing its markers, so the fence can't be deleted to dodge the grep.
hot_files="crates/core/src/optimizer.rs crates/core/src/eval/engine.rs \
crates/core/src/eval/scratch.rs crates/core/src/eval/grad.rs \
crates/solver/src/pg.rs crates/solver/src/auglag.rs"
alloc_failed=0
for f in $hot_files; do
    begins=$(grep -c 'hot-closure-begin' "$f" || true)
    ends=$(grep -c 'hot-closure-end' "$f" || true)
    if [ "$begins" -eq 0 ] || [ "$begins" -ne "$ends" ]; then
        echo "error: $f has $begins hot-closure-begin / $ends hot-closure-end markers" >&2
        alloc_failed=1
        continue
    fi
    if awk '/hot-closure-begin/{inr=1} inr{print FILENAME":"FNR": "$0} /hot-closure-end/{inr=0}' "$f" \
        | grep -E 'Layout::from_flat|Vec::new\(|\.to_vec\(|vec!\['; then
        echo "error: allocation idiom inside a hot-closure region of $f (see matches above)" >&2
        alloc_failed=1
    fi
done
if [ "$alloc_failed" -ne 0 ]; then
    echo "hoist the allocation into a reusable scratch buffer (see crates/core/src/eval/)" >&2
    exit 1
fi

step "objective ratchet (max-utilization reductions live in core::eval)"
# The pluggable-objective refactor (DESIGN.md §13) funnels every
# max-utilization reduction through `core::eval` — `max_of`,
# `weighted_max`, and the `LayoutObjective` implementations — so no
# code path can silently hard-wire the min-max objective again. The
# idiomatic fold is the grep target; outside crates/core/src/eval/ it
# is a policy violation.
if grep -RnE 'fold\(0\.0,[[:space:]]*f64::max\)' crates/core/src | grep -v 'crates/core/src/eval/'; then
    echo "error: direct max-utilization fold outside crates/core/src/eval/ (see matches above)" >&2
    echo "route the reduction through wasla_core::eval (max_of / weighted_max / LayoutObjective)" >&2
    exit 1
fi

step "tests (offline)"
cargo test -q --offline --workspace

step "tests again on a 2-thread pool (offline)"
# Exercises the parallel code paths even on single-core CI machines;
# by the determinism contract every result must be unchanged.
WASLA_THREADS=2 cargo test -q --offline --workspace

step "objective-equivalence golden gate (WASLA_THREADS=1 and 8)"
# The pluggable-objective contract (DESIGN.md §13): the default MinMax
# objective routed through the LayoutObjective trait must reproduce
# the committed pre-refactor advisor reports bit-for-bit on both paper
# catalogs, at serial and wide pool widths alike.
for t in 1 8; do
    echo "-- WASLA_THREADS=$t --"
    WASLA_THREADS=$t cargo test -q --offline -p wasla --test objective_equivalence
done

step "fault-injection env var confined to simlib::fault"
# The robustness policy (DESIGN.md §Fault model) reads the fault-plan
# environment variable in exactly one place — crates/simlib/src/fault.rs
# — so every consumer shares one deterministic plan and no crate can
# grow a private fault channel. Mention the variable elsewhere via
# `fault::ENV_VAR`, never by its literal name.
if grep -Rn 'WASLA_FAULTS' crates/*/src | grep -v 'crates/simlib/src/fault.rs'; then
    echo "error: the fault env var is named outside crates/simlib/src/fault.rs (see matches above)" >&2
    echo "query wasla_simlib::fault::plan() / refer to fault::ENV_VAR instead" >&2
    exit 1
fi

step "fault matrix (offline)"
# The graceful-degradation contract: under an active fault plan the
# fault-aware suites must still pass — typed errors and degradation
# notes, never panics, never silently wrong answers. Golden-result
# suites (determinism, pipeline) are exempt by design: faults change
# results, deterministically. The seed list is the chaos soak: eight
# fixed seeds spanning small, mid, and adversarial-looking values, so
# CI failures reproduce locally with the same plan. `oplog_stream`
# rides the matrix too — it covers the op-log corruption-salvage path,
# and all its assertions are equality claims that hold under faults.
# `objective_equivalence` rides it as well: its golden test self-skips
# under an active plan, and its warm≡cold per-objective assertions are
# pure equality claims that must hold on degraded answers too.
# `daemon` rides the matrix for the control loop's contracts (its
# restart test self-skips under a plan — prefix logs salvage
# differently — everything else must hold degraded), and the `repro
# drift` soak re-proves the budget/evacuation contract per seed.
# `gradient_equivalence` rides it because its claims are relational:
# analytic-vs-FD agreement and the zero-probe counters compare two
# computations over the *same* (possibly degraded) models, so they
# must hold whatever the fault plan did to calibration (the multistart
# quality-parity test self-skips — solver-budget faults legitimately
# truncate the two descents at different points).
# `synth_stress` rides the matrix for the fleet-scale robustness
# contract: generator determinism is fault-blind, and the stress run's
# totality/thread-independence claims are made under an explicit inner
# plan, so an outer one must not break them. The small-tenant `repro
# stress` smoke re-proves the every-request-resolves contract
# end-to-end (CLI included) per seed, with admission control and
# brownout both engaged.
for fault_seed in 7 11 23 42 99 1337 2024 31337; do
    echo "-- fault seed $fault_seed --"
    WASLA_FAULTS=$fault_seed cargo test -q --offline -p wasla \
        --test failure_modes --test error_paths \
        --test fault_injection --test batch_determinism \
        --test oplog_stream --test objective_equivalence \
        --test daemon --test gradient_equivalence \
        --test synth_stress
    WASLA_FAULTS=$fault_seed target/release/repro drift > /dev/null
    WASLA_FAULTS=$fault_seed target/release/repro stress \
        --tenants 48 --batch 16 --queue-cap 12 --brownout 8 > /dev/null
done

step "op-log replay-validation gate (streamed == materialized)"
# The streaming contract (DESIGN.md §12): chunked ingestion of a
# captured op-log must produce a byte-identical fit to materializing
# the trace first, at any pool width. Capture a small log with the
# release binary, ingest it streamed at WASLA_THREADS=1/2/8 plus
# materialized, and byte-compare every output; then check the replay
# report itself is byte-identical across pool widths. The golden
# round-trip (write → read → write vs the committed fixture) runs as
# the named test suite.
advisor=target/release/wasla-advisor
oplog_tmp=$(mktemp -d)
"$advisor" capture --scenario tpch --scale 0.01 --out-dir "$oplog_tmp/cap"
for t in 1 2 8; do
    WASLA_THREADS=$t "$advisor" fit --oplog "$oplog_tmp/cap/oplog.tsv" \
        --objects "$oplog_tmp/cap/objects.json" --out "$oplog_tmp/streamed_t$t.json"
done
WASLA_THREADS=1 "$advisor" fit --oplog "$oplog_tmp/cap/oplog.tsv" --materialized \
    --objects "$oplog_tmp/cap/objects.json" --out "$oplog_tmp/materialized.json"
for t in 1 2 8; do
    if ! cmp -s "$oplog_tmp/materialized.json" "$oplog_tmp/streamed_t$t.json"; then
        echo "error: streamed ingestion at WASLA_THREADS=$t differs from materialized" >&2
        exit 1
    fi
done
echo "streamed fit == materialized fit at WASLA_THREADS=1/2/8"
for t in 1 8; do
    WASLA_THREADS=$t "$advisor" replay --oplog "$oplog_tmp/cap/oplog.tsv" \
        --scenario tpch --coarse > "$oplog_tmp/replay_t$t.txt"
done
if ! cmp -s "$oplog_tmp/replay_t1.txt" "$oplog_tmp/replay_t8.txt"; then
    echo "error: replay report differs between WASLA_THREADS=1 and 8" >&2
    exit 1
fi
echo "replay report byte-identical at WASLA_THREADS=1/8"
# The daemon's decision log must be byte-identical across pool widths
# end-to-end (CLI included), same contract as the in-process test.
for t in 1 8; do
    WASLA_THREADS=$t "$advisor" serve --oplog "$oplog_tmp/cap/oplog.tsv" \
        --budget 16777216 --pane-s 2 --panes 2 --scenario tpch --coarse \
        --json > "$oplog_tmp/serve_t$t.json"
done
if ! cmp -s "$oplog_tmp/serve_t1.json" "$oplog_tmp/serve_t8.json"; then
    echo "error: daemon decision log differs between WASLA_THREADS=1 and 8" >&2
    exit 1
fi
echo "daemon decision log byte-identical at WASLA_THREADS=1/8"
# The stress report (tick stats + per-slot decision log) holds the
# same contract at fleet scale: stdout is a pure function of the spec
# and policy, byte-identical across pool widths, with admission
# control, brownout, and deadline classes all engaged.
for t in 1 8; do
    WASLA_THREADS=$t "$advisor" stress --tenants 96 --batch 32 \
        --queue-cap 24 --brownout 16 2> /dev/null > "$oplog_tmp/stress_t$t.txt"
done
if ! cmp -s "$oplog_tmp/stress_t1.txt" "$oplog_tmp/stress_t8.txt"; then
    echo "error: stress report differs between WASLA_THREADS=1 and 8" >&2
    exit 1
fi
echo "stress report byte-identical at WASLA_THREADS=1/8"
cargo test -q --offline -p wasla-trace --test golden_oplog
rm -rf "$oplog_tmp"

step "benches compile (offline)"
cargo bench --offline --no-run

echo
echo "all checks passed"
