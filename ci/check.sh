#!/usr/bin/env bash
# Offline CI gate for the WASLA workspace.
#
# The build is hermetic by policy: every dependency is an in-tree path
# crate, so everything here must succeed with no network and no crate
# registry. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { echo; echo "== $* =="; }

step "dependency allowlist (path-only, no registry or git deps)"
# Any `version = "..."` or `git = "..."` dependency spec would reach
# outside the tree; `[workspace.dependencies]` may declare only
# `path = ...` entries and crates may only consume them.
if grep -RnE '\{[^}]*(version|git)[[:space:]]*=' Cargo.toml crates/*/Cargo.toml; then
    echo "error: non-path dependency found (see matches above)" >&2
    exit 1
fi
if grep -RnE '^[a-zA-Z0-9_-]+[[:space:]]*=[[:space:]]*"' Cargo.toml crates/*/Cargo.toml \
    | grep -vE '(name|version|edition|license|repository|rust-version|description|path|resolver)[[:space:]]*='; then
    echo "error: bare-version dependency found (see matches above)" >&2
    exit 1
fi

step "formatting"
cargo fmt --all --check

step "release build (offline)"
cargo build --release --offline --workspace

step "tests (offline)"
cargo test -q --offline --workspace

step "benches compile (offline)"
cargo bench --offline --no-run

echo
echo "all checks passed"
