//! Consolidation: an OLAP database and an OLTP database sharing one
//! storage system (paper §6.3).
//!
//! ```text
//! cargo run --release --example consolidation
//! ```
//!
//! Two database instances — a TPC-H-like warehouse running the
//! OLAP1-21 query mix and a TPC-C-like OLTP system with nine
//! terminals — share four disks. The advisor lays out all 40 objects
//! at once; the interesting tension is keeping the OLTP random traffic
//! away from the OLAP sequential scans.

use wasla::core::report::render_layout;
use wasla::pipeline::{self, AdviseConfig, RunSettings, Scenario};
use wasla::workload::SqlWorkload;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.04);

    let scenario = Scenario::consolidation(scale);
    // TPC-C object names carry the consolidation prefix "C_".
    let workloads = [
        SqlWorkload::olap1_21(7),
        SqlWorkload::oltp().with_prefix("C_"),
    ];

    println!(
        "consolidating {} objects from two databases on {} disks...",
        scenario.catalog.len(),
        scenario.targets.len()
    );
    let outcome =
        pipeline::advise(&scenario, &workloads, &AdviseConfig::full()).expect("advise succeeds");
    let rec = &outcome.recommendation;

    println!("\nrecommended layout (12 hottest objects, paper Fig. 16 style):");
    println!(
        "{}",
        render_layout(&outcome.problem, rec.final_layout(), 12)
    );

    let optimized = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec.final_layout(),
        &RunSettings::default(),
    )
    .expect("validation run succeeds");
    println!("                 OLAP elapsed      OLTP throughput");
    println!(
        "SEE baseline : {:10.0} s    {:10.0} txns/min",
        outcome.baseline_run.elapsed.as_secs(),
        outcome.baseline_run.tpm
    );
    println!(
        "optimized    : {:10.0} s    {:10.0} txns/min",
        optimized.elapsed.as_secs(),
        optimized.tpm
    );
}
