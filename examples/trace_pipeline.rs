//! The trace → fit → advise pipeline, step by step.
//!
//! ```text
//! cargo run --release --example trace_pipeline
//! ```
//!
//! The other examples use `pipeline::advise`, which hides the paper's
//! §5 machinery. This example performs each step explicitly so you can
//! see (and swap out) the moving parts: block-trace capture, Rubicon-
//! style parameter fitting, cost-model calibration, problem assembly,
//! and the NLP solve — and prints the intermediate artifacts.

use wasla::core::{recommend, AdvisorOptions};
use wasla::exec::{see_rows, Engine, Placement, RunConfig};
use wasla::model::{CalibrationGrid, CostModel, TargetCostModel};
use wasla::pipeline::{build_problem, Scenario, LVM_STRIPE};
use wasla::storage::IoKind;
use wasla::trace::{fit_workloads, FitConfig};
use wasla::workload::SqlWorkload;

fn main() {
    let scale = 0.03;
    let scenario = Scenario::homogeneous_disks(4, scale);
    let workloads = [SqlWorkload::olap1_21(7)];

    // Step 1 — run the operational system under SEE, capturing a
    // block I/O trace (the paper instruments the kernel; we ask the
    // engine).
    println!("step 1: trace the workload under SEE");
    let rows = see_rows(scenario.catalog.len(), scenario.targets.len());
    let placement = Placement::build(
        &rows,
        &scenario.catalog.sizes(),
        &scenario.capacities(),
        LVM_STRIPE,
    )
    .expect("SEE placement is valid");
    let mut storage = scenario.storage();
    let report = Engine::new(
        &scenario.catalog,
        &workloads,
        &placement,
        &mut storage,
        RunConfig {
            scale,
            pool_bytes: scenario.pool_bytes,
            capture_trace: true,
            ..RunConfig::default()
        },
    )
    .run()
    .expect("engine run succeeds");
    let trace = report.trace.expect("trace requested");
    println!(
        "  {} block requests over {:.0} simulated seconds",
        trace.len(),
        trace.span().as_secs()
    );

    // Step 2 — fit Rome-style workload descriptions per object.
    println!("step 2: fit per-object workload descriptions (Rubicon)");
    let fitted = fit_workloads(
        &trace,
        &scenario.catalog.names(),
        &scenario.catalog.sizes(),
        &FitConfig::default(),
    )
    .expect("fit succeeds");
    let mut hot: Vec<usize> = (0..fitted.len()).collect();
    hot.sort_by(|&a, &b| {
        fitted.specs[b]
            .total_rate()
            .total_cmp(&fitted.specs[a].total_rate())
    });
    println!("  object           rate(req/s)  run-count");
    for &i in hot.iter().take(5) {
        let s = &fitted.specs[i];
        println!(
            "  {:16} {:10.1} {:10.1}",
            fitted.names[i],
            s.total_rate(),
            s.run_count
        );
    }

    // Step 3 — calibrate a cost model for the disk type and inspect a
    // slice of it (the paper's Figure 8).
    println!("step 3: calibrate target cost models");
    let grid = CalibrationGrid::default();
    let models =
        TargetCostModel::for_targets(&scenario.targets, &grid, 7).expect("targets calibrate");
    let m = &models[0];
    println!(
        "  8 KiB read cost: sequential {:.2} ms, random {:.2} ms, sequential@chi=4 {:.2} ms",
        m.request_cost(IoKind::Read, 8192.0, 64.0, 0.0) * 1e3,
        m.request_cost(IoKind::Read, 8192.0, 1.0, 0.0) * 1e3,
        m.request_cost(IoKind::Read, 8192.0, 64.0, 4.0) * 1e3,
    );

    // Step 4 — assemble the layout problem and run the advisor.
    println!("step 4: solve the layout NLP and regularize");
    let problem = build_problem(&scenario, fitted, &grid).expect("problem builds");
    let rec = recommend(
        &problem,
        &AdvisorOptions {
            regularize: true,
            ..AdvisorOptions::default()
        },
    )
    .expect("advise succeeds");
    for stage in &rec.stages {
        println!(
            "  stage {:8}  max predicted utilization {:.3}",
            stage.stage, stage.max_utilization
        );
    }
    println!(
        "  final layout regular: {}, valid: {}",
        rec.final_layout().is_regular(),
        rec.final_layout()
            .is_valid(&problem.workloads.sizes, &problem.capacities)
    );
}
