//! Heterogeneous storage: mixing disks, RAID-0 groups, and an SSD.
//!
//! ```text
//! cargo run --release --example heterogeneous_tiering
//! ```
//!
//! The paper's §6.4 shows that rules of thumb fall apart once targets
//! differ: SEE degrades with disparity, and isolating tables or
//! indexes can even hurt. This example reproduces that situation on a
//! "3-1" RAID configuration and on a disks+SSD mix, comparing the
//! administrator heuristics against the workload-aware advisor.

use wasla::core::baselines;
use wasla::core::report::render_layout;
use wasla::pipeline::{self, AdviseConfig, RunSettings, Scenario, SSD_BYTES};
use wasla::workload::SqlWorkload;

fn evaluate(name: &str, scenario: &Scenario, with_all_on_ssd: bool) {
    let workloads = [SqlWorkload::olap8_63(7)];
    let outcome =
        pipeline::advise(scenario, &workloads, &AdviseConfig::full()).expect("advise succeeds");
    let rec = &outcome.recommendation;
    let see_s = outcome.baseline_run.elapsed.as_secs();
    println!("=== {name} ===");
    println!("SEE baseline          : {see_s:8.0} s");

    // Administrator heuristic: isolate tables on the first target.
    let iso = baselines::isolate_tables(&outcome.problem, 0);
    if iso.is_valid(
        &outcome.problem.workloads.sizes,
        &outcome.problem.capacities,
    ) {
        let r = pipeline::run_with_layout(scenario, &workloads, &iso, &RunSettings::default())
            .expect("validation run succeeds");
        println!("isolate-tables        : {:8.0} s", r.elapsed.as_secs());
    }
    if with_all_on_ssd {
        let all = baselines::all_on_target(&outcome.problem, scenario.targets.len() - 1);
        if all.is_valid(
            &outcome.problem.workloads.sizes,
            &outcome.problem.capacities,
        ) {
            let r = pipeline::run_with_layout(scenario, &workloads, &all, &RunSettings::default())
                .expect("validation run succeeds");
            println!("all-on-SSD            : {:8.0} s", r.elapsed.as_secs());
        }
    }
    let opt = pipeline::run_with_layout(
        scenario,
        &workloads,
        rec.final_layout(),
        &RunSettings::default(),
    )
    .expect("validation run succeeds");
    println!(
        "workload-aware advisor: {:8.0} s  ({:.2}x vs SEE)",
        opt.elapsed.as_secs(),
        see_s / opt.elapsed.as_secs()
    );
    println!("{}", render_layout(&outcome.problem, rec.final_layout(), 8));
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    // A 3-disk RAID-0 group plus one standalone disk (paper's "3-1").
    evaluate(
        "3-disk RAID-0 + 1 disk",
        &Scenario::config_3_1(scale),
        false,
    );
    // Four disks plus a 32 GB-equivalent SSD.
    evaluate(
        "4 disks + SSD",
        &Scenario::disks_plus_ssd(scale, SSD_BYTES),
        true,
    );
}
