//! Capacity planning: which storage *configuration* should you build?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! The paper's §8 sketches extending the advisor toward Minerva/DAD:
//! take unconfigured resources and recommend both the target grouping
//! and the layout. `wasla::core::configurator` implements that sweep:
//! it enumerates the RAID-0 groupings of a disk pool, advises a layout
//! for each, and ranks configurations by predicted max utilization.
//! The same module's sibling, `wasla::core::dynamic`, re-advises as
//! objects grow (FlexVol-style) — demonstrated at the end.

use wasla::core::configurator::{configure, ResourcePool};
use wasla::core::dynamic::{readvise, DynamicOptions};
use wasla::core::AdvisorOptions;
use wasla::model::CalibrationGrid;
use wasla::pipeline::{self, AdviseConfig, Scenario, DISK_BYTES, LVM_STRIPE};
use wasla::storage::{DeviceSpec, DiskParams};
use wasla::workload::{ObjectKind, SqlWorkload};

fn main() {
    let scale = 0.03;

    // Fit a workload first (the configurator consumes workload
    // descriptions, not SQL).
    let scenario = Scenario::homogeneous_disks(4, scale);
    let workloads = [SqlWorkload::olap8_63(7)];
    let outcome =
        pipeline::advise(&scenario, &workloads, &AdviseConfig::full()).expect("advise succeeds");
    let kinds: Vec<ObjectKind> = scenario.catalog.objects().iter().map(|o| o.kind).collect();

    // Sweep every way to group four identical disks into RAID-0
    // targets: [4], [3,1], [2,2], [2,1,1], [1,1,1,1].
    let pool = ResourcePool {
        disks: vec![DeviceSpec::Disk(DiskParams::scsi_15k((DISK_BYTES * scale) as u64)); 4],
        standalone: vec![],
        stripe_unit: 256 * 1024,
    };
    println!("sweeping disk groupings for the OLAP8-63 workload:");
    let outcomes = configure(
        &outcome.fitted,
        &kinds,
        &pool,
        &CalibrationGrid::default(),
        LVM_STRIPE as f64,
        &AdvisorOptions {
            regularize: true,
            ..AdvisorOptions::default()
        },
        vec![],
        7,
    );
    for o in &outcomes {
        println!(
            "  config {:10} → predicted max utilization {:.3}",
            o.label, o.predicted_max_utilization
        );
    }
    let best = outcomes.first().expect("at least one configuration");
    println!("best grouping: {}", best.label);

    // FlexVol-style growth: double the two biggest objects and ask
    // whether migrating to a fresh layout is worth it.
    println!("\nre-advising after data growth (dynamic allocation):");
    let mut grown = outcome.problem.workloads.clone();
    let mut order: Vec<usize> = (0..grown.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(grown.sizes[i]));
    for &i in order.iter().take(2) {
        grown.sizes[i] = (grown.sizes[i] as f64 * 1.6) as u64;
        println!("  {} grew to {} MB", grown.names[i], grown.sizes[i] >> 20);
    }
    let mut grown_problem = outcome.problem;
    grown_problem.workloads = grown;
    let deployed = outcome.recommendation.final_layout().clone();
    let decision = readvise(
        &grown_problem,
        &deployed,
        &AdvisorOptions {
            regularize: true,
            ..AdvisorOptions::default()
        },
        &DynamicOptions::default(),
    )
    .expect("readvise succeeds");
    println!(
        "  migrate: {} (predicted max utilization {:.3} → {:.3}, {} MB to move)",
        decision.migrate,
        decision.current_max_utilization,
        decision.new_max_utilization,
        decision.migration_bytes >> 20
    );
}
