//! Quickstart: advise a layout for a TPC-H-like database on four
//! simulated disks, then validate it by re-running the workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the paper's full methodology: run the workload under the
//! stripe-everything-everywhere baseline while tracing block I/O, fit
//! Rome-style workload descriptions per object, calibrate cost models
//! for the storage targets, solve the min-max-utilization layout NLP,
//! regularize, and measure the improvement.

use wasla::core::report::{render_layout, render_stages};
use wasla::pipeline::{self, AdviseConfig, RunSettings, Scenario};
use wasla::workload::SqlWorkload;

fn main() {
    // 5% of the paper's data sizes keeps this example fast; pass a
    // scale on the command line to change it.
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    // A TPC-H-like database (20 objects, Figure 9 inventory) on four
    // identical disks, running the OLAP1-63 query mix (Figure 10).
    let scenario = Scenario::homogeneous_disks(4, scale);
    let workloads = [SqlWorkload::olap1_63(7)];

    println!("tracing the workload under SEE, fitting, calibrating, advising...");
    let outcome =
        pipeline::advise(&scenario, &workloads, &AdviseConfig::full()).expect("advise succeeds");
    let rec = &outcome.recommendation;

    println!("\npredicted utilizations at each advisor stage (paper Fig. 13):");
    println!("{}", render_stages(&outcome.problem, &rec.stages));

    println!("recommended layout (8 hottest objects, paper Fig. 1 style):");
    println!("{}", render_layout(&outcome.problem, rec.final_layout(), 8));

    println!("validating by re-running the workload under the new layout...");
    let optimized = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec.final_layout(),
        &RunSettings::default(),
    )
    .expect("validation run succeeds");
    let see_s = outcome.baseline_run.elapsed.as_secs();
    let opt_s = optimized.elapsed.as_secs();
    println!("SEE baseline : {see_s:8.0} simulated seconds");
    println!("optimized    : {opt_s:8.0} simulated seconds");
    println!("speedup      : {:8.2}x", see_s / opt_s);
    println!(
        "advisor time : {:.2}s (solver {:.2}s, regularization {:.2}s)",
        rec.timings.total_s(),
        rec.timings.solver_s,
        rec.timings.regularize_s
    );
}
