//! Streaming op-log capture/replay ingestion.
//!
//! The advisor is driven entirely by traces, but [`fit_workloads`]
//! wants the whole trace materialized in memory — a scaling wall for
//! production-length captures. This module adds a compact
//! line-oriented *op-log* format plus a chunked reader whose per-object
//! sufficient statistics are **mergeable**, so fits stream through
//! [`wasla_simlib::par`] chunk by chunk and still come out bit-identical
//! to the materialized path at any `WASLA_THREADS` setting.
//!
//! # Record format (TSV, one op per line)
//!
//! ```text
//! #wasla-oplog v1
//! R<TAB>stream<TAB>offset<TAB>len<TAB>issue<TAB>complete
//! W<TAB>stream<TAB>offset<TAB>len<TAB>issue<TAB>complete
//! ```
//!
//! `R`/`W` is the op direction, `stream` the object id, `offset`/`len`
//! the object-relative byte range, and `issue`/`complete` the
//! submission and completion timestamps in seconds. Timestamps are
//! serialized with [`json::format_f64`] (shortest round-trip decimal),
//! so write → read → write is byte-identical. Records appear in issue
//! order; `complete ≥ issue` per record.
//!
//! # Mergeable sufficient statistics
//!
//! A [`ChunkStats`] is the per-object fitting state over one contiguous
//! record range: request/byte counters, the sequential-run count, the
//! trailing `next_expected` offset, the chunk's first request shape,
//! and the deduplicated activity-window list. Merging two adjacent
//! partials is exact:
//!
//! * counters add;
//! * the later chunk's run count is decremented iff its first request
//!   continues the earlier chunk's trailing run (same `continues`
//!   predicate as the serial pass);
//! * window lists concatenate with one boundary dedup;
//! * `next_expected` and the span endpoints carry over.
//!
//! Every operation is integer arithmetic (or an f64 carried verbatim),
//! so the merged state equals the serial single-pass state *bitwise*,
//! and the specs built from it are byte-identical to
//! [`fit_workloads`] on the materialized trace.

use crate::{build_spec, observe, Accum, FitConfig, FitError};
use wasla_simlib::impl_json_struct;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_simlib::par;
use wasla_simlib::SimTime;
use wasla_storage::{BlockTraceRecord, IoKind, Trace};
use wasla_workload::WorkloadSet;

/// First line of every op-log file.
pub const FORMAT_HEADER: &str = "#wasla-oplog v1";

/// Records per chunk for the streaming reader and the streamed fit.
/// Chunk boundaries depend only on this constant — never on the thread
/// count — so the streamed result is reproducible at any
/// `WASLA_THREADS`.
pub const DEFAULT_CHUNK: usize = 4096;

/// Longest well-formed line (a full record is ≈100 bytes); anything
/// longer is corruption and is rejected before field parsing.
pub const MAX_LINE_BYTES: usize = 160;

/// One captured operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpRecord {
    /// Read or write.
    pub kind: IoKind,
    /// Stream (database object) identifier.
    pub stream: u32,
    /// Offset within the object, in bytes.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Submission time.
    pub issue: SimTime,
    /// Completion time (≥ `issue`).
    pub complete: SimTime,
}

impl OpRecord {
    /// The trace-record view of this op (the fit consumes submission
    /// times only).
    pub fn as_block_record(&self) -> BlockTraceRecord {
        BlockTraceRecord {
            time: self.issue,
            stream: self.stream,
            kind: self.kind,
            offset: self.offset,
            len: self.len,
        }
    }
}

/// A captured op-log: records in issue order.
#[derive(Clone, Debug, Default)]
pub struct OpLog {
    records: Vec<OpRecord>,
}

/// Typed op-log reader failures. Line numbers are 1-based and count
/// the header line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpLogError {
    /// The file does not start with [`FORMAT_HEADER`].
    MissingHeader,
    /// A record line has the wrong number of tab-separated fields.
    Truncated {
        /// Offending line.
        line: usize,
        /// Fields found (6 expected).
        fields: usize,
    },
    /// A field failed to parse (or holds a non-finite/negative time).
    BadField {
        /// Offending line.
        line: usize,
        /// Name of the field that failed.
        field: &'static str,
    },
    /// The op column is neither `R` nor `W`.
    UnknownOp {
        /// Offending line.
        line: usize,
    },
    /// Issue times went backwards, or a completion precedes its issue.
    NonMonotone {
        /// Offending line.
        line: usize,
    },
    /// A line exceeds [`MAX_LINE_BYTES`].
    Overlong {
        /// Offending line.
        line: usize,
        /// Observed byte length.
        len: usize,
    },
}

impl std::fmt::Display for OpLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpLogError::MissingHeader => {
                write!(f, "op-log missing `{FORMAT_HEADER}` header")
            }
            OpLogError::Truncated { line, fields } => {
                write!(f, "op-log line {line}: {fields} fields, expected 6")
            }
            OpLogError::BadField { line, field } => {
                write!(f, "op-log line {line}: unparsable {field} field")
            }
            OpLogError::UnknownOp { line } => {
                write!(f, "op-log line {line}: op is neither R nor W")
            }
            OpLogError::NonMonotone { line } => {
                write!(f, "op-log line {line}: timestamps go backwards")
            }
            OpLogError::Overlong { line, len } => {
                write!(
                    f,
                    "op-log line {line}: {len} bytes exceeds the {MAX_LINE_BYTES}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for OpLogError {}

impl ToJson for OpLogError {
    fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        match *self {
            OpLogError::MissingHeader => json::variant("MissingHeader", Json::Null),
            OpLogError::Truncated { line, fields } => json::variant(
                "Truncated",
                obj(vec![("line", line.to_json()), ("fields", fields.to_json())]),
            ),
            OpLogError::BadField { line, field } => json::variant(
                "BadField",
                obj(vec![
                    ("line", line.to_json()),
                    ("field", field.to_string().to_json()),
                ]),
            ),
            OpLogError::UnknownOp { line } => {
                json::variant("UnknownOp", obj(vec![("line", line.to_json())]))
            }
            OpLogError::NonMonotone { line } => {
                json::variant("NonMonotone", obj(vec![("line", line.to_json())]))
            }
            OpLogError::Overlong { line, len } => json::variant(
                "Overlong",
                obj(vec![("line", line.to_json()), ("len", len.to_json())]),
            ),
        }
    }
}

impl FromJson for OpLogError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |payload: &Json, name: &str| -> Result<Json, JsonError> {
            payload
                .field(name)
                .cloned()
                .ok_or_else(|| JsonError::missing_field(name))
        };
        let line = |payload: &Json| -> Result<usize, JsonError> {
            usize::from_json(&field(payload, "line")?)
        };
        match json::untag(v)? {
            ("MissingHeader", _) => Ok(OpLogError::MissingHeader),
            ("Truncated", payload) => Ok(OpLogError::Truncated {
                line: line(payload)?,
                fields: usize::from_json(&field(payload, "fields")?)?,
            }),
            ("BadField", payload) => Ok(OpLogError::BadField {
                line: line(payload)?,
                field: canonical_field(&String::from_json(&field(payload, "field")?)?),
            }),
            ("UnknownOp", payload) => Ok(OpLogError::UnknownOp {
                line: line(payload)?,
            }),
            ("NonMonotone", payload) => Ok(OpLogError::NonMonotone {
                line: line(payload)?,
            }),
            ("Overlong", payload) => Ok(OpLogError::Overlong {
                line: line(payload)?,
                len: usize::from_json(&field(payload, "len")?)?,
            }),
            (other, _) => Err(JsonError::new(format!(
                "unknown OpLogError variant: {other:?}"
            ))),
        }
    }
}

/// Maps a deserialized field name back onto the static name the parser
/// uses, so the error round-trips through JSON without leaking an
/// allocation into the `&'static str` slot.
fn canonical_field(name: &str) -> &'static str {
    for known in ["stream", "offset", "len", "issue", "complete"] {
        if name == known {
            return known;
        }
    }
    "unknown"
}

/// What the lossy reader salvaged from a damaged op-log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpLogSalvage {
    /// Records in the valid prefix that was kept.
    pub kept: usize,
    /// Record lines discarded from the first damaged line onward.
    pub dropped: usize,
    /// The error that ended the valid prefix (None when clean).
    pub first_error: Option<OpLogError>,
}

impl OpLogSalvage {
    /// True when anything was discarded.
    pub fn degraded(&self) -> bool {
        self.dropped > 0
    }
}

impl OpLog {
    /// An empty log.
    pub fn new() -> Self {
        OpLog {
            records: Vec::new(),
        }
    }

    /// Appends a record. Records must be appended in non-decreasing
    /// issue order (the capture hook guarantees this).
    pub fn push(&mut self, rec: OpRecord) {
        debug_assert!(
            self.records.last().map_or(true, |l| l.issue <= rec.issue),
            "op-log records out of issue order"
        );
        self.records.push(rec);
    }

    /// Stamps the completion time of record `idx` (no-op if out of
    /// range — the capture hook owns the indices).
    pub fn set_complete(&mut self, idx: usize, t: SimTime) {
        if let Some(rec) = self.records.get_mut(idx) {
            rec.complete = t;
        }
    }

    /// All records in issue order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the log to the TSV format. Reading the output back
    /// with [`OpLog::parse_tsv`] and re-serializing is byte-identical.
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 48 + FORMAT_HEADER.len() + 1);
        out.push_str(FORMAT_HEADER);
        out.push('\n');
        for rec in &self.records {
            out.push(match rec.kind {
                IoKind::Read => 'R',
                IoKind::Write => 'W',
            });
            out.push('\t');
            out.push_str(&rec.stream.to_string());
            out.push('\t');
            out.push_str(&rec.offset.to_string());
            out.push('\t');
            out.push_str(&rec.len.to_string());
            out.push('\t');
            out.push_str(&json::format_f64(rec.issue.as_secs()));
            out.push('\t');
            out.push_str(&json::format_f64(rec.complete.as_secs()));
            out.push('\n');
        }
        out
    }

    /// Materializes the trace-equivalent of this log (issue times
    /// become trace timestamps).
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::new();
        for rec in &self.records {
            trace.push(rec.as_block_record());
        }
        trace
    }

    /// Content hash of [`OpLog::to_trace`]'s result, computed without
    /// materializing the trace. Byte-for-byte the same key
    /// [`Trace::content_hash`] would produce, so a fit cached from a
    /// materialized trace serves the streamed path and vice versa.
    pub fn trace_content_hash(&self) -> u64 {
        let mut h = wasla_simlib::hash::Fnv64::new();
        h.write_u64(self.records.len() as u64);
        for r in &self.records {
            h.write_f64(r.issue.as_secs());
            h.write_u64(r.stream as u64);
            h.write_u64(match r.kind {
                IoKind::Read => 0,
                IoKind::Write => 1,
            });
            h.write_u64(r.offset);
            h.write_u64(r.len);
        }
        h.finish()
    }

    /// [`OpLog::trace_content_hash`] with every record past the first
    /// `keep` rewritten to stream `u32::MAX` — byte-for-byte what
    /// [`Trace::content_hash_damaged`] produces on the materialized
    /// trace, so a salvage cached from either representation serves
    /// both.
    pub fn trace_content_hash_damaged(&self, keep: usize) -> u64 {
        let mut h = wasla_simlib::hash::Fnv64::new();
        h.write_u64(self.records.len() as u64);
        for (i, r) in self.records.iter().enumerate() {
            let stream = if i < keep { r.stream } else { u32::MAX };
            h.write_f64(r.issue.as_secs());
            h.write_u64(stream as u64);
            h.write_u64(match r.kind {
                IoKind::Read => 0,
                IoKind::Write => 1,
            });
            h.write_u64(r.offset);
            h.write_u64(r.len);
        }
        h.finish()
    }

    /// Issue-time span from first to last record.
    pub fn span(&self) -> SimTime {
        match (self.records.first(), self.records.last()) {
            (Some(f), Some(l)) => l.issue - f.issue,
            _ => SimTime::ZERO,
        }
    }

    /// Strict chunked reader: parses a TSV op-log, fanning record
    /// chunks over [`par`]. Chunk boundaries are fixed by
    /// [`DEFAULT_CHUNK`], so the result (and any error) is independent
    /// of the thread count.
    pub fn parse_tsv(text: &str) -> Result<OpLog, OpLogError> {
        let (log, salvage) = Self::parse_tsv_lossy(text)?;
        match salvage.first_error {
            Some(err) => Err(err),
            None => Ok(log),
        }
    }

    /// Lossy chunked reader: salvages the longest valid record prefix
    /// of a damaged op-log and reports what was dropped and why.
    ///
    /// A clean log parses fully with a zero-drop salvage. A log whose
    /// *first* record line is already damaged (or whose header is
    /// missing) has no salvageable prefix, so the typed error
    /// propagates — mirroring [`crate::fit_workloads_lossy`].
    pub fn parse_tsv_lossy(text: &str) -> Result<(OpLog, OpLogSalvage), OpLogError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(header) if header == FORMAT_HEADER => {}
            _ => return Err(OpLogError::MissingHeader),
        }
        let body: Vec<&str> = lines.collect();

        // Fan fixed-size line chunks over the pool. Each chunk parses
        // up to its first bad line; reassembly below stitches prefixes
        // back together in order.
        let chunks: Vec<(usize, &[&str])> = body
            .chunks(DEFAULT_CHUNK)
            .enumerate()
            .map(|(c, chunk)| (c * DEFAULT_CHUNK, chunk))
            .collect();
        let parsed: Vec<(Vec<OpRecord>, Option<OpLogError>)> =
            par::par_map(&chunks, |&(base, chunk)| parse_chunk(base, chunk));

        let mut log = OpLog::new();
        let mut first_error = None;
        'outer: for (records, err) in parsed {
            for rec in records {
                // Cross-chunk (and cross-record) monotonicity: issue
                // times never go backwards. Intra-record ordering was
                // already checked during field parsing.
                if log.records.last().map_or(false, |l| rec.issue < l.issue) {
                    first_error = Some(OpLogError::NonMonotone {
                        // +2: 1-based lines and the header line.
                        line: log.records.len() + 2,
                    });
                    break 'outer;
                }
                log.records.push(rec);
            }
            if let Some(err) = err {
                first_error = Some(err);
                break;
            }
        }

        let kept = log.records.len();
        if kept == 0 {
            if let Some(err) = first_error {
                // No salvageable prefix: keep the typed error strict.
                return Err(err);
            }
        }
        Ok((
            log,
            OpLogSalvage {
                kept,
                dropped: body.len() - kept,
                first_error,
            },
        ))
    }
}

/// Parses one chunk of record lines, stopping at the first malformed
/// line. `base` is the chunk's 0-based offset into the record body.
fn parse_chunk(base: usize, chunk: &[&str]) -> (Vec<OpRecord>, Option<OpLogError>) {
    let mut records = Vec::with_capacity(chunk.len());
    let mut prev_issue: Option<SimTime> = None;
    for (k, raw) in chunk.iter().enumerate() {
        // 1-based line number counting the header line.
        let line = base + k + 2;
        match parse_line(line, raw) {
            Ok(rec) => {
                if prev_issue.map_or(false, |p| rec.issue < p) {
                    return (records, Some(OpLogError::NonMonotone { line }));
                }
                prev_issue = Some(rec.issue);
                records.push(rec);
            }
            Err(err) => return (records, Some(err)),
        }
    }
    (records, None)
}

fn parse_line(line: usize, raw: &str) -> Result<OpRecord, OpLogError> {
    if raw.len() > MAX_LINE_BYTES {
        return Err(OpLogError::Overlong {
            line,
            len: raw.len(),
        });
    }
    let mut fields = [""; 6];
    let mut count = 0;
    for part in raw.split('\t') {
        if count < 6 {
            fields[count] = part;
        }
        count += 1;
    }
    if count != 6 {
        return Err(OpLogError::Truncated {
            line,
            fields: count,
        });
    }
    let kind = match fields[0] {
        "R" => IoKind::Read,
        "W" => IoKind::Write,
        _ => return Err(OpLogError::UnknownOp { line }),
    };
    let stream: u32 = fields[1].parse().map_err(|_| OpLogError::BadField {
        line,
        field: "stream",
    })?;
    let offset: u64 = fields[2].parse().map_err(|_| OpLogError::BadField {
        line,
        field: "offset",
    })?;
    let len: u64 = fields[3]
        .parse()
        .map_err(|_| OpLogError::BadField { line, field: "len" })?;
    let issue = parse_time(line, "issue", fields[4])?;
    let complete = parse_time(line, "complete", fields[5])?;
    if complete < issue {
        return Err(OpLogError::NonMonotone { line });
    }
    Ok(OpRecord {
        kind,
        stream,
        offset,
        len,
        issue,
        complete,
    })
}

fn parse_time(line: usize, field: &'static str, raw: &str) -> Result<SimTime, OpLogError> {
    let secs: f64 = raw
        .parse()
        .map_err(|_| OpLogError::BadField { line, field })?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(OpLogError::BadField { line, field });
    }
    Ok(SimTime::from_secs(secs))
}

/// Mergeable per-object fitting statistics over one contiguous record
/// range. See the module docs for the merge contract.
#[derive(Clone, Debug)]
pub struct ChunkStats {
    accums: Vec<Accum>,
    first_time: Option<SimTime>,
    last_time: Option<SimTime>,
}

impl ChunkStats {
    /// Empty statistics for `n_objects` objects.
    pub fn new(n_objects: usize) -> Self {
        ChunkStats {
            accums: vec![Accum::new(); n_objects],
            first_time: None,
            last_time: None,
        }
    }

    /// Folds one record into the statistics. Records must arrive in
    /// issue order. Fails on a stream id outside the catalog, exactly
    /// like the materialized fit.
    pub fn observe(&mut self, rec: &BlockTraceRecord, config: &FitConfig) -> Result<(), FitError> {
        let i = rec.stream as usize;
        if i >= self.accums.len() {
            return Err(FitError::StreamOutOfRange {
                stream: rec.stream,
                objects: self.accums.len(),
            });
        }
        let a = &mut self.accums[i];
        observe(a, rec, config);
        let w = (rec.time.as_secs() / config.window_s) as u32;
        if a.windows.last() != Some(&w) {
            a.windows.push(w);
        }
        if self.first_time.is_none() {
            self.first_time = Some(rec.time);
        }
        self.last_time = Some(rec.time);
        Ok(())
    }

    /// Merges the statistics of the *immediately following* record
    /// range into `self`. Exact: the result equals observing both
    /// ranges serially.
    pub fn merge(&mut self, later: &ChunkStats, config: &FitConfig) {
        for (a, b) in self.accums.iter_mut().zip(&later.accums) {
            if b.requests() == 0 {
                continue;
            }
            if a.requests() == 0 {
                *a = b.clone();
                continue;
            }
            // The later chunk counted its first request as a run start
            // (its local `next_expected` was None). Undo that iff the
            // request actually continues our trailing run.
            let continues = match (b.first, a.next_expected) {
                (Some((offset, len)), Some(next)) => {
                    offset >= next.saturating_sub(len) && offset <= next + config.gap_tolerance
                }
                _ => false,
            };
            a.reads += b.reads;
            a.writes += b.writes;
            a.read_bytes += b.read_bytes;
            a.write_bytes += b.write_bytes;
            a.runs += b.runs - u64::from(continues);
            a.next_expected = b.next_expected;
            let skip_dup = a.windows.last() == b.windows.first();
            a.windows
                .extend(b.windows.iter().skip(usize::from(skip_dup)).copied());
        }
        if self.first_time.is_none() {
            self.first_time = later.first_time;
        }
        if later.last_time.is_some() {
            self.last_time = later.last_time;
        }
    }

    /// Builds the fitted workload set from the accumulated statistics.
    /// Spec construction fans over [`par`], same as the materialized
    /// fit.
    pub fn finish(&self, names: &[String], sizes: &[u64]) -> Result<WorkloadSet, FitError> {
        if names.len() != sizes.len() || names.len() != self.accums.len() {
            return Err(FitError::ShapeMismatch {
                names: names.len(),
                sizes: sizes.len(),
            });
        }
        let span = match (self.first_time, self.last_time) {
            (Some(f), Some(l)) => (l - f).as_secs(),
            _ => 0.0,
        }
        .max(1e-9);
        let object_ids: Vec<usize> = (0..self.accums.len()).collect();
        let specs = par::par_map(&object_ids, |&i| build_spec(&self.accums, i, span));
        Ok(WorkloadSet {
            names: names.to_vec(),
            sizes: sizes.to_vec(),
            specs,
        })
    }
}

/// Streamed ingest: fits Rome workload descriptions directly from an
/// op-log by accumulating fixed-size record chunks in parallel and
/// merging the partial statistics in order.
///
/// Bit-identical to `fit_workloads(&log.to_trace(), ...)` at any
/// `WASLA_THREADS` setting: chunk boundaries depend only on
/// `chunk_records`, accumulation is integer-exact, and the merged
/// state equals the serial pass (see the module docs).
pub fn fit_oplog_streamed(
    log: &OpLog,
    names: &[String],
    sizes: &[u64],
    config: &FitConfig,
    chunk_records: usize,
) -> Result<WorkloadSet, FitError> {
    if names.len() != sizes.len() {
        return Err(FitError::ShapeMismatch {
            names: names.len(),
            sizes: sizes.len(),
        });
    }
    let n = names.len();
    let chunk = chunk_records.max(1);
    let records = log.records();
    let ranges: Vec<(usize, usize)> = (0..records.len())
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(records.len())))
        .collect();
    let partials: Vec<Result<ChunkStats, FitError>> = par::par_map(&ranges, |&(start, end)| {
        let mut stats = ChunkStats::new(n);
        for rec in &records[start..end] {
            stats.observe(&rec.as_block_record(), config)?;
        }
        Ok(stats)
    });
    let mut merged = ChunkStats::new(n);
    for partial in partials {
        merged.merge(&partial?, config);
    }
    merged.finish(names, sizes)
}

/// Sliding-window configuration for control-loop ingestion: the
/// stream is cut into fixed *panes* of `pane_s` seconds, and every
/// pane boundary (a controller tick) sees the statistics of the last
/// `panes_per_window` panes merged into one window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowPlan {
    /// Pane length in seconds — the controller's tick period.
    pub pane_s: f64,
    /// Panes per sliding window (≥ 1). One pane means tumbling
    /// windows; more smooths the snapshot over recent history.
    pub panes_per_window: usize,
}

impl_json_struct!(WindowPlan {
    pane_s,
    panes_per_window
});

impl Default for WindowPlan {
    fn default() -> Self {
        WindowPlan {
            pane_s: 10.0,
            panes_per_window: 3,
        }
    }
}

/// One per-tick workload snapshot produced by [`windowed_workloads`].
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// The tick index — the window's last pane.
    pub tick: u64,
    /// Window start (inclusive; clamped to the stream origin).
    pub start: SimTime,
    /// Window end (exclusive): `(tick + 1) · pane_s`.
    pub end: SimTime,
    /// Records observed inside the window.
    pub records: u64,
    /// The fitted per-object workload descriptions for the window.
    /// Rates are normalized over the window's *observed* span (first
    /// to last record), exactly like the batch fit; objects silent in
    /// the window come back as idle specs.
    pub workloads: WorkloadSet,
}

/// Slices an op-log into pane-aligned sliding windows and fits a
/// [`WorkloadSet`] snapshot per tick, reusing the mergeable
/// [`ChunkStats`] machinery: each pane is accumulated once (panes fan
/// over [`par`]), and a tick's window is the in-order merge of its
/// panes — identical to observing the window's records serially.
///
/// Determinism contract: pane boundaries depend only on record issue
/// times and `plan.pane_s` — never on the thread count or on how the
/// stream was chunked on arrival — so the snapshot sequence is
/// byte-identical at any `WASLA_THREADS` setting.
pub fn windowed_workloads(
    log: &OpLog,
    names: &[String],
    sizes: &[u64],
    config: &FitConfig,
    plan: &WindowPlan,
) -> Result<Vec<WindowSnapshot>, FitError> {
    if names.len() != sizes.len() {
        return Err(FitError::ShapeMismatch {
            names: names.len(),
            sizes: sizes.len(),
        });
    }
    let records = log.records();
    if records.is_empty() {
        return Ok(Vec::new());
    }
    let n = names.len();
    let pane_s = plan.pane_s.max(1e-9);
    let width = plan.panes_per_window.max(1) as u64;
    let pane_of = |t: SimTime| (t.as_secs() / pane_s) as u64;
    let last_pane = pane_of(records[records.len() - 1].issue);

    // Contiguous record range per pane (records arrive in issue order).
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(last_pane as usize + 1);
    let mut cursor = 0usize;
    for pane in 0..=last_pane {
        let start = cursor;
        while cursor < records.len() && pane_of(records[cursor].issue) == pane {
            cursor += 1;
        }
        ranges.push((start, cursor));
    }

    let panes: Vec<Result<ChunkStats, FitError>> = par::par_map(&ranges, |&(start, end)| {
        let mut stats = ChunkStats::new(n);
        for rec in &records[start..end] {
            stats.observe(&rec.as_block_record(), config)?;
        }
        Ok(stats)
    });
    let mut pane_stats = Vec::with_capacity(panes.len());
    for pane in panes {
        pane_stats.push(pane?);
    }

    let mut snapshots = Vec::with_capacity(pane_stats.len());
    for tick in 0..=last_pane {
        let first_pane = (tick + 1).saturating_sub(width);
        let mut merged = ChunkStats::new(n);
        let mut in_window = 0u64;
        for pane in first_pane..=tick {
            merged.merge(&pane_stats[pane as usize], config);
            let (start, end) = ranges[pane as usize];
            in_window += (end - start) as u64;
        }
        snapshots.push(WindowSnapshot {
            tick,
            start: SimTime::from_secs(first_pane as f64 * pane_s),
            end: SimTime::from_secs((tick + 1) as f64 * pane_s),
            records: in_window,
            workloads: merged.finish(names, sizes)?,
        });
    }
    Ok(snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit_workloads;
    use wasla_simlib::json::to_string;

    fn rec(t: f64, stream: u32, kind: IoKind, offset: u64, len: u64) -> OpRecord {
        OpRecord {
            kind,
            stream,
            offset,
            len,
            issue: SimTime::from_secs(t),
            complete: SimTime::from_secs(t + 0.002),
        }
    }

    fn sample_log(n: u64) -> OpLog {
        let mut log = OpLog::new();
        for k in 0..n {
            let stream = (k % 3) as u32;
            let kind = if k % 5 == 0 {
                IoKind::Write
            } else {
                IoKind::Read
            };
            // Stream 0 is sequential; the others jump around.
            let offset = if stream == 0 {
                k * 65536
            } else {
                (k * 97_777_777) % (1 << 29)
            };
            log.push(rec(
                k as f64 * 0.013,
                stream,
                kind,
                offset,
                8192 + (k % 3) * 4096,
            ));
        }
        log
    }

    fn catalog() -> (Vec<String>, Vec<u64>) {
        (
            vec!["A".into(), "B".into(), "C".into()],
            vec![1 << 30, 1 << 30, 1 << 30],
        )
    }

    #[test]
    fn tsv_round_trip_is_byte_identical() {
        let log = sample_log(200);
        let tsv = log.to_tsv();
        let back = OpLog::parse_tsv(&tsv).unwrap();
        assert_eq!(back.records(), log.records());
        assert_eq!(
            back.to_tsv(),
            tsv,
            "write -> read -> write must be identity"
        );
    }

    #[test]
    fn empty_log_round_trips() {
        let log = OpLog::new();
        let tsv = log.to_tsv();
        assert_eq!(tsv, format!("{FORMAT_HEADER}\n"));
        let back = OpLog::parse_tsv(&tsv).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn streamed_fit_matches_materialized_at_many_chunk_sizes() {
        let log = sample_log(500);
        let (names, sizes) = catalog();
        let config = FitConfig::default();
        let materialized = fit_workloads(&log.to_trace(), &names, &sizes, &config).unwrap();
        for chunk in [1, 2, 3, 7, 64, 499, 500, 5000] {
            let streamed = fit_oplog_streamed(&log, &names, &sizes, &config, chunk).unwrap();
            assert_eq!(
                to_string(&streamed),
                to_string(&materialized),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn streamed_fit_of_empty_log_matches_materialized() {
        let log = OpLog::new();
        let (names, sizes) = catalog();
        let config = FitConfig::default();
        let streamed = fit_oplog_streamed(&log, &names, &sizes, &config, 16).unwrap();
        let materialized = fit_workloads(&log.to_trace(), &names, &sizes, &config).unwrap();
        assert_eq!(to_string(&streamed), to_string(&materialized));
    }

    #[test]
    fn merge_preserves_runs_split_across_chunks() {
        // One long sequential run split across a chunk boundary must
        // still count as a single run.
        let mut log = OpLog::new();
        for k in 0..10u64 {
            log.push(rec(k as f64 * 0.01, 0, IoKind::Read, k * 65536, 65536));
        }
        let (names, sizes) = catalog();
        let config = FitConfig::default();
        for chunk in [1, 3, 5] {
            let set = fit_oplog_streamed(&log, &names, &sizes, &config, chunk).unwrap();
            assert!(
                (set.specs[0].run_count - 10.0).abs() < 1e-9,
                "chunk={chunk} run_count={}",
                set.specs[0].run_count
            );
        }
    }

    #[test]
    fn trace_content_hash_matches_materialized_trace() {
        let log = sample_log(120);
        assert_eq!(log.trace_content_hash(), log.to_trace().content_hash());
        assert_eq!(
            OpLog::new().trace_content_hash(),
            Trace::new().content_hash()
        );
    }

    #[test]
    fn damaged_trace_content_hash_matches_materialized_damage() {
        let log = sample_log(40);
        for keep in [0, 17, 40] {
            assert_eq!(
                log.trace_content_hash_damaged(keep),
                log.to_trace().content_hash_damaged(keep),
                "keep={keep}"
            );
        }
        assert_eq!(log.trace_content_hash_damaged(40), log.trace_content_hash());
        assert_ne!(log.trace_content_hash_damaged(17), log.trace_content_hash());
    }

    #[test]
    fn streamed_fit_reports_stream_out_of_range() {
        let mut log = sample_log(10);
        log.push(rec(1.0, 99, IoKind::Read, 0, 8192));
        let (names, sizes) = catalog();
        let err = fit_oplog_streamed(&log, &names, &sizes, &FitConfig::default(), 4).unwrap_err();
        assert_eq!(
            err,
            FitError::StreamOutOfRange {
                stream: 99,
                objects: 3
            }
        );
    }

    #[test]
    fn missing_header_is_typed() {
        assert_eq!(
            OpLog::parse_tsv("R\t0\t0\t8192\t0\t0.1\n").unwrap_err(),
            OpLogError::MissingHeader
        );
        assert_eq!(OpLog::parse_tsv("").unwrap_err(), OpLogError::MissingHeader);
    }

    #[test]
    fn malformed_lines_are_typed() {
        let cases: Vec<(String, OpLogError)> = vec![
            (
                format!("{FORMAT_HEADER}\nR\t0\t0\t8192\t0\n"),
                OpLogError::Truncated { line: 2, fields: 5 },
            ),
            (
                format!("{FORMAT_HEADER}\nX\t0\t0\t8192\t0\t0.1\n"),
                OpLogError::UnknownOp { line: 2 },
            ),
            (
                format!("{FORMAT_HEADER}\nR\t-1\t0\t8192\t0\t0.1\n"),
                OpLogError::BadField {
                    line: 2,
                    field: "stream",
                },
            ),
            (
                format!("{FORMAT_HEADER}\nR\t0\t0\t8192\tnan\t0.1\n"),
                OpLogError::BadField {
                    line: 2,
                    field: "issue",
                },
            ),
            (
                format!("{FORMAT_HEADER}\nR\t0\t0\t8192\t5\t1\n"),
                OpLogError::NonMonotone { line: 2 },
            ),
            (
                format!("{FORMAT_HEADER}\nR\t0\t{}\t8192\t0\t0.1\n", "9".repeat(200)),
                OpLogError::Overlong { line: 2, len: 215 },
            ),
        ];
        for (text, want) in cases {
            assert_eq!(OpLog::parse_tsv(&text).unwrap_err(), want, "text={text:?}");
        }
    }

    #[test]
    fn lossy_parse_salvages_valid_prefix() {
        let log = sample_log(20);
        let mut tsv = log.to_tsv();
        tsv.push_str("garbage line\n");
        tsv.push_str("R\t0\t0\t8192\t99\t99.1\n");
        let (salvaged, salvage) = OpLog::parse_tsv_lossy(&tsv).unwrap();
        assert_eq!(salvaged.records(), log.records());
        assert_eq!(salvage.kept, 20);
        assert_eq!(salvage.dropped, 2);
        assert!(salvage.degraded());
        assert_eq!(
            salvage.first_error,
            Some(OpLogError::Truncated {
                line: 22,
                fields: 1
            })
        );
    }

    #[test]
    fn lossy_parse_with_no_valid_prefix_keeps_the_typed_error() {
        let text = format!("{FORMAT_HEADER}\nnot a record\nR\t0\t0\t8192\t0\t0.1\n");
        let err = OpLog::parse_tsv_lossy(&text).unwrap_err();
        assert_eq!(err, OpLogError::Truncated { line: 2, fields: 1 });
    }

    #[test]
    fn lossy_parse_truncates_at_cross_chunk_time_regression() {
        let mut log = sample_log(5);
        log.records.push(rec(0.001, 0, IoKind::Read, 0, 8192)); // goes backwards
        let mut tsv = String::new();
        tsv.push_str(FORMAT_HEADER);
        tsv.push('\n');
        for r in log.records() {
            let mut one = OpLog::new();
            one.records.push(*r);
            tsv.push_str(one.to_tsv().lines().nth(1).unwrap());
            tsv.push('\n');
        }
        let (salvaged, salvage) = OpLog::parse_tsv_lossy(&tsv).unwrap();
        assert_eq!(salvaged.len(), 5);
        assert_eq!(
            salvage.first_error,
            Some(OpLogError::NonMonotone { line: 7 })
        );
    }

    #[test]
    fn oplog_error_json_round_trip() {
        use wasla_simlib::json::{from_str, to_string};
        for err in [
            OpLogError::MissingHeader,
            OpLogError::Truncated { line: 3, fields: 2 },
            OpLogError::BadField {
                line: 4,
                field: "issue",
            },
            OpLogError::UnknownOp { line: 5 },
            OpLogError::NonMonotone { line: 6 },
            OpLogError::Overlong { line: 7, len: 999 },
        ] {
            let back: OpLogError = from_str(&to_string(&err)).unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn windows_match_serial_observation() {
        let (names, sizes) = catalog();
        let log = sample_log(400);
        let config = FitConfig::default();
        let plan = WindowPlan {
            pane_s: 0.7,
            panes_per_window: 3,
        };
        let snapshots = windowed_workloads(&log, &names, &sizes, &config, &plan).unwrap();
        assert!(!snapshots.is_empty());
        for snap in &snapshots {
            // Reference: observe exactly the window's records serially.
            let mut direct = ChunkStats::new(names.len());
            let mut count = 0u64;
            for rec in log.records() {
                if rec.issue >= snap.start && rec.issue < snap.end {
                    direct.observe(&rec.as_block_record(), &config).unwrap();
                    count += 1;
                }
            }
            assert_eq!(snap.records, count, "tick {}", snap.tick);
            let expected = direct.finish(&names, &sizes).unwrap();
            assert_eq!(
                to_string(&snap.workloads),
                to_string(&expected),
                "tick {} window diverges from the serial pass",
                snap.tick
            );
        }
        // The last tick covers the last record's pane.
        let last = log.records().last().unwrap().issue.as_secs();
        assert_eq!(snapshots.last().unwrap().tick, (last / plan.pane_s) as u64);
    }

    #[test]
    fn empty_panes_yield_idle_snapshots() {
        let (names, sizes) = catalog();
        let mut log = OpLog::new();
        log.push(rec(0.1, 0, IoKind::Read, 0, 8192));
        log.push(rec(5.1, 1, IoKind::Read, 65536, 8192));
        let plan = WindowPlan {
            pane_s: 1.0,
            panes_per_window: 1,
        };
        let snapshots =
            windowed_workloads(&log, &names, &sizes, &FitConfig::default(), &plan).unwrap();
        assert_eq!(snapshots.len(), 6, "one snapshot per pane, gaps included");
        for snap in &snapshots[1..5] {
            assert_eq!(snap.records, 0);
            let idle = snap
                .workloads
                .specs
                .iter()
                .all(|s| s.read_rate == 0.0 && s.write_rate == 0.0);
            assert!(idle, "tick {} must be idle", snap.tick);
        }
        assert_eq!(snapshots[0].records, 1);
        assert_eq!(snapshots[5].records, 1);
    }

    #[test]
    fn windows_slide_over_at_most_the_configured_panes() {
        let (names, sizes) = catalog();
        let log = sample_log(300);
        let plan = WindowPlan {
            pane_s: 0.5,
            panes_per_window: 4,
        };
        let snapshots =
            windowed_workloads(&log, &names, &sizes, &FitConfig::default(), &plan).unwrap();
        for snap in &snapshots {
            let spanned = (snap.end - snap.start).as_secs();
            assert!(
                spanned <= plan.pane_s * plan.panes_per_window as f64 + 1e-9,
                "tick {} window too wide: {spanned}",
                snap.tick
            );
            let start_pane = (snap.tick + 1).saturating_sub(plan.panes_per_window as u64);
            assert_eq!(snap.start.as_secs(), start_pane as f64 * plan.pane_s);
        }
    }

    #[test]
    fn empty_log_has_no_windows() {
        let (names, sizes) = catalog();
        let snapshots = windowed_workloads(
            &OpLog::new(),
            &names,
            &sizes,
            &FitConfig::default(),
            &WindowPlan::default(),
        )
        .unwrap();
        assert!(snapshots.is_empty());
    }
}
