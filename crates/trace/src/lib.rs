//! Rubicon-style trace analysis (paper §5.1).
//!
//! The paper obtains workload descriptions by tracing the operational
//! database's block I/O, isolating each object's requests, and fitting
//! the Rome workload parameters to the observed characteristics using
//! HP's Rubicon tool. This crate is that fitting step for our
//! simulator's traces:
//!
//! * request **rates** — per-object reads/writes divided by the trace
//!   span;
//! * request **sizes** — per-object mean request lengths;
//! * **run count** — the mean number of back-to-back sequential
//!   requests between non-sequential jumps, detected from object
//!   offsets;
//! * **overlap matrix** — time is cut into windows; `Oᵢ[j]` is the
//!   fraction of windows in which `i` is active where `j` is also
//!   active.
//!
//! Fitting is parallel per object: a serial pass partitions the trace
//! into per-stream record lists (validating stream ids against the
//! catalog), then the per-object accumulation and spec construction fan
//! out over [`wasla_simlib::par`]. Each object consumes its records in
//! trace order, so the result is bit-identical to the serial pass at
//! any `WASLA_THREADS` setting.

use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_simlib::par;
use wasla_storage::{BlockTraceRecord, IoKind, Trace};
use wasla_workload::{WorkloadSet, WorkloadSpec};

pub mod oplog;

/// Failure modes of trace fitting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitError {
    /// The object catalog is inconsistent: `names` and `sizes` disagree
    /// on the object count.
    ShapeMismatch {
        /// Number of object names supplied.
        names: usize,
        /// Number of object sizes supplied.
        sizes: usize,
    },
    /// A trace record names a stream outside the object catalog.
    StreamOutOfRange {
        /// The offending stream id.
        stream: u32,
        /// Number of objects in the catalog.
        objects: usize,
    },
}

impl ToJson for FitError {
    fn to_json(&self) -> Json {
        match *self {
            FitError::ShapeMismatch { names, sizes } => json::variant(
                "ShapeMismatch",
                Json::Obj(vec![
                    ("names".to_string(), names.to_json()),
                    ("sizes".to_string(), sizes.to_json()),
                ]),
            ),
            FitError::StreamOutOfRange { stream, objects } => json::variant(
                "StreamOutOfRange",
                Json::Obj(vec![
                    ("stream".to_string(), stream.to_json()),
                    ("objects".to_string(), objects.to_json()),
                ]),
            ),
        }
    }
}

impl FromJson for FitError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |payload: &Json, name: &str| -> Result<Json, JsonError> {
            payload
                .field(name)
                .cloned()
                .ok_or_else(|| JsonError::missing_field(name))
        };
        match json::untag(v)? {
            ("ShapeMismatch", payload) => Ok(FitError::ShapeMismatch {
                names: usize::from_json(&field(payload, "names")?)?,
                sizes: usize::from_json(&field(payload, "sizes")?)?,
            }),
            ("StreamOutOfRange", payload) => Ok(FitError::StreamOutOfRange {
                stream: u32::from_json(&field(payload, "stream")?)?,
                objects: usize::from_json(&field(payload, "objects")?)?,
            }),
            (other, _) => Err(JsonError::new(format!(
                "unknown FitError variant: {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::ShapeMismatch { names, sizes } => write!(
                f,
                "object catalog mismatch: {names} names but {sizes} sizes"
            ),
            FitError::StreamOutOfRange { stream, objects } => write!(
                f,
                "trace stream {stream} out of range for {objects} objects"
            ),
        }
    }
}

impl std::error::Error for FitError {}

/// Tunables for parameter fitting.
#[derive(Clone, Debug)]
pub struct FitConfig {
    /// Width of the co-activity windows used for the overlap matrix,
    /// in seconds.
    pub window_s: f64,
    /// Maximum forward byte gap for a request to continue a sequential
    /// run (readahead absorbs small skips).
    pub gap_tolerance: u64,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            window_s: 5.0,
            gap_tolerance: 256 * 1024,
        }
    }
}

/// Per-object accumulation state during the single pass over the trace.
///
/// Also usable as a *partial* accumulation over a contiguous chunk of
/// the trace: `first` remembers the shape of the object's first request
/// in the chunk so [`oplog`]'s merge can decide whether the chunk
/// boundary split a sequential run.
#[derive(Clone, Debug)]
struct Accum {
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
    runs: u64,
    /// `(offset, len)` of the object's first record in this
    /// accumulation range (used only when merging partials).
    first: Option<(u64, u64)>,
    next_expected: Option<u64>,
    windows: Vec<u32>,
}

impl Accum {
    fn new() -> Self {
        Accum {
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
            runs: 0,
            first: None,
            next_expected: None,
            windows: Vec::new(),
        }
    }

    fn requests(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Fits Rome workload descriptions from a block trace.
///
/// `names` and `sizes` describe the objects; the trace's stream ids
/// index into them. Objects with no traced requests get an idle spec.
///
/// Per-object accumulation and spec construction run on the
/// [`par`] pool; each object still sees its records in trace order, so
/// the fitted set is bit-identical at any thread count.
pub fn fit_workloads(
    trace: &Trace,
    names: &[String],
    sizes: &[u64],
    config: &FitConfig,
) -> Result<WorkloadSet, FitError> {
    if names.len() != sizes.len() {
        return Err(FitError::ShapeMismatch {
            names: names.len(),
            sizes: sizes.len(),
        });
    }
    let n = names.len();
    let span = trace.span().as_secs().max(1e-9);
    let records = trace.records();

    // Serial pass: validate stream ids and partition record indices by
    // object, preserving trace order within each object.
    let mut per_object: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, rec) in records.iter().enumerate() {
        let i = rec.stream as usize;
        if i >= n {
            return Err(FitError::StreamOutOfRange {
                stream: rec.stream,
                objects: n,
            });
        }
        per_object[i].push(k);
    }

    // Parallel accumulation: objects are independent once partitioned.
    let accums: Vec<Accum> = par::par_map(&per_object, |indices| {
        let mut a = Accum::new();
        for &k in indices {
            let rec = &records[k];
            observe(&mut a, rec, config);
            let w = (rec.time.as_secs() / config.window_s) as u32;
            if a.windows.last() != Some(&w) {
                a.windows.push(w);
            }
        }
        a
    });

    // Parallel spec construction: each spec reads all accums immutably
    // (the overlap row needs every object's window list).
    let object_ids: Vec<usize> = (0..n).collect();
    let specs = par::par_map(&object_ids, |&i| build_spec(&accums, i, span));
    Ok(WorkloadSet {
        names: names.to_vec(),
        sizes: sizes.to_vec(),
        specs,
    })
}

/// What a lossy fit salvaged: how much of the trace was fit and how
/// much was discarded as damaged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Records in the valid prefix that was fitted.
    pub kept: usize,
    /// Damaged-tail records that were discarded.
    pub dropped: usize,
}

impl SalvageReport {
    /// True when anything was discarded.
    pub fn degraded(&self) -> bool {
        self.dropped > 0
    }
}

/// [`fit_workloads`], but tolerant of a damaged trace tail: fits the
/// longest valid prefix (every record before the first out-of-range
/// stream id) and reports how much was salvaged.
///
/// A fully valid trace fits identically to the strict path with zero
/// drops. A trace whose *first* record is already damaged has no
/// salvageable prefix, so the strict [`FitError`] propagates — callers
/// degrade gracefully only when there is signal left to degrade to.
pub fn fit_workloads_lossy(
    trace: &Trace,
    names: &[String],
    sizes: &[u64],
    config: &FitConfig,
) -> Result<(WorkloadSet, SalvageReport), FitError> {
    if names.len() != sizes.len() {
        return Err(FitError::ShapeMismatch {
            names: names.len(),
            sizes: sizes.len(),
        });
    }
    let n = names.len();
    let records = trace.records();
    let valid = records
        .iter()
        .position(|r| r.stream as usize >= n)
        .unwrap_or(records.len());
    if valid == records.len() {
        let set = fit_workloads(trace, names, sizes, config)?;
        return Ok((
            set,
            SalvageReport {
                kept: valid,
                dropped: 0,
            },
        ));
    }
    if valid == 0 {
        return Err(FitError::StreamOutOfRange {
            stream: records[0].stream,
            objects: n,
        });
    }
    let mut prefix = Trace::new();
    for rec in &records[..valid] {
        prefix.push(rec.clone());
    }
    let set = fit_workloads(&prefix, names, sizes, config)?;
    Ok((
        set,
        SalvageReport {
            kept: valid,
            dropped: records.len() - valid,
        },
    ))
}

fn observe(a: &mut Accum, rec: &BlockTraceRecord, config: &FitConfig) {
    if a.first.is_none() {
        a.first = Some((rec.offset, rec.len));
    }
    match rec.kind {
        IoKind::Read => {
            a.reads += 1;
            a.read_bytes += rec.len;
        }
        IoKind::Write => {
            a.writes += 1;
            a.write_bytes += rec.len;
        }
    }
    let continues = a.next_expected.is_some_and(|next| {
        rec.offset >= next.saturating_sub(rec.len) && rec.offset <= next + config.gap_tolerance
    });
    if !continues {
        a.runs += 1;
    }
    a.next_expected = Some(rec.offset + rec.len);
}

fn build_spec(accums: &[Accum], i: usize, span: f64) -> WorkloadSpec {
    let n = accums.len();
    let a = &accums[i];
    if a.requests() == 0 {
        return WorkloadSpec::idle(n);
    }
    let read_size = if a.reads > 0 {
        a.read_bytes as f64 / a.reads as f64
    } else {
        8192.0
    };
    let write_size = if a.writes > 0 {
        a.write_bytes as f64 / a.writes as f64
    } else {
        8192.0
    };
    let run_count = if a.runs > 0 {
        (a.requests() as f64 / a.runs as f64).max(1.0)
    } else {
        1.0
    };
    let mut overlaps = vec![0.0; n];
    for (j, b) in accums.iter().enumerate() {
        if i == j || a.windows.is_empty() {
            continue;
        }
        overlaps[j] = intersect_sorted(&a.windows, &b.windows) as f64 / a.windows.len() as f64;
    }
    WorkloadSpec {
        read_size,
        write_size,
        read_rate: a.reads as f64 / span,
        write_rate: a.writes as f64 / span,
        run_count,
        overlaps,
    }
}

/// Fits per-object duty cycles: the fraction of the trace span during
/// which each object was active (had at least one request in the
/// window). Rome's full workload language models ON/OFF burstiness;
/// the duty cycle is its first moment, and dividing average rates by
/// it recovers busy-period rates (used by the busy-rate contention
/// variant in `wasla-core`).
pub fn fit_duty_cycles(
    trace: &Trace,
    n_objects: usize,
    window_s: f64,
) -> Result<Vec<f64>, FitError> {
    let span = trace.span().as_secs().max(window_s);
    let total_windows = (span / window_s).ceil().max(1.0);
    let mut last_window: Vec<Option<u32>> = vec![None; n_objects];
    let mut active = vec![0u32; n_objects];
    for rec in trace.records() {
        let i = rec.stream as usize;
        if i >= n_objects {
            return Err(FitError::StreamOutOfRange {
                stream: rec.stream,
                objects: n_objects,
            });
        }
        let w = (rec.time.as_secs() / window_s) as u32;
        if last_window[i] != Some(w) {
            last_window[i] = Some(w);
            active[i] += 1;
        }
    }
    Ok(active
        .into_iter()
        .map(|a| {
            (a as f64 / total_windows)
                .clamp(0.0, 1.0)
                .max(if a > 0 { 1e-6 } else { 0.0 })
        })
        .collect())
}

/// Size of the intersection of two sorted, deduplicated slices.
fn intersect_sorted(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_simlib::SimTime;

    fn rec(t: f64, stream: u32, kind: IoKind, offset: u64, len: u64) -> BlockTraceRecord {
        BlockTraceRecord {
            time: SimTime::from_secs(t),
            stream,
            kind,
            offset,
            len,
        }
    }

    fn two_obj_names() -> (Vec<String>, Vec<u64>) {
        (vec!["A".into(), "B".into()], vec![1 << 30, 1 << 30])
    }

    #[test]
    fn rates_and_sizes_fit() {
        let mut trace = Trace::new();
        // Object 0: 10 reads of 8 KiB over 10 seconds.
        for k in 0..10 {
            trace.push(rec(k as f64, 0, IoKind::Read, k * 1_000_000, 8192));
        }
        // Span is 9 s (first to last record).
        let (names, sizes) = two_obj_names();
        let set = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        let s = &set.specs[0];
        assert!((s.read_rate - 10.0 / 9.0).abs() < 1e-9);
        assert_eq!(s.read_size, 8192.0);
        assert_eq!(s.write_rate, 0.0);
        // Idle object gets the idle spec.
        assert_eq!(set.specs[1].total_rate(), 0.0);
        set.validate().unwrap();
    }

    #[test]
    fn sequential_run_detection() {
        let mut trace = Trace::new();
        // Two runs of 5 sequential requests each, separated by a jump.
        let mut off = 0u64;
        for k in 0..10u64 {
            if k == 5 {
                off = 500_000_000;
            }
            trace.push(rec(k as f64 * 0.01, 0, IoKind::Read, off, 65536));
            off += 65536;
        }
        let (names, sizes) = two_obj_names();
        let set = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        assert!((set.specs[0].run_count - 5.0).abs() < 1e-9);
    }

    #[test]
    fn random_workload_run_count_one() {
        let mut trace = Trace::new();
        for k in 0..20u64 {
            trace.push(rec(
                k as f64 * 0.01,
                0,
                IoKind::Read,
                (k * 97_777_777) % (1 << 29),
                8192,
            ));
        }
        let (names, sizes) = two_obj_names();
        let set = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        assert!(
            set.specs[0].run_count < 1.5,
            "run {}",
            set.specs[0].run_count
        );
    }

    #[test]
    fn overlap_matrix_reflects_co_activity() {
        let config = FitConfig {
            window_s: 1.0,
            ..FitConfig::default()
        };
        let mut trace = Trace::new();
        // Object 0 active in seconds 0-9; object 1 active only 0-4.
        // Mid-window timestamps avoid float truncation at boundaries.
        for k in 0..10u64 {
            trace.push(rec(k as f64 + 0.4, 0, IoKind::Read, k * 8192, 8192));
            if k < 5 {
                trace.push(rec(k as f64 + 0.5, 1, IoKind::Read, k * 8192, 8192));
            }
        }
        let (names, sizes) = two_obj_names();
        let set = fit_workloads(&trace, &names, &sizes, &config).unwrap();
        // O_0[1] = 5/10; O_1[0] = 5/5.
        assert!((set.specs[0].overlaps[1] - 0.5).abs() < 1e-9);
        assert!((set.specs[1].overlaps[0] - 1.0).abs() < 1e-9);
        assert_eq!(set.specs[0].overlaps[0], 0.0);
    }

    #[test]
    fn mixed_read_write_sizes() {
        let mut trace = Trace::new();
        trace.push(rec(0.0, 0, IoKind::Read, 0, 4096));
        trace.push(rec(1.0, 0, IoKind::Write, 1 << 20, 16384));
        trace.push(rec(2.0, 0, IoKind::Write, 2 << 20, 16384));
        let (names, sizes) = two_obj_names();
        let set = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        let s = &set.specs[0];
        assert_eq!(s.read_size, 4096.0);
        assert_eq!(s.write_size, 16384.0);
        assert!((s.write_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_all_idle() {
        let trace = Trace::new();
        let (names, sizes) = two_obj_names();
        let set = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        assert!(set.specs.iter().all(|s| s.total_rate() == 0.0));
        set.validate().unwrap();
    }

    #[test]
    fn duty_cycles_measure_active_fractions() {
        let mut trace = Trace::new();
        // Object 0 active in every second 0..10; object 1 only 0..5;
        // object 2 never.
        for k in 0..10u64 {
            trace.push(rec(k as f64 + 0.4, 0, IoKind::Read, k * 8192, 8192));
            if k < 5 {
                trace.push(rec(k as f64 + 0.5, 1, IoKind::Read, k * 8192, 8192));
            }
        }
        let duty = fit_duty_cycles(&trace, 3, 1.0).unwrap();
        assert!(duty[0] > 0.9, "duty0 {}", duty[0]);
        assert!((duty[1] - 0.5).abs() < 0.1, "duty1 {}", duty[1]);
        assert_eq!(duty[2], 0.0);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let trace = Trace::new();
        let err = fit_workloads(
            &trace,
            &["a".into(), "b".into()],
            &[1 << 30],
            &FitConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, FitError::ShapeMismatch { names: 2, sizes: 1 });
        assert!(err.to_string().contains("2 names but 1 sizes"));
    }

    #[test]
    fn out_of_range_stream_is_a_typed_error() {
        let mut trace = Trace::new();
        trace.push(rec(0.0, 7, IoKind::Read, 0, 8192));
        let (names, sizes) = two_obj_names();
        let err = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap_err();
        assert_eq!(
            err,
            FitError::StreamOutOfRange {
                stream: 7,
                objects: 2
            }
        );
        let err2 = fit_duty_cycles(&trace, 2, 1.0).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn fit_error_json_round_trip() {
        use wasla_simlib::json::{from_str, to_string};
        for err in [
            FitError::ShapeMismatch { names: 3, sizes: 5 },
            FitError::StreamOutOfRange {
                stream: 9,
                objects: 4,
            },
        ] {
            let back: FitError = from_str(&to_string(&err)).unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn parallel_fit_matches_serial() {
        // Many interleaved streams: the partitioned parallel fit must
        // reproduce the serial result exactly (same WASLA_THREADS-free
        // path, explicit widths via the pool's own determinism tests).
        let mut trace = Trace::new();
        for k in 0..400u64 {
            trace.push(rec(
                k as f64 * 0.05,
                (k % 2) as u32,
                if k % 3 == 0 {
                    IoKind::Write
                } else {
                    IoKind::Read
                },
                (k * 123_457) % (1 << 28),
                4096 + (k % 4) * 4096,
            ));
        }
        let (names, sizes) = two_obj_names();
        let fitted = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        use wasla_simlib::json::to_string;
        let a = to_string(&fitted);
        let b = to_string(&fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap());
        assert_eq!(a, b);
        fitted.validate().unwrap();
    }

    #[test]
    fn lossy_fit_salvages_valid_prefix() {
        let (names, sizes) = two_obj_names();
        // A clean 20-record trace, then a damaged 10-record tail.
        let mut clean = Trace::new();
        let mut damaged = Trace::new();
        for k in 0..30u64 {
            let stream = if k < 20 { (k % 2) as u32 } else { u32::MAX };
            let r = rec(k as f64 * 0.1, stream, IoKind::Read, k * 8192, 8192);
            if k < 20 {
                clean.push(r.clone());
            }
            damaged.push(r);
        }
        let (set, salvage) =
            fit_workloads_lossy(&damaged, &names, &sizes, &FitConfig::default()).unwrap();
        assert_eq!(
            salvage,
            SalvageReport {
                kept: 20,
                dropped: 10
            }
        );
        assert!(salvage.degraded());
        // The salvaged fit is exactly the fit of the clean prefix.
        let clean_set = fit_workloads(&clean, &names, &sizes, &FitConfig::default()).unwrap();
        use wasla_simlib::json::to_string;
        assert_eq!(to_string(&set), to_string(&clean_set));
    }

    #[test]
    fn lossy_fit_on_clean_trace_matches_strict_with_zero_drops() {
        let (names, sizes) = two_obj_names();
        let mut trace = Trace::new();
        for k in 0..10u64 {
            trace.push(rec(k as f64, (k % 2) as u32, IoKind::Read, k * 4096, 4096));
        }
        let (set, salvage) =
            fit_workloads_lossy(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        assert_eq!(
            salvage,
            SalvageReport {
                kept: 10,
                dropped: 0
            }
        );
        assert!(!salvage.degraded());
        let strict = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        use wasla_simlib::json::to_string;
        assert_eq!(to_string(&set), to_string(&strict));
    }

    #[test]
    fn lossy_fit_with_no_valid_prefix_keeps_the_typed_error() {
        let (names, sizes) = two_obj_names();
        let mut trace = Trace::new();
        trace.push(rec(0.0, 9, IoKind::Read, 0, 8192));
        trace.push(rec(1.0, 0, IoKind::Read, 0, 8192));
        let err = fit_workloads_lossy(&trace, &names, &sizes, &FitConfig::default()).unwrap_err();
        assert_eq!(
            err,
            FitError::StreamOutOfRange {
                stream: 9,
                objects: 2
            }
        );
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[3, 4, 5]), 2);
        assert_eq!(intersect_sorted(&[], &[1]), 0);
        assert_eq!(intersect_sorted(&[2], &[2]), 1);
        assert_eq!(intersect_sorted(&[1, 2], &[3, 4]), 0);
    }
}
