//! Property tests: synthetic traces with known parameters round-trip
//! through the fitter, and the op-log reader survives arbitrary damage
//! with typed errors (never a panic).

use wasla_simlib::proptest::prelude::*;
use wasla_simlib::{json, SimTime};
use wasla_storage::{BlockTraceRecord, IoKind, Trace};
use wasla_trace::oplog::{fit_oplog_streamed, OpLog, OpLogError, OpRecord, FORMAT_HEADER};
use wasla_trace::{fit_workloads, FitConfig};

proptest! {
    /// Rates and sizes are recovered exactly for a single uniform
    /// stream (the fitter's span is last-first, so rate = (n-1)/span
    /// requests per interval step).
    #[test]
    fn uniform_stream_rate_and_size_recovered(
        n in 10u64..500,
        interval_ms in 1u64..1000,
        len_kib in 1u64..512,
        is_write in any::<bool>(),
    ) {
        let mut trace = Trace::new();
        let kind = if is_write { IoKind::Write } else { IoKind::Read };
        for k in 0..n {
            trace.push(BlockTraceRecord {
                time: SimTime::from_secs(k as f64 * interval_ms as f64 / 1e3),
                stream: 0,
                kind,
                offset: k * 10_000_000,
                len: len_kib * 1024,
            });
        }
        let set = fit_workloads(&trace, &["a".into()], &[1 << 40], &FitConfig::default()).unwrap();
        let spec = &set.specs[0];
        let span = (n - 1) as f64 * interval_ms as f64 / 1e3;
        let expected_rate = n as f64 / span;
        let (rate, size) = if is_write {
            (spec.write_rate, spec.write_size)
        } else {
            (spec.read_rate, spec.read_size)
        };
        prop_assert!((rate - expected_rate).abs() / expected_rate < 1e-9);
        prop_assert_eq!(size, (len_kib * 1024) as f64);
        set.validate().expect("fitted set valid");
    }

    /// Run counts are recovered for exact-run synthetic streams.
    #[test]
    fn run_count_recovered(
        runs in 2u64..50,
        run_len in 1u64..64,
        len_kib in 1u64..128,
    ) {
        let mut trace = Trace::new();
        let len = len_kib * 1024;
        let mut t = 0.0;
        for r in 0..runs {
            // Separate runs by far more than the fitter's gap tolerance.
            let base = r * ((run_len * len + 1) << 31);
            for k in 0..run_len {
                trace.push(BlockTraceRecord {
                    time: SimTime::from_secs(t),
                    stream: 0,
                    kind: IoKind::Read,
                    offset: base + k * len,
                    len,
                });
                t += 0.01;
            }
        }
        let set = fit_workloads(&trace, &["a".into()], &[1 << 42], &FitConfig::default()).unwrap();
        prop_assert!(
            (set.specs[0].run_count - run_len as f64).abs() < 1e-9,
            "fitted {} expected {}",
            set.specs[0].run_count,
            run_len
        );
    }

    /// Overlaps are symmetric for fully co-active streams and bounded
    /// in [0,1] always.
    #[test]
    fn overlaps_bounded_and_fully_coactive_streams_overlap(
        n in 10u64..200,
        streams in 2u32..5,
    ) {
        let mut trace = Trace::new();
        for k in 0..n {
            for s in 0..streams {
                trace.push(BlockTraceRecord {
                    time: SimTime::from_secs(k as f64),
                    stream: s,
                    kind: IoKind::Read,
                    offset: k * 8192,
                    len: 8192,
                });
            }
        }
        let names: Vec<String> = (0..streams).map(|s| format!("s{s}")).collect();
        let sizes = vec![1u64 << 30; streams as usize];
        let set = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        for i in 0..streams as usize {
            for j in 0..streams as usize {
                let o = set.specs[i].overlaps[j];
                prop_assert!((0.0..=1.0).contains(&o));
                if i != j {
                    prop_assert!(o > 0.99, "O[{i}][{j}] = {o}");
                }
            }
        }
    }
}

/// Objects the synthetic logs below address.
const LOG_OBJECTS: u32 = 8;

/// A deterministic pseudo-random op-log: `seed` picks the stream, the
/// kinds, and the (monotone) issue schedule, so every property below
/// shrinks over two integers instead of a record vector.
fn synth_log(n: u64, seed: u64) -> OpLog {
    let mut log = OpLog::new();
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut t = 0.0f64;
    for _ in 0..n {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        t += ((s >> 45) % 1000) as f64 / 1e3;
        let service = ((s >> 21) % 500) as f64 / 1e3;
        log.push(OpRecord {
            kind: if s & 1 == 0 {
                IoKind::Read
            } else {
                IoKind::Write
            },
            stream: ((s >> 33) % LOG_OBJECTS as u64) as u32,
            offset: (s >> 7) % (1 << 30),
            len: 512 * (1 + ((s >> 17) % 128)),
            issue: SimTime::from_secs(t),
            complete: SimTime::from_secs(t + service),
        });
    }
    log
}

proptest! {
    /// Write → read → write is the identity on bytes for any valid
    /// log, and the lossy reader agrees that nothing was dropped.
    #[test]
    fn oplog_roundtrip_is_byte_identical(n in 1u64..300, seed in 0u64..1_000_000) {
        let log = synth_log(n, seed);
        let text = log.to_tsv();
        let parsed = OpLog::parse_tsv(&text).expect("serialized log parses");
        prop_assert_eq!(parsed.to_tsv(), text.clone());
        prop_assert_eq!(parsed.trace_content_hash(), log.trace_content_hash());
        let (lossy, salvage) = OpLog::parse_tsv_lossy(&text).expect("lossy parses");
        prop_assert_eq!(salvage.kept, n as usize);
        prop_assert_eq!(salvage.dropped, 0);
        prop_assert!(salvage.first_error.is_none());
        prop_assert_eq!(lossy.to_tsv(), text);
    }

    /// Cutting the file at an arbitrary byte never panics: the reader
    /// either salvages a valid prefix (which re-serializes cleanly) or
    /// returns a typed error.
    #[test]
    fn oplog_truncation_salvages_or_errors_typed(
        n in 2u64..150,
        seed in 0u64..1_000_000,
        cut_frac in 0u64..1000,
    ) {
        let text = synth_log(n, seed).to_tsv();
        let body_start = FORMAT_HEADER.len() + 1;
        let pos = (cut_frac as usize * text.len()) / 1000;
        let cut = &text[..pos];
        // Strict parse: typed result either way, never a panic.
        let _ = OpLog::parse_tsv(cut);
        match OpLog::parse_tsv_lossy(cut) {
            Ok((log, salvage)) => {
                prop_assert_eq!(salvage.kept, log.len());
                let reparsed = OpLog::parse_tsv(&log.to_tsv()).expect("salvaged prefix is valid");
                prop_assert_eq!(reparsed.len(), log.len());
            }
            Err(OpLogError::MissingHeader) => {
                // Only possible when the cut landed inside the header.
                prop_assert!(pos < body_start);
            }
            Err(e) => {
                // No salvageable prefix: the first record line itself
                // was damaged. A cut mid-number can leave a `complete`
                // that still parses but precedes its issue, so
                // NonMonotone is reachable too.
                prop_assert!(
                    matches!(e, OpLogError::Truncated { line: 2, .. }
                        | OpLogError::BadField { line: 2, .. }
                        | OpLogError::UnknownOp { line: 2 }
                        | OpLogError::NonMonotone { line: 2 }),
                    "unexpected prefix-free error {e:?}"
                );
            }
        }
    }

    /// Corrupting one record line — interleaved garbage, unknown op,
    /// an overlong line, an unparsable field, or a completion before
    /// its issue — yields exactly the expected typed error at the
    /// expected line, and the lossy reader keeps exactly the records
    /// before it.
    #[test]
    fn oplog_corruption_yields_typed_error(
        n in 1u64..120,
        seed in 0u64..1_000_000,
        at_frac in 0u64..1000,
        kind in 0usize..5,
    ) {
        let log = synth_log(n, seed);
        let text = log.to_tsv();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let i = (at_frac as usize * n as usize) / 1000; // record index
        let line_no = i + 2; // 1-based, counting the header
        let overlong = format!("R\t0\t0\t1\t0\t{}", "9".repeat(170));
        let expected = match kind {
            0 => {
                lines[i + 1] = "!!interleaved garbage, no tabs!!".to_string();
                OpLogError::Truncated { line: line_no, fields: 1 }
            }
            1 => {
                lines[i + 1].replace_range(0..1, "X");
                OpLogError::UnknownOp { line: line_no }
            }
            2 => {
                let len = overlong.len();
                lines[i + 1] = overlong;
                OpLogError::Overlong { line: line_no, len }
            }
            3 => {
                lines[i + 1] = "R\tnope\t0\t1\t0\t0".to_string();
                OpLogError::BadField { line: line_no, field: "stream" }
            }
            _ => {
                lines[i + 1] = "R\t0\t0\t1\t5\t1".to_string();
                OpLogError::NonMonotone { line: line_no }
            }
        };
        let damaged = lines.join("\n") + "\n";
        prop_assert_eq!(OpLog::parse_tsv(&damaged).unwrap_err(), expected);
        if i == 0 {
            // No valid prefix: the lossy reader stays strict.
            prop_assert_eq!(OpLog::parse_tsv_lossy(&damaged).unwrap_err(), expected);
        } else {
            let (salvaged, salvage) =
                OpLog::parse_tsv_lossy(&damaged).expect("prefix salvages");
            prop_assert_eq!(salvaged.len(), i);
            prop_assert_eq!(salvage.kept, i);
            prop_assert_eq!(salvage.dropped, n as usize - i);
            prop_assert_eq!(salvage.first_error, Some(expected));
            prop_assert_eq!(salvaged.records(), &log.records()[..i]);
        }
    }

    /// The streamed fit is bit-identical to materialize-then-fit at
    /// *any* chunk size, not just the default.
    #[test]
    fn streamed_fit_matches_materialized_at_any_chunk(
        n in 1u64..200,
        seed in 0u64..1_000_000,
        chunk in 1usize..300,
    ) {
        let log = synth_log(n, seed);
        let names: Vec<String> = (0..LOG_OBJECTS).map(|k| format!("o{k}")).collect();
        let sizes = vec![1u64 << 30; LOG_OBJECTS as usize];
        let config = FitConfig::default();
        let streamed = fit_oplog_streamed(&log, &names, &sizes, &config, chunk).unwrap();
        let materialized = fit_workloads(&log.to_trace(), &names, &sizes, &config).unwrap();
        prop_assert_eq!(json::to_string(&streamed), json::to_string(&materialized));
    }
}
