//! Property tests: synthetic traces with known parameters round-trip
//! through the fitter.

use wasla_simlib::proptest::prelude::*;
use wasla_simlib::SimTime;
use wasla_storage::{BlockTraceRecord, IoKind, Trace};
use wasla_trace::{fit_workloads, FitConfig};

proptest! {
    /// Rates and sizes are recovered exactly for a single uniform
    /// stream (the fitter's span is last-first, so rate = (n-1)/span
    /// requests per interval step).
    #[test]
    fn uniform_stream_rate_and_size_recovered(
        n in 10u64..500,
        interval_ms in 1u64..1000,
        len_kib in 1u64..512,
        is_write in any::<bool>(),
    ) {
        let mut trace = Trace::new();
        let kind = if is_write { IoKind::Write } else { IoKind::Read };
        for k in 0..n {
            trace.push(BlockTraceRecord {
                time: SimTime::from_secs(k as f64 * interval_ms as f64 / 1e3),
                stream: 0,
                kind,
                offset: k * 10_000_000,
                len: len_kib * 1024,
            });
        }
        let set = fit_workloads(&trace, &["a".into()], &[1 << 40], &FitConfig::default()).unwrap();
        let spec = &set.specs[0];
        let span = (n - 1) as f64 * interval_ms as f64 / 1e3;
        let expected_rate = n as f64 / span;
        let (rate, size) = if is_write {
            (spec.write_rate, spec.write_size)
        } else {
            (spec.read_rate, spec.read_size)
        };
        prop_assert!((rate - expected_rate).abs() / expected_rate < 1e-9);
        prop_assert_eq!(size, (len_kib * 1024) as f64);
        set.validate().expect("fitted set valid");
    }

    /// Run counts are recovered for exact-run synthetic streams.
    #[test]
    fn run_count_recovered(
        runs in 2u64..50,
        run_len in 1u64..64,
        len_kib in 1u64..128,
    ) {
        let mut trace = Trace::new();
        let len = len_kib * 1024;
        let mut t = 0.0;
        for r in 0..runs {
            // Separate runs by far more than the fitter's gap tolerance.
            let base = r * ((run_len * len + 1) << 31);
            for k in 0..run_len {
                trace.push(BlockTraceRecord {
                    time: SimTime::from_secs(t),
                    stream: 0,
                    kind: IoKind::Read,
                    offset: base + k * len,
                    len,
                });
                t += 0.01;
            }
        }
        let set = fit_workloads(&trace, &["a".into()], &[1 << 42], &FitConfig::default()).unwrap();
        prop_assert!(
            (set.specs[0].run_count - run_len as f64).abs() < 1e-9,
            "fitted {} expected {}",
            set.specs[0].run_count,
            run_len
        );
    }

    /// Overlaps are symmetric for fully co-active streams and bounded
    /// in [0,1] always.
    #[test]
    fn overlaps_bounded_and_fully_coactive_streams_overlap(
        n in 10u64..200,
        streams in 2u32..5,
    ) {
        let mut trace = Trace::new();
        for k in 0..n {
            for s in 0..streams {
                trace.push(BlockTraceRecord {
                    time: SimTime::from_secs(k as f64),
                    stream: s,
                    kind: IoKind::Read,
                    offset: k * 8192,
                    len: 8192,
                });
            }
        }
        let names: Vec<String> = (0..streams).map(|s| format!("s{s}")).collect();
        let sizes = vec![1u64 << 30; streams as usize];
        let set = fit_workloads(&trace, &names, &sizes, &FitConfig::default()).unwrap();
        for i in 0..streams as usize {
            for j in 0..streams as usize {
                let o = set.specs[i].overlaps[j];
                prop_assert!((0.0..=1.0).contains(&o));
                if i != j {
                    prop_assert!(o > 0.99, "O[{i}][{j}] = {o}");
                }
            }
        }
    }
}
