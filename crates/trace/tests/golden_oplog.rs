//! Golden round-trip: the committed fixture `tests/fixtures/golden.oplog`
//! (the header plus the first 40 records of a real `wasla-advisor
//! capture` run) must survive write → read → write byte-for-byte.
//!
//! This pins the on-disk format: any change to the TSV layout, the
//! float formatting, or the header string shows up as a diff against
//! the fixture instead of silently breaking captured logs in the wild.
//! `ci/check.sh` runs this suite by name in its replay-validation gate.

use wasla_trace::oplog::{OpLog, FORMAT_HEADER};

const GOLDEN: &str = include_str!("../../../tests/fixtures/golden.oplog");

#[test]
fn golden_fixture_round_trips_byte_for_byte() {
    assert!(GOLDEN.starts_with(FORMAT_HEADER));
    let log = OpLog::parse_tsv(GOLDEN).expect("committed fixture parses");
    assert_eq!(log.len(), 40, "fixture holds 40 records");
    assert_eq!(
        log.to_tsv(),
        GOLDEN,
        "write→read→write must be the identity on the committed fixture"
    );
}

#[test]
fn golden_fixture_is_clean_for_the_lossy_reader() {
    let (log, salvage) = OpLog::parse_tsv_lossy(GOLDEN).expect("lossy parse succeeds");
    assert_eq!(salvage.kept, 40);
    assert_eq!(salvage.dropped, 0);
    assert!(salvage.first_error.is_none());
    assert_eq!(log.to_tsv(), GOLDEN);
}

#[test]
fn golden_fixture_hash_agrees_with_materialized_trace() {
    let log = OpLog::parse_tsv(GOLDEN).expect("fixture parses");
    // The cache-key contract: the streamed hash equals the hash of the
    // materialized trace, so fits cached from either serve both.
    assert_eq!(log.trace_content_hash(), log.to_trace().content_hash());
}
