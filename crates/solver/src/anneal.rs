//! Randomized local search (simulated annealing).
//!
//! The paper's related-work section (§7) observes that a DAD-style
//! randomized search over layouts "would be an alternative to the NLP
//! solver that we used". We implement that alternative so the
//! benchmark suite can ablate the solver choice: perturb the current
//! point, project back onto the feasible set, and accept by the
//! Metropolis rule under a geometric cooling schedule.

use crate::pg::PgResult;
use wasla_simlib::SimRng;

/// Options for [`anneal`].
#[derive(Clone, Debug)]
pub struct AnnealOptions {
    /// Total proposal steps.
    pub steps: usize,
    /// Initial temperature (objective units).
    pub temp0: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Proposal standard deviation (per coordinate, before projection).
    pub sigma: f64,
    /// Number of coordinates perturbed per proposal.
    pub moves_per_step: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            steps: 5_000,
            temp0: 0.1,
            cooling: 0.999,
            sigma: 0.15,
            moves_per_step: 2,
            seed: 1,
        }
    }
}

/// Minimizes `f` over the set defined by `project` with simulated
/// annealing from `x0`. Returns the best point visited.
pub fn anneal<F, P>(f: F, project: P, x0: &[f64], opts: &AnnealOptions) -> PgResult
where
    F: Fn(&[f64]) -> f64,
    P: Fn(&mut [f64]),
{
    let mut rng = SimRng::new(opts.seed);
    let mut x = x0.to_vec();
    project(&mut x);
    let mut fx = f(&x);
    let mut best = x.clone();
    let mut fbest = fx;
    let mut temp = opts.temp0;
    let mut proposal = x.clone();
    for _ in 0..opts.steps {
        proposal.copy_from_slice(&x);
        for _ in 0..opts.moves_per_step {
            let i = rng.index(proposal.len());
            proposal[i] += rng.normal(0.0, opts.sigma);
        }
        project(&mut proposal);
        let fp = f(&proposal);
        let accept = fp <= fx || rng.chance(((fx - fp) / temp.max(1e-18)).exp());
        if accept {
            x.copy_from_slice(&proposal);
            fx = fp;
            if fx < fbest {
                best.copy_from_slice(&x);
                fbest = fx;
            }
        }
        temp *= opts.cooling;
    }
    PgResult {
        x: best,
        value: fbest,
        iters: opts.steps,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::project_simplex;

    #[test]
    fn solves_simplex_linear_program() {
        // min c·x on the simplex → vertex with the smallest coefficient.
        let c = [3.0, 0.5, 2.0];
        let f = move |x: &[f64]| x.iter().zip(&c).map(|(a, b)| a * b).sum::<f64>();
        let r = anneal(
            f,
            |x: &mut [f64]| project_simplex(x),
            &[1.0 / 3.0; 3],
            &AnnealOptions::default(),
        );
        assert!(r.value < 0.6, "value {}", r.value);
        assert!(r.x[1] > 0.9, "{:?}", r.x);
    }

    #[test]
    fn escapes_poor_local_minimum_sometimes() {
        // Double well with a tilted floor; start in the worse basin.
        let f = |x: &[f64]| {
            let t = x[0];
            (t * t - 1.0).powi(2) + 0.3 * t
        };
        let r = anneal(
            f,
            |x: &mut [f64]| x[0] = x[0].clamp(-2.0, 2.0),
            &[1.0],
            &AnnealOptions {
                steps: 20_000,
                temp0: 0.5,
                ..AnnealOptions::default()
            },
        );
        assert!(r.x[0] < 0.0, "stayed in the worse basin: {:?}", r.x);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let opts = AnnealOptions::default();
        let a = anneal(f, |x: &mut [f64]| project_simplex(x), &[0.5, 0.5], &opts);
        let b = anneal(f, |x: &mut [f64]| project_simplex(x), &[0.5, 0.5], &opts);
        assert_eq!(a.x, b.x);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn best_never_worse_than_start() {
        let f = |x: &[f64]| (x[0] - 0.5).powi(2);
        let start = [1.0, 0.0];
        let f0 = f(&start);
        let r = anneal(
            f,
            |x: &mut [f64]| project_simplex(x),
            &start,
            &AnnealOptions {
                steps: 100,
                ..AnnealOptions::default()
            },
        );
        assert!(r.value <= f0);
    }
}
