//! Projected-gradient descent with Armijo backtracking.
//!
//! Minimizes `f(x)` over a convex feasible set given only (a) an
//! evaluation oracle, (b) a gradient oracle (or finite differences),
//! and (c) a projection onto the set. This is the workhorse the layout
//! advisor uses in place of MINOS: the feasible set is a product of
//! simplices (one per object row), whose projection is exact and cheap.

/// Options for [`minimize`].
#[derive(Clone, Debug)]
pub struct PgOptions {
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Stop when the objective improves by less than this (relative).
    pub tol: f64,
    /// Initial step size for the line search.
    pub step0: f64,
    /// Armijo sufficient-decrease coefficient.
    pub armijo_c: f64,
    /// Backtracking factor.
    pub backtrack: f64,
    /// Maximum backtracking halvings per iteration.
    pub max_backtracks: usize,
}

impl Default for PgOptions {
    fn default() -> Self {
        PgOptions {
            max_iters: 200,
            tol: 1e-6,
            step0: 1.0,
            armijo_c: 1e-4,
            backtrack: 0.5,
            max_backtracks: 30,
        }
    }
}

/// Result of a projected-gradient run.
#[derive(Clone, Debug)]
pub struct PgResult {
    /// Final iterate (feasible).
    pub x: Vec<f64>,
    /// Final objective value.
    pub value: f64,
    /// Iterations taken.
    pub iters: usize,
    /// True if the tolerance was reached (vs. iteration cap).
    pub converged: bool,
}

/// An oracle that evaluates the objective at `x` with one coordinate
/// replaced: `f(x with x[c] := v)`. Incremental evaluation engines
/// implement this to answer finite-difference probes in O(N) from
/// cached per-column aggregates instead of re-evaluating from scratch;
/// results must be bit-identical to the full objective at the
/// perturbed point.
pub trait DeltaOracle {
    /// The objective value at `x` with `x[c]` replaced by `v`.
    fn objective_at(&self, x: &[f64], c: usize, v: f64) -> f64;
}

// hot-closure-begin: gradient kernels run inside solver closures and
// must not allocate (ci/check.sh greps this region for allocation
// idioms).

/// Central-difference gradient of a black-box objective. `h` is the
/// per-coordinate step; `scratch` is a caller-owned buffer of `x`'s
/// length (hoisted out so per-gradient calls allocate nothing).
pub fn fd_gradient<F: Fn(&[f64]) -> f64>(
    f: F,
    x: &[f64],
    h: f64,
    scratch: &mut [f64],
    grad: &mut [f64],
) {
    scratch.copy_from_slice(x);
    for i in 0..x.len() {
        let orig = scratch[i];
        scratch[i] = orig + h;
        let fp = f(scratch);
        scratch[i] = orig - h;
        let fm = f(scratch);
        scratch[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
}

/// Central-difference gradient through a [`DeltaOracle`]: each partial
/// is two single-coordinate probes, which an incremental engine
/// answers without rebuilding the full objective state.
pub fn fd_gradient_delta(oracle: &dyn DeltaOracle, x: &[f64], h: f64, grad: &mut [f64]) {
    for i in 0..x.len() {
        let orig = x[i];
        let fp = oracle.objective_at(x, i, orig + h);
        let fm = oracle.objective_at(x, i, orig - h);
        grad[i] = (fp - fm) / (2.0 * h);
    }
}

// hot-closure-end

/// Minimizes `f` over the set defined by `project`, starting from `x0`
/// (projected first if infeasible).
///
/// * `f` — objective;
/// * `grad` — writes ∇f(x) into its second argument;
/// * `project` — projects a point onto the feasible set in place.
pub fn minimize<F, G, P>(f: F, grad: G, project: P, x0: &[f64], opts: &PgOptions) -> PgResult
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
    P: Fn(&mut [f64]),
{
    let n = x0.len();
    let mut x = x0.to_vec();
    project(&mut x);
    let mut fx = f(&x);
    let mut g = vec![0.0; n];
    let mut candidate = vec![0.0; n];
    let mut converged = false;
    let mut iters = 0;
    for _ in 0..opts.max_iters {
        iters += 1;
        grad(&x, &mut g);
        // Backtracking over the projected-gradient arc.
        let mut step = opts.step0;
        let mut accepted = false;
        for _ in 0..=opts.max_backtracks {
            for i in 0..n {
                candidate[i] = x[i] - step * g[i];
            }
            project(&mut candidate);
            let fc = f(&candidate);
            // Armijo condition on the projected step: require decrease
            // proportional to the squared step distance.
            let dist2: f64 = candidate
                .iter()
                .zip(&x)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if fc <= fx - opts.armijo_c / step.max(1e-18) * dist2 && fc < fx {
                let improvement = (fx - fc) / fx.abs().max(1e-18);
                x.copy_from_slice(&candidate);
                fx = fc;
                accepted = true;
                if improvement < opts.tol {
                    converged = true;
                }
                break;
            }
            step *= opts.backtrack;
        }
        if !accepted {
            // No descent direction found: (approximate) stationarity.
            converged = true;
        }
        if converged {
            break;
        }
    }
    PgResult {
        x,
        value: fx,
        iters,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::project_simplex;

    #[test]
    fn fd_gradient_of_quadratic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let mut g = vec![0.0; 2];
        let mut scratch = vec![0.0; 2];
        fd_gradient(f, &[2.0, 5.0], 1e-5, &mut scratch, &mut g);
        assert!((g[0] - 4.0).abs() < 1e-6);
        assert!((g[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fd_gradient_delta_matches_scratch_path() {
        struct Full;
        impl DeltaOracle for Full {
            fn objective_at(&self, x: &[f64], c: usize, v: f64) -> f64 {
                let term = |i: usize| if i == c { v } else { x[i] };
                (term(0) - 0.5).powi(2) + 2.0 * term(1)
            }
        }
        let f = |x: &[f64]| (x[0] - 0.5).powi(2) + 2.0 * x[1];
        let x = [0.3, 0.7];
        let (mut ga, mut gb, mut scratch) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        fd_gradient(f, &x, 1e-5, &mut scratch, &mut ga);
        fd_gradient_delta(&Full, &x, 1e-5, &mut gb);
        for (a, b) in ga.iter().zip(&gb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn unconstrained_quadratic_converges() {
        // min (x-1)^2 + (y+2)^2 over a huge box (projection = clamp).
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
        let grad = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 1.0);
            g[1] = 2.0 * (x[1] + 2.0);
        };
        let project = |x: &mut [f64]| {
            for v in x.iter_mut() {
                *v = v.clamp(-100.0, 100.0);
            }
        };
        let r = minimize(f, grad, project, &[50.0, 50.0], &PgOptions::default());
        assert!(r.value < 1e-6, "value {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-3);
        assert!((r.x[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn simplex_constrained_linear() {
        // min c·x over the simplex → all mass on the smallest
        // coefficient.
        let c = [3.0, 1.0, 2.0];
        let f = move |x: &[f64]| x.iter().zip(&c).map(|(a, b)| a * b).sum::<f64>();
        let grad = move |_x: &[f64], g: &mut [f64]| g.copy_from_slice(&c);
        let r = minimize(
            f,
            grad,
            |x: &mut [f64]| project_simplex(x),
            &[1.0 / 3.0; 3],
            &PgOptions::default(),
        );
        assert!((r.value - 1.0).abs() < 1e-6, "value {}", r.value);
        assert!(r.x[1] > 0.999);
    }

    #[test]
    fn black_box_with_fd_gradient() {
        let f = |x: &[f64]| (x[0] - 0.25).powi(2) + (x[1] - 0.75).powi(2);
        let scratch = std::cell::RefCell::new(vec![0.0; 2]);
        let grad = |x: &[f64], g: &mut [f64]| fd_gradient(f, x, 1e-6, &mut scratch.borrow_mut(), g);
        let r = minimize(
            f,
            grad,
            |x: &mut [f64]| project_simplex(x),
            &[0.9, 0.1],
            &PgOptions::default(),
        );
        // The unconstrained optimum (0.25, 0.75) lies on the simplex.
        assert!((r.x[0] - 0.25).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.75).abs() < 1e-3);
    }

    #[test]
    fn respects_iteration_cap() {
        let f = |x: &[f64]| x[0];
        let grad = |_: &[f64], g: &mut [f64]| {
            g[0] = 1.0;
        };
        let opts = PgOptions {
            max_iters: 3,
            tol: 0.0,
            ..PgOptions::default()
        };
        let r = minimize(
            f,
            grad,
            |x: &mut [f64]| x[0] = x[0].max(-1e12),
            &[0.0],
            &opts,
        );
        assert!(r.iters <= 3);
    }

    #[test]
    fn stationary_start_stops_immediately() {
        // Start at the constrained optimum: first line search fails to
        // find descent → converged after one iteration.
        let c = [1.0, 2.0];
        let f = move |x: &[f64]| x.iter().zip(&c).map(|(a, b)| a * b).sum::<f64>();
        let grad = move |_x: &[f64], g: &mut [f64]| g.copy_from_slice(&c);
        let r = minimize(
            f,
            grad,
            |x: &mut [f64]| project_simplex(x),
            &[1.0, 0.0],
            &PgOptions::default(),
        );
        assert!(r.converged);
        assert!(r.iters <= 2);
        assert!((r.value - 1.0).abs() < 1e-9);
    }
}
