//! Multi-start optimization (the paper's Figure 4 `repeat?` loop).
//!
//! NLP solvers like MINOS find local optima and are sensitive to the
//! initial point; the paper's layout algorithm optionally repeats the
//! solve from different initial layouts — including ones proposed by a
//! knowledgeable administrator — and keeps the best result.

use crate::pg::PgResult;

/// Runs `solve` from every starting point and returns the best result
/// (lowest objective value, preferring converged runs on ties).
///
/// `solve` is executed serially to keep results deterministic; callers
/// who want parallelism can shard starting points themselves (the
/// advisor's fleet-sized problems solve in milliseconds each).
pub fn multistart<S>(starts: &[Vec<f64>], mut solve: S) -> PgResult
where
    S: FnMut(&[f64]) -> PgResult,
{
    assert!(!starts.is_empty(), "multistart needs at least one start");
    let mut best: Option<PgResult> = None;
    for start in starts {
        let r = solve(start);
        let better = match &best {
            None => true,
            Some(b) => {
                r.value < b.value - 1e-15 || (r.value <= b.value && r.converged && !b.converged)
            }
        };
        if better {
            best = Some(r);
        }
    }
    best.expect("at least one start ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{minimize, PgOptions};

    /// A double-well objective where the reachable local optimum
    /// depends on the starting side.
    fn double_well(x: &[f64]) -> f64 {
        let t = x[0];
        (t * t - 1.0).powi(2) + 0.3 * t
    }

    #[test]
    fn finds_better_of_two_basins() {
        let solve = |x0: &[f64]| {
            minimize(
                double_well,
                |x, g| {
                    let t = x[0];
                    g[0] = 4.0 * t * (t * t - 1.0) + 0.3;
                },
                |x: &mut [f64]| x[0] = x[0].clamp(-2.0, 2.0),
                x0,
                &PgOptions {
                    step0: 0.05,
                    ..PgOptions::default()
                },
            )
        };
        let from_right = solve(&[1.5]);
        let both = multistart(&[vec![1.5], vec![-1.5]], solve);
        // The left basin (t ≈ -1.04) is lower because of the +0.3t tilt.
        assert!(both.value <= from_right.value);
        assert!(both.x[0] < 0.0, "x {:?}", both.x);
    }

    #[test]
    fn single_start_passthrough() {
        let r = multistart(&[vec![0.5]], |x0| PgResult {
            x: x0.to_vec(),
            value: 42.0,
            iters: 1,
            converged: true,
        });
        assert_eq!(r.value, 42.0);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn empty_starts_panic() {
        multistart(&[], |x0| PgResult {
            x: x0.to_vec(),
            value: 0.0,
            iters: 0,
            converged: true,
        });
    }
}
