//! Multi-start optimization (the paper's Figure 4 `repeat?` loop).
//!
//! NLP solvers like MINOS find local optima and are sensitive to the
//! initial point; the paper's layout algorithm optionally repeats the
//! solve from different initial layouts — including ones proposed by a
//! knowledgeable administrator — and keeps the best result.

use crate::pg::PgResult;
use wasla_simlib::par;

/// Failure modes of [`multistart`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultistartError {
    /// No starting points were supplied, so no solve ran.
    NoStarts,
}

impl std::fmt::Display for MultistartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultistartError::NoStarts => write!(f, "multistart needs at least one start"),
        }
    }
}

impl std::error::Error for MultistartError {}

/// Runs `solve` from every starting point and returns the best result
/// (lowest objective value, preferring converged runs on ties), or
/// [`MultistartError::NoStarts`] when `starts` is empty.
///
/// The starts are independent, so they are solved concurrently on the
/// [`par`] pool (`WASLA_THREADS` controls the width); the winner is
/// then picked by scanning the results in start-index order, which
/// makes the outcome bit-identical to a serial loop at any thread
/// count. Callers no longer shard starting points themselves — pass
/// them all in and let the pool spread them.
pub fn multistart<S>(starts: &[Vec<f64>], solve: S) -> Result<PgResult, MultistartError>
where
    S: Fn(&[f64]) -> PgResult + Sync,
{
    let results = par::par_map(starts, |start| solve(start));
    let mut best: Option<PgResult> = None;
    for r in results {
        let better = match &best {
            None => true,
            Some(b) => {
                r.value < b.value - 1e-15 || (r.value <= b.value && r.converged && !b.converged)
            }
        };
        if better {
            best = Some(r);
        }
    }
    best.ok_or(MultistartError::NoStarts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{minimize, PgOptions};

    /// A double-well objective where the reachable local optimum
    /// depends on the starting side.
    fn double_well(x: &[f64]) -> f64 {
        let t = x[0];
        (t * t - 1.0).powi(2) + 0.3 * t
    }

    #[test]
    fn finds_better_of_two_basins() {
        let solve = |x0: &[f64]| {
            minimize(
                double_well,
                |x, g| {
                    let t = x[0];
                    g[0] = 4.0 * t * (t * t - 1.0) + 0.3;
                },
                |x: &mut [f64]| x[0] = x[0].clamp(-2.0, 2.0),
                x0,
                &PgOptions {
                    step0: 0.05,
                    ..PgOptions::default()
                },
            )
        };
        let from_right = solve(&[1.5]);
        let both = multistart(&[vec![1.5], vec![-1.5]], solve).unwrap();
        // The left basin (t ≈ -1.04) is lower because of the +0.3t tilt.
        assert!(both.value <= from_right.value);
        assert!(both.x[0] < 0.0, "x {:?}", both.x);
    }

    #[test]
    fn single_start_passthrough() {
        let r = multistart(&[vec![0.5]], |x0| PgResult {
            x: x0.to_vec(),
            value: 42.0,
            iters: 1,
            converged: true,
        })
        .unwrap();
        assert_eq!(r.value, 42.0);
    }

    #[test]
    fn empty_starts_is_a_typed_error() {
        let err = multistart(&[], |x0: &[f64]| PgResult {
            x: x0.to_vec(),
            value: 0.0,
            iters: 0,
            converged: true,
        })
        .unwrap_err();
        assert_eq!(err, MultistartError::NoStarts);
        assert!(err.to_string().contains("at least one start"));
    }

    #[test]
    fn ties_prefer_converged_then_earliest() {
        // Equal objective values: the earliest converged start must win
        // regardless of how the pool interleaves the solves.
        let starts: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let r = multistart(&starts, |x0| PgResult {
            x: x0.to_vec(),
            value: 1.0,
            iters: 1,
            converged: x0[0] >= 2.0,
        })
        .unwrap();
        assert_eq!(r.x, vec![2.0]);
    }
}
