//! The unified solver interface.
//!
//! The toolkit grew one entry point per search engine — [`crate::pg`]
//! behind [`crate::auglag::minimize_constrained`] for the NLP path,
//! [`crate::anneal`] for the randomized ablation — and callers
//! hard-coded which one they invoked. The staged advisor pipeline wants
//! to select engines by *name* (CLI flags, experiment configs, the
//! stage layer's solve step), so this module folds them behind one
//! object-safe [`Solver`] trait over a shared problem description,
//! [`SolveSpec`]: objective, optional gradient, inequality constraints,
//! and the feasible-set projection (per-row simplex projection from
//! [`crate::simplex`] in the layout advisor's case).
//!
//! Engine-specific needs stay inside the engines: the projected-
//! gradient solver runs constraints through the augmented-Lagrangian
//! loop, while the annealer folds them into a quadratic penalty; the
//! driver only asks [`Solver::wants_smoothing`] whether to hand over a
//! smoothed objective (gradient methods) or the raw one (randomized
//! search).

use crate::anneal::{anneal, AnnealOptions};
use crate::auglag::{minimize_constrained, AugLagOptions, Constraint};
use crate::pg::{fd_gradient, fd_gradient_delta, DeltaOracle, PgResult};
use std::cell::RefCell;

/// A boxed objective oracle.
pub type ObjectiveFn<'a> = Box<dyn Fn(&[f64]) -> f64 + 'a>;
/// A boxed gradient oracle (writes ∇f(x) into its second argument).
pub type ObjectiveGradFn<'a> = Box<dyn Fn(&[f64], &mut [f64]) + 'a>;

/// One minimization problem, engine-agnostic: minimize `objective`
/// over the set defined by `project`, subject to `constraints` ≤ 0,
/// starting from `x0`.
pub struct SolveSpec<'a> {
    /// The objective to minimize.
    pub objective: ObjectiveFn<'a>,
    /// Analytic (or structured finite-difference) gradient; engines
    /// that need one fall back to central differences with `fd_step`
    /// when absent.
    pub gradient: Option<ObjectiveGradFn<'a>>,
    /// Central-difference step for the fallback gradient.
    pub fd_step: f64,
    /// Inequality constraints `g(x) ≤ 0` that cannot be folded into
    /// the projection (the layout problem's coupling capacities).
    pub constraints: &'a [Constraint<'a>],
    /// In-place projection onto the feasible set.
    pub project: &'a dyn Fn(&mut [f64]),
    /// Starting point (projected first if infeasible).
    pub x0: &'a [f64],
    /// Optional single-coordinate perturbation oracle. Engines that
    /// fall back to finite differences prefer it over differencing the
    /// black-box objective: an incremental evaluator answers each
    /// probe in O(N) from cached column aggregates, bit-identically.
    pub delta: Option<&'a dyn DeltaOracle>,
}

/// A search engine that can drive one [`SolveSpec`] to a (local)
/// minimum. Object-safe so call sites select engines by name at
/// runtime.
pub trait Solver {
    /// Stable engine name (`"pg"`, `"anneal"`); the string call sites
    /// and configs select by.
    fn name(&self) -> &'static str;

    /// True when the engine follows gradients and therefore wants the
    /// driver to smooth non-differentiable objectives (the advisor's
    /// LSE-of-max with annealed temperatures); false for engines that
    /// only sample the objective and should see it raw.
    fn wants_smoothing(&self) -> bool;

    /// Minimizes the spec's objective; returns the final feasible
    /// iterate and objective value.
    fn minimize(&self, spec: &SolveSpec<'_>) -> PgResult;
}

/// Projected gradient + augmented Lagrangian (the paper's MINOS
/// stand-in): gradients from the spec, or central differences when the
/// caller supplies none.
#[derive(Clone, Debug, Default)]
pub struct ProjectedGradientSolver {
    /// Outer-loop options; the inner [`crate::pg::PgOptions`] ride in
    /// `auglag.inner`.
    pub auglag: AugLagOptions,
}

impl Solver for ProjectedGradientSolver {
    fn name(&self) -> &'static str {
        "pg"
    }

    fn wants_smoothing(&self) -> bool {
        true
    }

    fn minimize(&self, spec: &SolveSpec<'_>) -> PgResult {
        let f = |x: &[f64]| (spec.objective)(x);
        match &spec.gradient {
            Some(g) => minimize_constrained(
                f,
                |x: &[f64], out: &mut [f64]| g(x, out),
                spec.constraints,
                spec.project,
                spec.x0,
                &self.auglag,
            ),
            None => {
                let h = spec.fd_step;
                match spec.delta {
                    // An incremental engine answers the probes in O(N).
                    Some(oracle) => minimize_constrained(
                        f,
                        |x: &[f64], out: &mut [f64]| fd_gradient_delta(oracle, x, h, out),
                        spec.constraints,
                        spec.project,
                        spec.x0,
                        &self.auglag,
                    ),
                    None => {
                        // Hoisted perturbation buffer: the per-gradient
                        // `x.to_vec()` used to live in `fd_gradient`.
                        let scratch = RefCell::new(vec![0.0; spec.x0.len()]);
                        minimize_constrained(
                            f,
                            |x: &[f64], out: &mut [f64]| {
                                fd_gradient(&f, x, h, &mut scratch.borrow_mut(), out)
                            },
                            spec.constraints,
                            spec.project,
                            spec.x0,
                            &self.auglag,
                        )
                    }
                }
            }
        }
    }
}

/// Simulated annealing (the DAD-style randomized search the paper's §7
/// names as the NLP solver's natural alternative). Constraints become
/// a quadratic penalty `w · max(0, g(x))²` added to the objective.
#[derive(Clone, Debug)]
pub struct AnnealSolver {
    /// Cooling-schedule options.
    pub opts: AnnealOptions,
    /// Penalty weight `w` on squared constraint violation.
    pub penalty_weight: f64,
}

impl Default for AnnealSolver {
    fn default() -> Self {
        AnnealSolver {
            opts: AnnealOptions::default(),
            penalty_weight: 10.0,
        }
    }
}

impl Solver for AnnealSolver {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn wants_smoothing(&self) -> bool {
        false
    }

    fn minimize(&self, spec: &SolveSpec<'_>) -> PgResult {
        let w = self.penalty_weight;
        let f = |x: &[f64]| {
            let mut v = (spec.objective)(x);
            for c in spec.constraints {
                let over = (c.g)(x).max(0.0);
                v += w * over * over;
            }
            v
        };
        anneal(f, spec.project, spec.x0, &self.opts)
    }
}

/// The names [`solver_by_name`] accepts, in preference order.
pub const SOLVER_NAMES: &[&str] = &["pg", "anneal"];

/// Builds the named engine with default options, or `None` for an
/// unknown name. Call sites that tune options construct
/// [`ProjectedGradientSolver`] / [`AnnealSolver`] directly.
pub fn solver_by_name(name: &str) -> Option<Box<dyn Solver>> {
    match name {
        "pg" | "projected-gradient" => Some(Box::new(ProjectedGradientSolver::default())),
        "anneal" => Some(Box::new(AnnealSolver::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::project_simplex;

    fn spec_for<'a>(
        objective: ObjectiveFn<'a>,
        constraints: &'a [Constraint<'a>],
        project: &'a dyn Fn(&mut [f64]),
        x0: &'a [f64],
    ) -> SolveSpec<'a> {
        SolveSpec {
            objective,
            gradient: None,
            fd_step: 1e-6,
            constraints,
            project,
            x0,
            delta: None,
        }
    }

    #[test]
    fn both_engines_solve_the_simplex_lp() {
        // min c·x on the simplex → the vertex of the smallest coefficient.
        let c = [3.0, 0.5, 2.0];
        let project = |x: &mut [f64]| project_simplex(x);
        for solver in [
            Box::new(ProjectedGradientSolver::default()) as Box<dyn Solver>,
            Box::new(AnnealSolver::default()),
        ] {
            let f: ObjectiveFn<'_> =
                Box::new(move |x: &[f64]| x.iter().zip(&c).map(|(a, b)| a * b).sum::<f64>());
            let r = solver.minimize(&spec_for(f, &[], &project, &[1.0 / 3.0; 3]));
            assert!(r.value < 0.7, "{} value {}", solver.name(), r.value);
            assert!(r.x[1] > 0.9, "{} x {:?}", solver.name(), r.x);
        }
    }

    #[test]
    fn pg_engine_honors_constraints() {
        // min (x0-1)^2 on the simplex s.t. x0 ≤ 0.4 → x0 = 0.4.
        let project = |x: &mut [f64]| project_simplex(x);
        let cons = [Constraint {
            g: Box::new(|x: &[f64]| x[0] - 0.4),
            grad: Box::new(|_x: &[f64], g: &mut [f64]| {
                g[0] = 1.0;
                g[1] = 0.0;
            }),
        }];
        let f: ObjectiveFn<'_> = Box::new(|x: &[f64]| (x[0] - 1.0).powi(2));
        let r =
            ProjectedGradientSolver::default().minimize(&spec_for(f, &cons, &project, &[0.9, 0.1]));
        assert!((r.x[0] - 0.4).abs() < 5e-3, "x0 = {}", r.x[0]);
    }

    #[test]
    fn anneal_engine_penalizes_violation() {
        // Pull toward x0 = 1 with x0 ≤ 0.4 as a penalty: the annealer
        // must settle near the constraint boundary, not the pull.
        let project = |x: &mut [f64]| project_simplex(x);
        let cons = [Constraint {
            g: Box::new(|x: &[f64]| x[0] - 0.4),
            grad: Box::new(|_x: &[f64], g: &mut [f64]| {
                g[0] = 1.0;
                g[1] = 0.0;
            }),
        }];
        let f: ObjectiveFn<'_> = Box::new(|x: &[f64]| (x[0] - 1.0).powi(2));
        let solver = AnnealSolver {
            penalty_weight: 100.0,
            ..AnnealSolver::default()
        };
        let r = solver.minimize(&spec_for(f, &cons, &project, &[0.5, 0.5]));
        assert!(r.x[0] < 0.55, "x0 = {}", r.x[0]);
    }

    #[test]
    fn selection_by_name() {
        assert_eq!(solver_by_name("pg").unwrap().name(), "pg");
        assert_eq!(solver_by_name("anneal").unwrap().name(), "anneal");
        assert!(solver_by_name("minos").is_none());
        for name in SOLVER_NAMES {
            assert_eq!(solver_by_name(name).unwrap().name(), *name);
        }
    }
}
