//! Augmented-Lagrangian handling of inequality constraints.
//!
//! The capacity constraints `Σᵢ sᵢ Lᵢⱼ ≤ cⱼ` couple the layout rows, so
//! they cannot be folded into the per-row simplex projection. We wrap
//! the projected-gradient inner solver in a standard augmented-
//! Lagrangian loop for inequalities `g_k(x) ≤ 0`:
//!
//! `L(x; λ, ρ) = f(x) + 1/(2ρ) Σ_k ( max(0, λ_k + ρ g_k(x))² − λ_k² )`
//!
//! with multiplier updates `λ_k ← max(0, λ_k + ρ g_k(x))` and penalty
//! growth when constraint violation stalls.

use crate::pg::{minimize, PgOptions, PgResult};

/// A boxed constraint-value oracle.
pub type ValueFn<'a> = Box<dyn Fn(&[f64]) -> f64 + 'a>;
/// A boxed constraint-gradient oracle.
pub type GradFn<'a> = Box<dyn Fn(&[f64], &mut [f64]) + 'a>;

/// One inequality constraint `g(x) ≤ 0` with its gradient.
pub struct Constraint<'a> {
    /// Constraint value; feasible when ≤ 0.
    pub g: ValueFn<'a>,
    /// Writes ∇g(x) into the slice.
    pub grad: GradFn<'a>,
}

/// Options for the augmented-Lagrangian outer loop.
#[derive(Clone, Debug)]
pub struct AugLagOptions {
    /// Inner projected-gradient options.
    pub inner: PgOptions,
    /// Outer iterations (multiplier updates).
    pub outer_iters: usize,
    /// Initial penalty ρ.
    pub rho0: f64,
    /// Penalty growth factor when violation does not shrink enough.
    pub rho_growth: f64,
    /// Constraint tolerance: max violation below this counts feasible.
    pub feas_tol: f64,
}

impl Default for AugLagOptions {
    fn default() -> Self {
        AugLagOptions {
            inner: PgOptions::default(),
            outer_iters: 10,
            rho0: 10.0,
            rho_growth: 4.0,
            feas_tol: 1e-6,
        }
    }
}

/// Minimizes `f` subject to `g_k(x) ≤ 0` and membership in the
/// projection set.
pub fn minimize_constrained<F, G, P>(
    f: F,
    grad_f: G,
    constraints: &[Constraint<'_>],
    project: P,
    x0: &[f64],
    opts: &AugLagOptions,
) -> PgResult
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
    P: Fn(&mut [f64]),
{
    if constraints.is_empty() {
        return minimize(f, grad_f, project, x0, &opts.inner);
    }
    let k = constraints.len();
    let mut lambda = vec![0.0f64; k];
    let mut rho = opts.rho0;
    let mut x = x0.to_vec();
    let mut best: Option<PgResult> = None;
    let mut prev_violation = f64::INFINITY;
    // Shared constraint-gradient buffer, hoisted out of the inner
    // closures: the AL gradient runs once per PG iteration and must
    // not pay an allocation per call.
    let gbuf = std::cell::RefCell::new(vec![0.0f64; x0.len()]);

    for _ in 0..opts.outer_iters {
        let lam = lambda.clone();
        // hot-closure-begin: the AL objective/gradient closures run in
        // the PG inner loop and must not allocate (ci/check.sh greps
        // this region for allocation idioms).
        let al = |x: &[f64]| {
            let mut v = f(x);
            for (c, &l) in constraints.iter().zip(&lam) {
                let t = (l + rho * (c.g)(x)).max(0.0);
                v += (t * t - l * l) / (2.0 * rho);
            }
            v
        };
        let result = {
            let grad_al = |x: &[f64], g: &mut [f64]| {
                grad_f(x, g);
                let mut buf = gbuf.borrow_mut();
                for (c, &l) in constraints.iter().zip(&lam) {
                    let t = (l + rho * (c.g)(x)).max(0.0);
                    if t > 0.0 {
                        (c.grad)(x, &mut buf);
                        for (gi, bi) in g.iter_mut().zip(buf.iter()) {
                            *gi += t * bi;
                        }
                    }
                }
            };
            minimize(al, grad_al, &project, &x, &opts.inner)
        };
        // hot-closure-end
        x.copy_from_slice(&result.x);
        // Multiplier update and violation tracking.
        let mut violation = 0.0f64;
        for (idx, c) in constraints.iter().enumerate() {
            let gv = (c.g)(&x);
            violation = violation.max(gv.max(0.0));
            lambda[idx] = (lambda[idx] + rho * gv).max(0.0);
        }
        let fx = f(&x);
        let record = PgResult {
            x: x.clone(),
            value: fx,
            iters: result.iters,
            converged: result.converged && violation <= opts.feas_tol,
        };
        let improves = match &best {
            None => true,
            Some(b) => violation <= opts.feas_tol && (fx < b.value || !b.converged),
        };
        if improves {
            best = Some(record);
        }
        if violation <= opts.feas_tol {
            if result.converged {
                break;
            }
        } else if violation > 0.5 * prev_violation {
            rho *= opts.rho_growth;
        }
        prev_violation = violation;
    }
    best.unwrap_or(PgResult {
        x,
        value: f64::INFINITY,
        iters: 0,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::project_simplex;

    #[test]
    fn unconstrained_passthrough() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2);
        let grad = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 0.3);
            g[1] = 2.0 * (x[1] - 0.7);
        };
        let r = minimize_constrained(
            f,
            grad,
            &[],
            |x: &mut [f64]| project_simplex(x),
            &[0.5, 0.5],
            &AugLagOptions::default(),
        );
        assert!((r.x[0] - 0.3).abs() < 1e-3);
    }

    #[test]
    fn capacity_like_constraint_binds() {
        // min (x0-1)^2 on the simplex, s.t. x0 ≤ 0.4 — optimum x0=0.4.
        let f = |x: &[f64]| (x[0] - 1.0).powi(2);
        let grad = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 1.0);
            g[1] = 0.0;
        };
        let cons = [Constraint {
            g: Box::new(|x: &[f64]| x[0] - 0.4),
            grad: Box::new(|_x: &[f64], g: &mut [f64]| {
                g[0] = 1.0;
                g[1] = 0.0;
            }),
        }];
        let r = minimize_constrained(
            f,
            grad,
            &cons,
            |x: &mut [f64]| project_simplex(x),
            &[0.9, 0.1],
            &AugLagOptions::default(),
        );
        assert!(
            (r.x[0] - 0.4).abs() < 5e-3,
            "x0 = {} (expected 0.4)",
            r.x[0]
        );
    }

    #[test]
    fn inactive_constraint_ignored() {
        // Constraint x0 ≤ 10 never binds on the simplex.
        let f = |x: &[f64]| (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
        let grad = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 0.5);
            g[1] = 2.0 * (x[1] - 0.5);
        };
        let cons = [Constraint {
            g: Box::new(|x: &[f64]| x[0] - 10.0),
            grad: Box::new(|_x: &[f64], g: &mut [f64]| {
                g[0] = 1.0;
                g[1] = 0.0;
            }),
        }];
        let r = minimize_constrained(
            f,
            grad,
            &cons,
            |x: &mut [f64]| project_simplex(x),
            &[1.0, 0.0],
            &AugLagOptions::default(),
        );
        assert!((r.x[0] - 0.5).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn two_constraints() {
        // min -(x0 + 2 x1) on simplex with x1 ≤ 0.6, x0 ≤ 0.9:
        // optimum x1 = 0.6, x0 = 0.4.
        let f = |x: &[f64]| -(x[0] + 2.0 * x[1]);
        let grad = |_x: &[f64], g: &mut [f64]| {
            g[0] = -1.0;
            g[1] = -2.0;
        };
        let cons = [
            Constraint {
                g: Box::new(|x: &[f64]| x[1] - 0.6),
                grad: Box::new(|_x: &[f64], g: &mut [f64]| {
                    g[0] = 0.0;
                    g[1] = 1.0;
                }),
            },
            Constraint {
                g: Box::new(|x: &[f64]| x[0] - 0.9),
                grad: Box::new(|_x: &[f64], g: &mut [f64]| {
                    g[0] = 1.0;
                    g[1] = 0.0;
                }),
            },
        ];
        let r = minimize_constrained(
            f,
            grad,
            &cons,
            |x: &mut [f64]| project_simplex(x),
            &[0.5, 0.5],
            &AugLagOptions::default(),
        );
        assert!((r.x[1] - 0.6).abs() < 5e-3, "{:?}", r.x);
        assert!((r.x[0] - 0.4).abs() < 5e-3, "{:?}", r.x);
    }
}
