//! Non-linear programming toolkit for the layout advisor.
//!
//! The paper formulates layout as a non-convex NLP and feeds it to a
//! generic solver (AMPL + MINOS, §4.1). This crate is our from-scratch
//! equivalent, shaped to the layout problem's structure while staying
//! generic:
//!
//! * [`simplex`] — exact Euclidean projection onto the probability
//!   simplex (the integrity constraint makes each object's layout row
//!   a point on a simplex);
//! * [`smoothing`] — log-sum-exp smoothing of the non-differentiable
//!   `max` objective, with softmax weights for gradients;
//! * [`pg`] — projected-gradient descent with Armijo backtracking and
//!   finite-difference gradients for black-box objectives (MINOS also
//!   differences external functions);
//! * [`auglag`] — an augmented-Lagrangian outer loop for the coupling
//!   capacity constraints;
//! * [`mod@anneal`] — a randomized local-search solver in the spirit of the
//!   Disk Array Designer's search (paper §7 suggests it as the obvious
//!   alternative to an NLP solver), used for ablations;
//! * [`mod@multistart`] — repeat optimization from several initial layouts
//!   and keep the best (the paper's Figure 4 `repeat?` loop);
//! * [`mod@solver`] — the unified [`Solver`] trait folding the engines
//!   behind one object-safe interface selected by name, so multistart
//!   and the advisor's stage layer pick engines at runtime.

pub mod anneal;
pub mod auglag;
pub mod multistart;
pub mod pg;
pub mod simplex;
pub mod smoothing;
pub mod solver;

pub use anneal::{anneal, AnnealOptions};
pub use auglag::{minimize_constrained, AugLagOptions, Constraint};
pub use multistart::{multistart, MultistartError};
pub use pg::{fd_gradient, fd_gradient_delta, minimize, DeltaOracle, PgOptions, PgResult};
pub use simplex::{project_scaled_simplex, project_simplex};
pub use smoothing::{lse_max, softmax_weights};
pub use solver::{
    solver_by_name, AnnealSolver, ObjectiveFn, ObjectiveGradFn, ProjectedGradientSolver, SolveSpec,
    Solver, SOLVER_NAMES,
};
