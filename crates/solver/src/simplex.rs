//! Euclidean projection onto the probability simplex.
//!
//! The layout problem's integrity constraint `Σⱼ Lᵢⱼ = 1, Lᵢⱼ ≥ 0`
//! puts each object's row on the probability simplex. Projected
//! gradient needs the exact Euclidean projection, computed with the
//! classic sort-and-threshold algorithm (Held/Wolfe/Crowder; see also
//! Duchi et al. 2008): find `θ` such that `Σⱼ max(xⱼ - θ, 0) = 1`.

/// Projects `x` in place onto the simplex `{ y : y ≥ 0, Σ y = s }`.
///
/// `s` must be positive. O(M log M) in the row length.
pub fn project_scaled_simplex(x: &mut [f64], s: f64) {
    debug_assert!(s > 0.0);
    debug_assert!(!x.is_empty());
    let n = x.len();
    // Sort a copy descending to find the threshold.
    let mut u: Vec<f64> = x.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let mut cumsum = 0.0;
    let mut theta = 0.0;
    let mut rho = 0;
    for (k, &uk) in u.iter().enumerate() {
        cumsum += uk;
        let t = (cumsum - s) / (k + 1) as f64;
        if uk - t > 0.0 {
            theta = t;
            rho = k + 1;
        }
    }
    debug_assert!(rho > 0, "projection threshold not found for n={n}");
    for v in x.iter_mut() {
        *v = (*v - theta).max(0.0);
    }
}

/// Projects `x` in place onto the probability simplex (sum 1).
pub fn project_simplex(x: &mut [f64]) {
    project_scaled_simplex(x, 1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_simlib::SimRng;

    fn assert_on_simplex(x: &[f64]) {
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(x.iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn already_on_simplex_unchanged() {
        let mut x = vec![0.2, 0.3, 0.5];
        let orig = x.clone();
        project_simplex(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_from_equal_inputs() {
        let mut x = vec![5.0; 4];
        project_simplex(&mut x);
        for &v in &x {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_entries_clipped() {
        let mut x = vec![-1.0, 0.0, 2.0];
        project_simplex(&mut x);
        assert_on_simplex(&x);
        assert_eq!(x[0], 0.0);
        assert!(x[2] > x[1]);
    }

    #[test]
    fn single_element() {
        let mut x = vec![17.0];
        project_simplex(&mut x);
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_simplex() {
        let mut x = vec![1.0, 2.0, 3.0];
        project_scaled_simplex(&mut x, 6.0);
        let sum: f64 = x.iter().sum();
        assert!((sum - 6.0).abs() < 1e-9);
        assert!((x[0] - 1.0).abs() < 1e-9); // already feasible: unchanged
    }

    /// Brute-force check of optimality: the projection must be at least
    /// as close to the input as a dense sample of simplex points.
    #[test]
    fn projection_is_nearest_point() {
        let mut rng = SimRng::new(99);
        for _ in 0..50 {
            let x0: Vec<f64> = (0..3).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
            let mut proj = x0.clone();
            project_simplex(&mut proj);
            assert_on_simplex(&proj);
            let d_proj: f64 = proj.iter().zip(&x0).map(|(a, b)| (a - b) * (a - b)).sum();
            // Sample simplex points on a grid.
            let steps = 20;
            for i in 0..=steps {
                for j in 0..=(steps - i) {
                    let p = [
                        i as f64 / steps as f64,
                        j as f64 / steps as f64,
                        (steps - i - j) as f64 / steps as f64,
                    ];
                    let d: f64 = p.iter().zip(&x0).map(|(a, b)| (a - b) * (a - b)).sum();
                    assert!(
                        d_proj <= d + 1e-9,
                        "grid point {p:?} closer than projection {proj:?} to {x0:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn idempotent() {
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            let mut x: Vec<f64> = (0..6).map(|_| rng.uniform_range(-3.0, 3.0)).collect();
            project_simplex(&mut x);
            let once = x.clone();
            project_simplex(&mut x);
            for (a, b) in x.iter().zip(&once) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
