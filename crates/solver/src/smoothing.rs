//! Log-sum-exp smoothing of the `max` objective.
//!
//! The layout objective `min max_j µ_j` is non-differentiable at ties.
//! We smooth it with the log-sum-exp upper bound
//! `lse_τ(µ) = τ · ln Σ_j exp(µ_j / τ)`, which satisfies
//! `max µ ≤ lse_τ(µ) ≤ max µ + τ ln M` and converges to the max as the
//! temperature τ → 0. The solver anneals τ downward across rounds.

/// Smoothed maximum of `values` at temperature `temp > 0`.
///
/// Numerically stable: shifts by the true max before exponentiating.
pub fn lse_max(values: &[f64], temp: f64) -> f64 {
    debug_assert!(temp > 0.0);
    debug_assert!(!values.is_empty());
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = values.iter().map(|&v| ((v - max) / temp).exp()).sum();
    max + temp * sum.ln()
}

/// Softmax weights `∂ lse_τ / ∂ µ_j` — the chain-rule factors for
/// differentiating through the smoothed max. They are non-negative and
/// sum to 1, concentrating on the argmax as τ → 0.
pub fn softmax_weights(values: &[f64], temp: f64, out: &mut Vec<f64>) {
    debug_assert!(temp > 0.0);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(values.iter().map(|&v| ((v - max) / temp).exp()));
    let sum: f64 = out.iter().sum();
    for w in out.iter_mut() {
        *w /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold() {
        let v = [1.0, 3.0, 2.0];
        for temp in [1.0, 0.1, 0.01] {
            let s = lse_max(&v, temp);
            assert!(s >= 3.0, "temp {temp}: {s}");
            assert!(s <= 3.0 + temp * (v.len() as f64).ln() + 1e-12);
        }
    }

    #[test]
    fn converges_to_max() {
        let v = [0.4, 0.9, 0.1, 0.9];
        assert!((lse_max(&v, 1e-4) - 0.9).abs() < 1e-3);
    }

    #[test]
    fn stable_for_large_values() {
        let v = [1e8, 2e8];
        let s = lse_max(&v, 1.0);
        assert!((s - 2e8).abs() < 1.0);
    }

    #[test]
    fn softmax_sums_to_one_and_concentrates() {
        let v = [1.0, 2.0, 3.0];
        let mut w = Vec::new();
        softmax_weights(&v, 0.5, &mut w);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(w[2] > w[1] && w[1] > w[0]);
        softmax_weights(&v, 0.01, &mut w);
        assert!(w[2] > 0.99);
    }

    #[test]
    fn softmax_uniform_at_high_temperature() {
        let v = [1.0, 2.0, 3.0];
        let mut w = Vec::new();
        softmax_weights(&v, 1e6, &mut w);
        for &x in &w {
            assert!((x - 1.0 / 3.0).abs() < 1e-3);
        }
    }
}
