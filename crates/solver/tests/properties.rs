//! Property tests for the NLP toolkit.

use wasla_simlib::proptest::prelude::*;
use wasla_solver::{lse_max, project_scaled_simplex, project_simplex, softmax_weights};

proptest! {
    /// Projection always lands on the simplex.
    #[test]
    fn projection_is_feasible(
        x in proptest::collection::vec(-10.0f64..10.0, 1..30),
    ) {
        let mut p = x.clone();
        project_simplex(&mut p);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
        prop_assert!(p.iter().all(|&v| v >= -1e-12));
    }

    /// Projection is idempotent.
    #[test]
    fn projection_is_idempotent(
        x in proptest::collection::vec(-10.0f64..10.0, 1..30),
    ) {
        let mut once = x.clone();
        project_simplex(&mut once);
        let mut twice = once.clone();
        project_simplex(&mut twice);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Projection preserves coordinate order: if x_i ≥ x_j then the
    /// projected values satisfy p_i ≥ p_j (the threshold shift is
    /// uniform).
    #[test]
    fn projection_preserves_order(
        x in proptest::collection::vec(-10.0f64..10.0, 2..30),
    ) {
        let mut p = x.clone();
        project_simplex(&mut p);
        for i in 0..x.len() {
            for j in 0..x.len() {
                if x[i] >= x[j] {
                    prop_assert!(p[i] >= p[j] - 1e-9);
                }
            }
        }
    }

    /// The projection of a feasible point is itself.
    #[test]
    fn projection_fixes_feasible_points(
        raw in proptest::collection::vec(0.001f64..1.0, 1..30),
    ) {
        let total: f64 = raw.iter().sum();
        let feasible: Vec<f64> = raw.iter().map(|v| v / total).collect();
        let mut p = feasible.clone();
        project_simplex(&mut p);
        for (a, b) in p.iter().zip(&feasible) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Scaled projection hits the requested sum.
    #[test]
    fn scaled_projection_sums(
        x in proptest::collection::vec(-5.0f64..5.0, 1..20),
        s in 0.1f64..50.0,
    ) {
        let mut p = x.clone();
        project_scaled_simplex(&mut p, s);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - s).abs() < 1e-7 * s.max(1.0));
    }

    /// LSE is a tight upper bound on max: max ≤ lse ≤ max + τ·ln n.
    #[test]
    fn lse_bounds(
        values in proptest::collection::vec(-100.0f64..100.0, 1..50),
        temp in 0.001f64..10.0,
    ) {
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s = lse_max(&values, temp);
        prop_assert!(s >= max - 1e-9);
        prop_assert!(s <= max + temp * (values.len() as f64).ln() + 1e-9);
    }

    /// Softmax weights form a probability distribution.
    #[test]
    fn softmax_is_distribution(
        values in proptest::collection::vec(-100.0f64..100.0, 1..50),
        temp in 0.001f64..10.0,
    ) {
        let mut w = Vec::new();
        softmax_weights(&values, temp, &mut w);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
    }
}
