//! Per-device and per-target runtime statistics.

use wasla_simlib::impl_json_struct;
use wasla_simlib::{OnlineStats, SimTime, TimeWeighted};

/// Statistics accumulated by one simulated device.
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Service time (seconds) of completed requests.
    pub service: OnlineStats,
    /// Response time (queue wait + service, seconds).
    pub response: OnlineStats,
    /// Time-weighted fraction of servers busy (utilization).
    pub busy: TimeWeighted,
    /// Time-weighted queue depth (pending + in flight).
    pub depth: TimeWeighted,
}

impl DeviceStats {
    /// Total completed requests.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.mean_until(now)
    }

    /// Busy seconds over `[0, now]`.
    pub fn busy_seconds(&self, now: SimTime) -> f64 {
        self.busy.integral_until(now)
    }
}

impl_json_struct!(DeviceStats {
    reads,
    writes,
    bytes_read,
    bytes_written,
    service,
    response,
    busy,
    depth,
});

/// Aggregated statistics for a target (over its member devices).
#[derive(Clone, Debug)]
pub struct TargetStats {
    /// Target name.
    pub name: String,
    /// Completed target-level requests.
    pub requests: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Target-level response time (submit to last part completion).
    pub response: OnlineStats,
    /// Utilization of the busiest member device.
    pub max_member_utilization: f64,
    /// Mean utilization across member devices.
    pub mean_member_utilization: f64,
}

impl_json_struct!(TargetStats {
    name,
    requests,
    bytes,
    response,
    max_member_utilization,
    mean_member_utilization,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_tracks_busy_signal() {
        let mut s = DeviceStats::default();
        s.busy.set(SimTime::ZERO, 1.0);
        s.busy.set(SimTime::from_secs(2.0), 0.0);
        assert!((s.utilization(SimTime::from_secs(4.0)) - 0.5).abs() < 1e-12);
        assert!((s.busy_seconds(SimTime::from_secs(4.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn request_counts() {
        let s = DeviceStats {
            reads: 3,
            writes: 4,
            ..DeviceStats::default()
        };
        assert_eq!(s.requests(), 7);
    }
}
