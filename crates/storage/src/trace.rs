//! Block I/O trace records.
//!
//! The paper's pipeline obtains workload descriptions by tracing the
//! operational database's I/O and fitting Rome parameters with the
//! Rubicon tool (§5.1). Our simulator emits the same kind of trace:
//! one record per object-level request with a timestamp, the object
//! (stream), the object-relative offset, length, and direction. The
//! `wasla-trace` crate implements the fitting.

use crate::request::IoKind;
use wasla_simlib::impl_json_struct;
use wasla_simlib::SimTime;

/// One traced block request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockTraceRecord {
    /// Submission time.
    pub time: SimTime,
    /// Stream (database object) identifier.
    pub stream: u32,
    /// Read or write.
    pub kind: IoKind,
    /// Offset *within the object* in bytes.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// An in-memory I/O trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    records: Vec<BlockTraceRecord>,
}

impl_json_struct!(BlockTraceRecord {
    time,
    stream,
    kind,
    offset,
    len
});
impl_json_struct!(Trace { records });

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            records: Vec::new(),
        }
    }

    /// Appends a record. Records must be appended in non-decreasing
    /// time order (the simulator guarantees this).
    pub fn push(&mut self, rec: BlockTraceRecord) {
        debug_assert!(
            self.records.last().map_or(true, |l| l.time <= rec.time),
            "trace records out of order"
        );
        self.records.push(rec);
    }

    /// All records in time order.
    pub fn records(&self) -> &[BlockTraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time span from first to last record (zero if < 2 records).
    pub fn span(&self) -> SimTime {
        match (self.records.first(), self.records.last()) {
            (Some(f), Some(l)) => l.time - f.time,
            _ => SimTime::ZERO,
        }
    }

    /// Records for one stream, preserving time order.
    pub fn stream(&self, stream: u32) -> impl Iterator<Item = &BlockTraceRecord> {
        self.records.iter().filter(move |r| r.stream == stream)
    }

    /// A stable 64-bit content hash over every record, for use as a
    /// stage-cache key: two traces hash equal iff they would drive any
    /// deterministic consumer identically. Hashes the raw fields
    /// directly (not a JSON rendering) so keying a session cache stays
    /// cheap next to the fitting work it guards.
    pub fn content_hash(&self) -> u64 {
        let mut h = wasla_simlib::hash::Fnv64::new();
        h.write_u64(self.records.len() as u64);
        for r in &self.records {
            h.write_f64(r.time.as_secs());
            h.write_u64(r.stream as u64);
            h.write_u64(match r.kind {
                IoKind::Read => 0,
                IoKind::Write => 1,
            });
            h.write_u64(r.offset);
            h.write_u64(r.len);
        }
        h.finish()
    }

    /// The [`Trace::content_hash`] this trace would have if every
    /// record past the first `keep` had its stream id replaced by
    /// `u32::MAX` — the shape fault injection produces. Lets a cache
    /// layer key the salvage of a damaged trace without materializing
    /// the damaged copy first.
    pub fn content_hash_damaged(&self, keep: usize) -> u64 {
        let mut h = wasla_simlib::hash::Fnv64::new();
        h.write_u64(self.records.len() as u64);
        for (i, r) in self.records.iter().enumerate() {
            let stream = if i < keep { r.stream } else { u32::MAX };
            h.write_f64(r.time.as_secs());
            h.write_u64(stream as u64);
            h.write_u64(match r.kind {
                IoKind::Read => 0,
                IoKind::Write => 1,
            });
            h.write_u64(r.offset);
            h.write_u64(r.len);
        }
        h.finish()
    }

    /// Distinct stream ids, ascending.
    pub fn stream_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.records.iter().map(|r| r.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, stream: u32, offset: u64) -> BlockTraceRecord {
        BlockTraceRecord {
            time: SimTime::from_secs(t),
            stream,
            kind: IoKind::Read,
            offset,
            len: 8192,
        }
    }

    #[test]
    fn push_and_query() {
        let mut tr = Trace::new();
        assert!(tr.is_empty());
        tr.push(rec(0.0, 1, 0));
        tr.push(rec(1.0, 2, 100));
        tr.push(rec(2.0, 1, 8192));
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.span(), SimTime::from_secs(2.0));
        assert_eq!(tr.stream_ids(), vec![1, 2]);
        let s1: Vec<_> = tr.stream(1).collect();
        assert_eq!(s1.len(), 2);
        assert_eq!(s1[1].offset, 8192);
    }

    #[test]
    fn damaged_hash_matches_materialized_damage() {
        let mut tr = Trace::new();
        for k in 0..10 {
            tr.push(rec(k as f64, k % 3, k as u64 * 4096));
        }
        for keep in [0, 3, 10] {
            let mut damaged = Trace::new();
            for (i, r) in tr.records().iter().enumerate() {
                let mut r = *r;
                if i >= keep {
                    r.stream = u32::MAX;
                }
                damaged.push(r);
            }
            assert_eq!(tr.content_hash_damaged(keep), damaged.content_hash());
        }
        assert_eq!(tr.content_hash_damaged(10), tr.content_hash());
        assert_ne!(tr.content_hash_damaged(3), tr.content_hash());
    }
}
