//! Storage substrate for WASLA: simulated disks, SSDs, and RAID-0
//! groups composed into *storage targets*, the unit the layout advisor
//! places database objects onto (paper §3).
//!
//! The simulator is event-driven and deterministic. It reproduces the
//! performance effects the paper's experiments depend on:
//!
//! * a large gap between sequential and random service times on disks
//!   (seek + rotational latency vs. streaming transfer);
//! * readahead that can track a *small* number of concurrent sequential
//!   streams, so modest interference preserves sequentiality while
//!   heavy interference collapses it (paper Figure 8);
//! * queue-depth-dependent head scheduling (SSTF/elevator), so random
//!   request cost *decreases* slowly as contention deepens the queue
//!   (also Figure 8);
//! * SSDs with near-uniform random/sequential cost and internal channel
//!   parallelism, much faster than disks for small random I/O;
//! * RAID-0 striping that splits requests across member devices.
//!
//! The main entry point is [`StorageSystem`]: callers submit tagged
//! [`TargetIo`] requests against targets and drain [`Completion`]s as
//! simulated time advances. The driver (the `wasla-exec` crate) owns
//! the outer event loop; the storage system exposes its next internal
//! event time so the two can be merged.

pub mod device;
pub mod disk;
pub mod request;
pub mod sched;
pub mod ssd;
pub mod stats;
pub mod system;
pub mod target;
pub mod tier;
pub mod trace;

pub use device::{DeviceKind, DeviceModel, DeviceSpec};
pub use disk::DiskParams;
pub use request::{IoKind, TargetIo};
pub use sched::SchedulerKind;
pub use ssd::SsdParams;
pub use stats::{DeviceStats, TargetStats};
pub use system::{Completion, StorageSystem};
pub use target::{TargetConfig, TargetId};
pub use tier::{Tier, TierClass};
pub use trace::{BlockTraceRecord, Trace};

/// One kibibyte in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * MIB;
