//! The storage system: a set of targets advanced by discrete events.
//!
//! The driver submits [`TargetIo`] requests tagged with an opaque `u64`
//! and later drains [`Completion`]s. The system keeps its own internal
//! event queue for device completions; the driver merges the two clocks
//! by asking [`StorageSystem::next_event_time`] and calling
//! [`StorageSystem::advance_until`].

use crate::device::DeviceModel;
use crate::request::{DeviceIo, IoKind, TargetIo};
use crate::sched::SchedulerKind;
use crate::stats::{DeviceStats, TargetStats};
use crate::target::{TargetConfig, TargetId};
use wasla_simlib::{EventQueue, SimRng, SimTime};

/// Notification that a previously submitted target request finished.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The caller's tag from [`StorageSystem::submit`].
    pub tag: u64,
    /// Target the request ran against.
    pub target: TargetId,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time of the last member-device part.
    pub finished: SimTime,
}

impl Completion {
    /// Response time (queueing + service across all parts).
    pub fn response(&self) -> SimTime {
        self.finished - self.submitted
    }
}

/// A queued member-device request with bookkeeping.
struct QueuedIo {
    io: DeviceIo,
    parent: usize,
    enqueued: SimTime,
}

/// A target-level request being assembled from device parts.
struct ParentReq {
    tag: u64,
    target: TargetId,
    submitted: SimTime,
    remaining: u32,
    bytes: u64,
}

/// Internal event: a device finished servicing one part.
struct DeviceDone {
    device: usize,
    parent: usize,
    enqueued: SimTime,
    started: SimTime,
    io: DeviceIo,
}

struct DeviceRuntime {
    model: Box<dyn DeviceModel>,
    rng: SimRng,
    scheduler: SchedulerKind,
    pending: Vec<QueuedIo>,
    in_flight: usize,
    stats: DeviceStats,
    /// Service-time multiplier for injected degradation; exactly 1.0
    /// (the default) leaves service times bit-identical.
    latency_factor: f64,
}

impl DeviceRuntime {
    fn record_occupancy(&mut self, now: SimTime) {
        let par = self.model.parallelism() as f64;
        self.stats.busy.set(now, self.in_flight as f64 / par);
        self.stats
            .depth
            .set(now, (self.in_flight + self.pending.len()) as f64);
    }
}

struct TargetRuntime {
    config: TargetConfig,
    /// Indices into the flat device list.
    devices: Vec<usize>,
    requests: u64,
    bytes: u64,
    response: wasla_simlib::OnlineStats,
}

/// A simulated storage system with `M` independent targets.
pub struct StorageSystem {
    targets: Vec<TargetRuntime>,
    devices: Vec<DeviceRuntime>,
    queue: EventQueue<DeviceDone>,
    parents: Vec<Option<ParentReq>>,
    free_parents: Vec<usize>,
    completions: Vec<Completion>,
}

impl StorageSystem {
    /// Builds a storage system from target configurations. `seed`
    /// drives the deterministic per-device randomness (rotational
    /// position sampling).
    pub fn new(configs: Vec<TargetConfig>, seed: u64) -> Self {
        let mut root_rng = SimRng::new(seed ^ 0x57a5_1a5e);
        let mut devices = Vec::new();
        let mut targets = Vec::new();
        for config in configs {
            let mut dev_ids = Vec::with_capacity(config.members.len());
            for member in &config.members {
                dev_ids.push(devices.len());
                devices.push(DeviceRuntime {
                    model: member.build(),
                    rng: root_rng.fork(devices.len() as u64),
                    scheduler: config.scheduler,
                    pending: Vec::new(),
                    in_flight: 0,
                    stats: DeviceStats::default(),
                    latency_factor: 1.0,
                });
            }
            targets.push(TargetRuntime {
                config,
                devices: dev_ids,
                requests: 0,
                bytes: 0,
                response: wasla_simlib::OnlineStats::new(),
            });
        }
        StorageSystem {
            targets,
            devices,
            queue: EventQueue::new(),
            parents: Vec::new(),
            free_parents: Vec::new(),
            completions: Vec::new(),
        }
    }

    /// Number of targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Degrades every member device of `target`: all subsequent service
    /// times are multiplied by `factor`. Used by the fault-injection
    /// layer to model slow or effectively failed targets.
    pub fn degrade_target(&mut self, target: TargetId, factor: f64) {
        debug_assert!(factor >= 1.0, "degradation must not speed devices up");
        for &d in &self.targets[target].devices {
            self.devices[d].latency_factor = factor;
        }
    }

    /// The configuration of a target.
    pub fn target_config(&self, target: TargetId) -> &TargetConfig {
        &self.targets[target].config
    }

    /// Capacities of all targets in bytes.
    pub fn capacities(&self) -> Vec<u64> {
        self.targets.iter().map(|t| t.config.capacity()).collect()
    }

    /// Submits a request against `target` at time `now`, to complete
    /// asynchronously. `tag` is returned in the [`Completion`].
    pub fn submit(&mut self, now: SimTime, target: TargetId, io: TargetIo, tag: u64) {
        debug_assert!(io.len > 0, "zero-length I/O");
        debug_assert!(
            io.end() <= self.targets[target].config.capacity(),
            "I/O past end of target {target}: end {} > capacity {}",
            io.end(),
            self.targets[target].config.capacity()
        );
        let parts = self.targets[target].config.translate(&io);
        let parent_idx = self.alloc_parent(ParentReq {
            tag,
            target,
            submitted: now,
            remaining: parts.len() as u32,
            bytes: io.len,
        });
        for (member, dev_io) in parts {
            let dev_idx = self.targets[target].devices[member];
            let dev = &mut self.devices[dev_idx];
            dev.pending.push(QueuedIo {
                io: dev_io,
                parent: parent_idx,
                enqueued: now,
            });
            dev.record_occupancy(now);
            self.try_start(dev_idx, now);
        }
    }

    /// The time of the next internal event, if any work is in flight.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// True if no requests are queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && self
                .devices
                .iter()
                .all(|d| d.pending.is_empty() && d.in_flight == 0)
    }

    /// Processes internal events up to and including time `until`,
    /// appending to the internal completion list. Returns the drained
    /// completions.
    pub fn advance_until(&mut self, until: SimTime) -> Vec<Completion> {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, done) = self.queue.pop().expect("peeked event exists");
            self.finish_part(now, done);
        }
        std::mem::take(&mut self.completions)
    }

    /// Runs until all submitted work completes; returns the final time
    /// (or `from` if already idle) plus all completions.
    pub fn drain(&mut self, from: SimTime) -> (SimTime, Vec<Completion>) {
        let mut last = from;
        while self.queue.peek_time().is_some() {
            let (now, done) = self.queue.pop().expect("peeked event exists");
            self.finish_part(now, done);
            last = now;
        }
        (last, std::mem::take(&mut self.completions))
    }

    /// Per-device statistics, flattened in target order.
    pub fn device_stats(&self) -> Vec<&DeviceStats> {
        self.devices.iter().map(|d| &d.stats).collect()
    }

    /// Aggregated per-target statistics at time `now`.
    pub fn target_stats(&self, now: SimTime) -> Vec<TargetStats> {
        self.targets
            .iter()
            .map(|t| {
                let utils: Vec<f64> = t
                    .devices
                    .iter()
                    .map(|&d| self.devices[d].stats.utilization(now))
                    .collect();
                let max = utils.iter().cloned().fold(0.0, f64::max);
                let mean = if utils.is_empty() {
                    0.0
                } else {
                    utils.iter().sum::<f64>() / utils.len() as f64
                };
                TargetStats {
                    name: t.config.name.clone(),
                    requests: t.requests,
                    bytes: t.bytes,
                    response: t.response.clone(),
                    max_member_utilization: max,
                    mean_member_utilization: mean,
                }
            })
            .collect()
    }

    fn alloc_parent(&mut self, parent: ParentReq) -> usize {
        if let Some(idx) = self.free_parents.pop() {
            self.parents[idx] = Some(parent);
            idx
        } else {
            self.parents.push(Some(parent));
            self.parents.len() - 1
        }
    }

    /// Starts as many pending requests on `dev_idx` as its parallelism
    /// allows.
    fn try_start(&mut self, dev_idx: usize, now: SimTime) {
        loop {
            let dev = &mut self.devices[dev_idx];
            if dev.in_flight >= dev.model.parallelism() || dev.pending.is_empty() {
                return;
            }
            let head = dev.model.head_position();
            let pick = dev
                .scheduler
                .pick_from(dev.pending.iter().map(|q| q.io.offset), head);
            let q = dev.pending.remove(pick);
            let service = dev.model.service_time(&q.io, &mut dev.rng);
            let service = if dev.latency_factor != 1.0 {
                SimTime::from_secs(service.as_secs() * dev.latency_factor)
            } else {
                service
            };
            dev.in_flight += 1;
            dev.record_occupancy(now);
            self.queue.schedule_at(
                now + service,
                DeviceDone {
                    device: dev_idx,
                    parent: q.parent,
                    enqueued: q.enqueued,
                    started: now,
                    io: q.io,
                },
            );
        }
    }

    fn finish_part(&mut self, now: SimTime, done: DeviceDone) {
        {
            let dev = &mut self.devices[done.device];
            dev.in_flight -= 1;
            match done.io.kind {
                IoKind::Read => {
                    dev.stats.reads += 1;
                    dev.stats.bytes_read += done.io.len;
                }
                IoKind::Write => {
                    dev.stats.writes += 1;
                    dev.stats.bytes_written += done.io.len;
                }
            }
            dev.stats.service.record((now - done.started).as_secs());
            dev.stats.response.record((now - done.enqueued).as_secs());
            dev.record_occupancy(now);
        }
        self.try_start(done.device, now);

        let parent = self.parents[done.parent]
            .as_mut()
            .expect("parent of in-flight part exists");
        parent.remaining -= 1;
        if parent.remaining == 0 {
            let parent = self.parents[done.parent].take().expect("checked above");
            self.free_parents.push(done.parent);
            let target = &mut self.targets[parent.target];
            target.requests += 1;
            target.bytes += parent.bytes;
            target.response.record((now - parent.submitted).as_secs());
            self.completions.push(Completion {
                tag: parent.tag,
                target: parent.target,
                submitted: parent.submitted,
                finished: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::disk::DiskParams;
    use crate::{GIB, KIB};

    fn one_disk_system() -> StorageSystem {
        StorageSystem::new(
            vec![TargetConfig::single(
                "d0",
                DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
            )],
            1,
        )
    }

    #[test]
    fn single_request_completes() {
        let mut sys = one_disk_system();
        sys.submit(SimTime::ZERO, 0, TargetIo::read(0, 8192, 0), 42);
        assert!(!sys.is_idle());
        let (end, comps) = sys.drain(SimTime::ZERO);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].tag, 42);
        assert_eq!(comps[0].target, 0);
        assert!(end > SimTime::ZERO);
        assert!(comps[0].response() > SimTime::ZERO);
        assert!(sys.is_idle());
    }

    #[test]
    fn queued_requests_all_complete_and_serialize() {
        let mut sys = one_disk_system();
        for i in 0..10u64 {
            sys.submit(SimTime::ZERO, 0, TargetIo::read(i * GIB / 2, 8192, 0), i);
        }
        let (_, comps) = sys.drain(SimTime::ZERO);
        assert_eq!(comps.len(), 10);
        let mut tags: Vec<u64> = comps.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
        // A single disk serves one at a time: completions strictly ordered.
        for w in comps.windows(2) {
            assert!(w[0].finished <= w[1].finished);
        }
        assert_eq!(sys.device_stats()[0].requests(), 10);
    }

    #[test]
    fn advance_until_respects_time_bound() {
        let mut sys = one_disk_system();
        for i in 0..5u64 {
            sys.submit(SimTime::ZERO, 0, TargetIo::read(i * GIB, 8192, 0), i);
        }
        let early = sys.advance_until(SimTime::from_micros(1.0));
        assert!(early.len() < 5);
        let (_, rest) = sys.drain(SimTime::ZERO);
        assert_eq!(early.len() + rest.len(), 5);
    }

    #[test]
    fn raid0_splits_and_reassembles() {
        let unit = 64 * KIB;
        let mut sys = StorageSystem::new(
            vec![TargetConfig::raid0(
                "r2",
                vec![DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)); 2],
                unit,
            )],
            7,
        );
        // Request spanning 4 stripes: 2 parts per member device.
        sys.submit(SimTime::ZERO, 0, TargetIo::read(0, 4 * unit, 0), 1);
        let (_, comps) = sys.drain(SimTime::ZERO);
        assert_eq!(comps.len(), 1);
        let stats = sys.device_stats();
        assert_eq!(stats[0].requests(), 2);
        assert_eq!(stats[1].requests(), 2);
    }

    #[test]
    fn raid0_parallelism_beats_single_disk_for_large_reads() {
        let big = 8 * 1024 * KIB;
        let mut single = one_disk_system();
        single.submit(SimTime::ZERO, 0, TargetIo::read(0, big, 0), 0);
        let (t_single, _) = single.drain(SimTime::ZERO);

        let mut raid = StorageSystem::new(
            vec![TargetConfig::raid0(
                "r4",
                vec![DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)); 4],
                256 * KIB,
            )],
            1,
        );
        raid.submit(SimTime::ZERO, 0, TargetIo::read(0, big, 0), 0);
        let (t_raid, _) = raid.drain(SimTime::ZERO);
        assert!(
            t_raid.as_secs() < 0.6 * t_single.as_secs(),
            "raid {t_raid:?} single {t_single:?}"
        );
    }

    #[test]
    fn target_stats_report_utilization() {
        let mut sys = one_disk_system();
        for i in 0..20u64 {
            sys.submit(SimTime::ZERO, 0, TargetIo::read(i * 128 * KIB, 8192, 0), i);
        }
        let (end, _) = sys.drain(SimTime::ZERO);
        let stats = sys.target_stats(end);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].requests, 20);
        // Device was saturated the whole run.
        assert!(stats[0].max_member_utilization > 0.95);
    }

    #[test]
    fn writes_tracked_separately() {
        let mut sys = one_disk_system();
        sys.submit(SimTime::ZERO, 0, TargetIo::write(0, 4096, 0), 0);
        sys.submit(SimTime::ZERO, 0, TargetIo::read(GIB, 4096, 0), 1);
        let (_, comps) = sys.drain(SimTime::ZERO);
        assert_eq!(comps.len(), 2);
        let s = sys.device_stats()[0];
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 4096);
        assert_eq!(s.bytes_written, 4096);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = one_disk_system();
            for i in 0..50u64 {
                sys.submit(
                    SimTime::ZERO,
                    0,
                    TargetIo::read((i * 7_919_999_983) % (17 * GIB), 8192, 0),
                    i,
                );
            }
            sys.drain(SimTime::ZERO).0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degraded_target_scales_service_time() {
        let elapsed = |factor: Option<f64>| {
            let mut sys = one_disk_system();
            if let Some(f) = factor {
                sys.degrade_target(0, f);
            }
            for i in 0..10u64 {
                sys.submit(SimTime::ZERO, 0, TargetIo::read(i * GIB, 8192, 0), i);
            }
            sys.drain(SimTime::ZERO).0
        };
        let healthy = elapsed(None);
        // Factor 1.0 is the identity, bit for bit.
        assert_eq!(elapsed(Some(1.0)), healthy);
        let slow = elapsed(Some(4.0));
        let ratio = slow.as_secs() / healthy.as_secs();
        assert!((3.9..=4.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn parent_slab_reuse() {
        let mut sys = one_disk_system();
        let mut now = SimTime::ZERO;
        for round in 0..3 {
            for i in 0..5u64 {
                sys.submit(now, 0, TargetIo::read(i * GIB, 8192, 0), i);
            }
            let (end, comps) = sys.drain(now);
            assert_eq!(comps.len(), 5, "round {round}");
            now = end;
        }
        // Slab should not have grown past the max concurrent parents.
        assert!(sys.parents.len() <= 5);
    }
}
