//! Device model abstraction.

use crate::disk::{Disk, DiskParams};
use crate::request::DeviceIo;
use crate::ssd::{Ssd, SsdParams};
use wasla_simlib::impl_json_unit_enum;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_simlib::{SimRng, SimTime};

/// Broad device class, used for reporting and for picking which cost
/// model a target gets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A rotating disk drive.
    Disk,
    /// A solid-state drive.
    Ssd,
}

impl_json_unit_enum!(DeviceKind { Disk, Ssd });

/// The behaviour a simulated device must provide.
///
/// `service_time` is called when the device *starts* servicing a
/// request (after queueing); implementations update their internal
/// positioning/readahead state as a side effect, which is why it takes
/// `&mut self`. The RNG is the device's own deterministic stream.
pub trait DeviceModel: Send {
    /// Time to service `req` given the device's current state.
    fn service_time(&mut self, req: &DeviceIo, rng: &mut SimRng) -> SimTime;

    /// Number of requests the device can service concurrently
    /// (1 for disks, the channel count for SSDs).
    fn parallelism(&self) -> usize;

    /// Current head byte position (0 for devices without heads);
    /// consumed by position-aware queue schedulers.
    fn head_position(&self) -> u64;

    /// Usable capacity in bytes.
    fn capacity(&self) -> u64;

    /// Device class.
    fn kind(&self) -> DeviceKind;
}

/// A serializable description of a device, from which a fresh
/// simulation model can be instantiated.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceSpec {
    /// A disk drive with the given parameters.
    Disk(DiskParams),
    /// An SSD with the given parameters.
    Ssd(SsdParams),
}

// Externally tagged, matching the serde derive: `{"Disk": {...}}`.
impl ToJson for DeviceSpec {
    fn to_json(&self) -> Json {
        match self {
            DeviceSpec::Disk(p) => json::variant("Disk", p.to_json()),
            DeviceSpec::Ssd(p) => json::variant("Ssd", p.to_json()),
        }
    }
}

impl FromJson for DeviceSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match json::untag(v)? {
            ("Disk", payload) => DiskParams::from_json(payload).map(DeviceSpec::Disk),
            ("Ssd", payload) => SsdParams::from_json(payload).map(DeviceSpec::Ssd),
            (other, _) => Err(JsonError::new(format!(
                "unknown DeviceSpec variant: {other:?}"
            ))),
        }
    }
}

impl DeviceSpec {
    /// Instantiates a fresh device model.
    pub fn build(&self) -> Box<dyn DeviceModel> {
        match self {
            DeviceSpec::Disk(p) => Box::new(Disk::new(p.clone())),
            DeviceSpec::Ssd(p) => Box::new(Ssd::new(p.clone())),
        }
    }

    /// The device's capacity in bytes.
    pub fn capacity(&self) -> u64 {
        match self {
            DeviceSpec::Disk(p) => p.capacity,
            DeviceSpec::Ssd(p) => p.capacity,
        }
    }

    /// The device class.
    pub fn kind(&self) -> DeviceKind {
        match self {
            DeviceSpec::Disk(_) => DeviceKind::Disk,
            DeviceSpec::Ssd(_) => DeviceKind::Ssd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    #[test]
    fn spec_builds_matching_model() {
        let spec = DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB));
        let model = spec.build();
        assert_eq!(model.kind(), DeviceKind::Disk);
        assert_eq!(model.capacity(), 18 * GIB);
        assert_eq!(model.parallelism(), 1);

        let spec = DeviceSpec::Ssd(SsdParams::sata_gen1(32 * GIB));
        let model = spec.build();
        assert_eq!(model.kind(), DeviceKind::Ssd);
        assert_eq!(model.capacity(), 32 * GIB);
        assert!(model.parallelism() > 1);
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = DeviceSpec::Ssd(SsdParams::sata_gen1(4 * GIB));
        let json = json::to_string(&spec);
        let back: DeviceSpec = json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        assert!(json.starts_with("{\"Ssd\":{"), "{json}");
    }
}
