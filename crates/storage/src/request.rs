//! Block I/O request types.

use wasla_simlib::{impl_json_struct, impl_json_unit_enum};

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

impl_json_unit_enum!(IoKind { Read, Write });

impl IoKind {
    /// True for reads.
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }
}

/// A block I/O request addressed to a storage target.
///
/// `offset` is the byte offset within the *target's* linear address
/// space; RAID-0 targets translate it to member-device addresses.
/// `stream` identifies the logical stream (in WASLA, the database
/// object) issuing the request — device models use it only for
/// statistics; sequentiality is detected from addresses, as a real
/// disk's readahead would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetIo {
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset within the target address space.
    pub offset: u64,
    /// Request length in bytes (must be > 0).
    pub len: u64,
    /// Logical stream (database object) identifier.
    pub stream: u32,
}

impl_json_struct!(TargetIo {
    kind,
    offset,
    len,
    stream
});

impl TargetIo {
    /// Convenience constructor for a read.
    pub fn read(offset: u64, len: u64, stream: u32) -> Self {
        TargetIo {
            kind: IoKind::Read,
            offset,
            len,
            stream,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(offset: u64, len: u64, stream: u32) -> Self {
        TargetIo {
            kind: IoKind::Write,
            offset,
            len,
            stream,
        }
    }

    /// Exclusive end offset.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// A request as seen by a single device after target-level translation.
#[derive(Clone, Copy, Debug)]
pub struct DeviceIo {
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Logical stream identifier (propagated from the target request).
    pub stream: u32,
}

impl DeviceIo {
    /// Exclusive end offset.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_end() {
        let r = TargetIo::read(4096, 8192, 7);
        assert_eq!(r.kind, IoKind::Read);
        assert!(r.kind.is_read());
        assert_eq!(r.end(), 12288);
        let w = TargetIo::write(0, 512, 1);
        assert_eq!(w.kind, IoKind::Write);
        assert!(!w.kind.is_read());
    }
}
