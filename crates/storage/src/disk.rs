//! Mechanical disk drive model.
//!
//! The model captures the first-order mechanics that matter for layout
//! decisions:
//!
//! * distance-dependent seeks and rotational latency for random
//!   requests;
//! * streaming transfer at media rate for head-contiguous sequential
//!   requests;
//! * a readahead unit that tracks a small number of concurrent
//!   sequential streams, each with a *prefetch window*: when the head
//!   must switch between co-located streams, the drive pays the
//!   inter-region seek but refills the window, so a few interleaved
//!   streams degrade gracefully (the switch cost amortizes over the
//!   window) while many interleaved streams evict each other's
//!   contexts and collapse to random-like behaviour.
//!
//! This is precisely the behaviour behind the paper's Figure 8: the
//! sequential advantage survives a small amount of contention and
//! collapses quickly beyond it, and it is why the layout advisor wants
//! to isolate concurrently-scanned objects (§2).

use crate::device::{DeviceKind, DeviceModel};
use crate::request::{DeviceIo, IoKind};
use wasla_simlib::impl_json_struct;
use wasla_simlib::{SimRng, SimTime};

/// Parameters of a simulated disk drive.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskParams {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Track-to-track (minimum) seek time in seconds.
    pub min_seek_s: f64,
    /// Full-stroke (maximum) seek time in seconds.
    pub max_seek_s: f64,
    /// Media transfer rate in bytes per second.
    pub transfer_bps: f64,
    /// Interface/cache transfer rate in bytes per second (readahead
    /// cache hits move data at this rate, not media rate).
    pub cache_bps: f64,
    /// Fixed per-request controller/settle overhead in seconds.
    pub settle_s: f64,
    /// Number of concurrent sequential streams the readahead unit can
    /// track. Interleaving more sequential streams than this evicts
    /// contexts and collapses sequentiality.
    pub readahead_streams: usize,
    /// Maximum forward gap (bytes) between a tracked stream's expected
    /// next offset and a request for it to still count as sequential.
    pub readahead_window: u64,
    /// Maximum prefetch fill per head visit to a stream's region, in
    /// bytes. Larger values amortize inter-stream switches better.
    pub max_prefetch: u64,
    /// Positioning-cost multiplier applied to writes, < 1 when a
    /// write-back cache coalesces and schedules writes lazily.
    pub write_positioning_factor: f64,
}

impl_json_struct!(DiskParams {
    capacity,
    rpm,
    min_seek_s,
    max_seek_s,
    transfer_bps,
    cache_bps,
    settle_s,
    readahead_streams,
    readahead_window,
    max_prefetch,
    write_positioning_factor,
});

impl DiskParams {
    /// An enterprise 15 000 RPM SCSI drive comparable to the paper's
    /// four 18.4 GB drives.
    pub fn scsi_15k(capacity: u64) -> Self {
        DiskParams {
            capacity,
            rpm: 15_000.0,
            min_seek_s: 0.0004,
            max_seek_s: 0.0072,
            transfer_bps: 58e6,
            cache_bps: 200e6,
            settle_s: 0.00015,
            readahead_streams: 3,
            readahead_window: 512 * 1024,
            max_prefetch: 512 * 1024,
            write_positioning_factor: 0.65,
        }
    }

    /// A mid-range 10 000 RPM SCSI drive (between the enterprise 15K
    /// and nearline tiers; useful for configurator sweeps).
    pub fn scsi_10k(capacity: u64) -> Self {
        DiskParams {
            capacity,
            rpm: 10_000.0,
            min_seek_s: 0.0005,
            max_seek_s: 0.0095,
            transfer_bps: 55e6,
            cache_bps: 180e6,
            settle_s: 0.00018,
            readahead_streams: 3,
            readahead_window: 512 * 1024,
            max_prefetch: 512 * 1024,
            write_positioning_factor: 0.65,
        }
    }

    /// A cost-effective nearline 7 200 RPM drive (paper §1 motivates
    /// mixed systems with these).
    pub fn nearline_7200(capacity: u64) -> Self {
        DiskParams {
            capacity,
            rpm: 7_200.0,
            min_seek_s: 0.0008,
            max_seek_s: 0.015,
            transfer_bps: 52e6,
            cache_bps: 150e6,
            settle_s: 0.0002,
            readahead_streams: 3,
            readahead_window: 512 * 1024,
            max_prefetch: 512 * 1024,
            write_positioning_factor: 0.65,
        }
    }

    /// Time for one full revolution.
    pub fn rotation_s(&self) -> f64 {
        60.0 / self.rpm
    }

    /// Expected seek time for a given byte distance: the standard
    /// square-root seek curve between `min_seek_s` and `max_seek_s`.
    pub fn seek_s(&self, distance: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let frac = (distance as f64 / self.capacity as f64).min(1.0);
        self.min_seek_s + (self.max_seek_s - self.min_seek_s) * frac.sqrt()
    }
}

/// A tracked sequential stream context in the readahead unit.
#[derive(Clone, Copy, Debug)]
struct StreamCtx {
    /// Expected next byte offset for this stream.
    next: u64,
    /// Data up to this offset is already in the readahead cache.
    prefetched_until: u64,
    /// Current prefetch fill size (ramps up with confirmed
    /// sequentiality, like real adaptive readahead).
    fill: u64,
    /// LRU stamp (monotone per-request counter).
    last_used: u64,
}

/// A simulated disk drive.
#[derive(Clone, Debug)]
pub struct Disk {
    params: DiskParams,
    head: u64,
    contexts: Vec<StreamCtx>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Disk {
    /// Creates a disk with its head at offset zero and an empty
    /// readahead table.
    pub fn new(params: DiskParams) -> Self {
        assert!(params.capacity > 0);
        assert!(params.max_seek_s >= params.min_seek_s);
        assert!(params.transfer_bps > 0.0);
        Disk {
            params,
            head: 0,
            contexts: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The disk's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Fraction of requests recognized as continuing a tracked
    /// sequential stream.
    pub fn readahead_hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Finds a context this request continues: it starts at, or within
    /// the readahead window after, the context's expected next offset.
    fn match_context(&self, req: &DeviceIo) -> Option<usize> {
        self.contexts.iter().position(|c| {
            req.offset >= c.next.saturating_sub(req.len)
                && req.offset <= c.next + self.params.readahead_window
        })
    }

    fn install_context(&mut self, ctx: StreamCtx) {
        if self.contexts.len() < self.params.readahead_streams {
            self.contexts.push(ctx);
            return;
        }
        // Evict the least recently used context.
        if let Some(lru) = self.contexts.iter_mut().min_by_key(|c| c.last_used) {
            *lru = ctx;
        }
    }

    fn positioning(&self, req: &DeviceIo, rng: &mut SimRng) -> f64 {
        let seek = self.params.seek_s(self.head.abs_diff(req.offset));
        let rotation = rng.uniform() * self.params.rotation_s();
        let raw = seek + rotation;
        match req.kind {
            IoKind::Read => raw,
            IoKind::Write => raw * self.params.write_positioning_factor,
        }
    }
}

impl DeviceModel for Disk {
    fn service_time(&mut self, req: &DeviceIo, rng: &mut SimRng) -> SimTime {
        self.tick += 1;
        let p = self.params.clone();
        let media = req.len as f64 / p.transfer_bps;
        let time = match self.match_context(req) {
            Some(i) => {
                self.hits += 1;
                let tick = self.tick;
                // Copy out to appease the borrow checker; write back below.
                let mut ctx = self.contexts[i];
                ctx.last_used = tick;
                let t = if req.kind.is_read() && req.end() <= ctx.prefetched_until {
                    // Served from the readahead cache at interface speed.
                    ctx.next = req.end();
                    p.settle_s + req.len as f64 / p.cache_bps
                } else if self.head == req.offset {
                    // Pure head continuation: streaming at media rate.
                    ctx.next = req.end();
                    ctx.prefetched_until = ctx.prefetched_until.max(req.end());
                    self.head = req.end();
                    p.settle_s + media
                } else {
                    // Sequential stream, but the head serviced another
                    // region in between: pay the inter-region switch and
                    // refill the (ramping) prefetch window so the next
                    // few requests of this stream hit the cache.
                    let pos = self.positioning(req, rng);
                    let mut t = p.settle_s + pos + media;
                    if req.kind.is_read() {
                        let hi = p.max_prefetch.max(req.len);
                        ctx.fill = (ctx.fill * 2).clamp((4 * req.len).min(hi), hi);
                        let fill = ctx.fill;
                        t += fill as f64 / p.transfer_bps;
                        ctx.prefetched_until = req.end() + fill;
                        self.head = req.end() + fill;
                    } else {
                        ctx.prefetched_until = req.end();
                        self.head = req.end();
                    }
                    ctx.next = req.end();
                    t
                };
                self.contexts[i] = ctx;
                t
            }
            None => {
                // Random access: full mechanical positioning; track the
                // stream in case it turns sequential.
                self.misses += 1;
                let pos = self.positioning(req, rng);
                let tick = self.tick;
                self.install_context(StreamCtx {
                    next: req.end(),
                    prefetched_until: req.end(),
                    fill: 2 * req.len,
                    last_used: tick,
                });
                self.head = req.end();
                p.settle_s + pos + media
            }
        };
        self.head = self.head.min(p.capacity);
        SimTime::from_secs(time)
    }

    fn parallelism(&self) -> usize {
        1
    }

    fn head_position(&self) -> u64 {
        self.head
    }

    fn capacity(&self) -> u64 {
        self.params.capacity
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    fn disk() -> Disk {
        Disk::new(DiskParams::scsi_15k(18 * GIB))
    }

    fn read(offset: u64, len: u64, stream: u32) -> DeviceIo {
        DeviceIo {
            kind: IoKind::Read,
            offset,
            len,
            stream,
        }
    }

    /// Total time to service `n` per-stream interleaved sequential
    /// reads for each of `k` streams.
    fn interleaved_scan_time(streams: usize, steps: u64, len: u64, seed: u64) -> f64 {
        let mut d = disk();
        let mut rng = SimRng::new(seed);
        let bases: Vec<u64> = (0..streams as u64).map(|i| i * 2 * GIB).collect();
        let mut total = 0.0;
        for step in 0..steps {
            for (s, &b) in bases.iter().enumerate() {
                total += d
                    .service_time(&read(b + step * len, len, s as u32), &mut rng)
                    .as_secs();
            }
        }
        total
    }

    #[test]
    fn sequential_much_faster_than_random() {
        let mut d = disk();
        let mut rng = SimRng::new(1);
        let mut t_seq = 0.0;
        d.service_time(&read(0, 8192, 0), &mut rng);
        for i in 1..100u64 {
            t_seq += d.service_time(&read(i * 8192, 8192, 0), &mut rng).as_secs();
        }
        let mut d2 = disk();
        let mut t_rand = 0.0;
        for i in 0..100u64 {
            let off = (i * 7_919_999_983) % (17 * GIB);
            t_rand += d2.service_time(&read(off, 8192, 0), &mut rng).as_secs();
        }
        let ratio = t_rand / t_seq;
        assert!(ratio > 5.0, "sequential speedup ratio only {ratio}");
    }

    #[test]
    fn two_interleaved_streams_slower_than_isolated() {
        // The paper's core interference effect: two sequential scans on
        // one disk cost well over the sum of the isolated scans.
        let both = interleaved_scan_time(2, 200, 131072, 3);
        let alone = 2.0 * interleaved_scan_time(1, 200, 131072, 4);
        assert!(
            both > 1.3 * alone,
            "interleaved {both:.3}s vs isolated {alone:.3}s"
        );
    }

    #[test]
    fn interleaving_degrades_gracefully_then_collapses() {
        // Per-request cost should rise with stream count and approach
        // random cost once the context table (4 slots) is overrun.
        let per_req = |k: usize| interleaved_scan_time(k, 100, 8192, 5) / (k as f64 * 100.0);
        let c1 = per_req(1);
        let c3 = per_req(3);
        let c8 = per_req(8);
        assert!(c3 > c1, "3 streams {c3} vs 1 stream {c1}");
        assert!(c8 > 2.0 * c3, "8 streams {c8} vs 3 streams {c3}");
        // 8 streams ≈ random behaviour.
        let mut d = disk();
        let mut rng = SimRng::new(6);
        let mut t_rand = 0.0;
        for i in 0..400u64 {
            let off = (i * 7_919_999_983) % (17 * GIB);
            t_rand += d.service_time(&read(off, 8192, 0), &mut rng).as_secs();
        }
        let rand_cost = t_rand / 400.0;
        assert!(c8 > 0.5 * rand_cost, "c8 {c8} vs random {rand_cost}");
    }

    #[test]
    fn few_interleaved_streams_stay_tracked() {
        let mut d = disk();
        let mut rng = SimRng::new(2);
        let bases = [0u64, 4 * GIB, 8 * GIB];
        for step in 0..50u64 {
            for (s, &b) in bases.iter().enumerate() {
                d.service_time(&read(b + step * 8192, 8192, s as u32), &mut rng);
            }
        }
        assert!(
            d.readahead_hit_rate() > 0.9,
            "hit rate {}",
            d.readahead_hit_rate()
        );
    }

    #[test]
    fn many_interleaved_streams_lose_tracking() {
        let mut d = disk();
        let mut rng = SimRng::new(3);
        let bases: Vec<u64> = (0..8).map(|i| i * 2 * GIB).collect();
        for step in 0..50u64 {
            for (s, &b) in bases.iter().enumerate() {
                d.service_time(&read(b + step * 8192, 8192, s as u32), &mut rng);
            }
        }
        assert!(
            d.readahead_hit_rate() < 0.1,
            "hit rate {}",
            d.readahead_hit_rate()
        );
    }

    #[test]
    fn seek_curve_monotone_and_bounded() {
        let p = DiskParams::scsi_15k(18 * GIB);
        assert_eq!(p.seek_s(0), 0.0);
        let near = p.seek_s(1024 * 1024);
        let mid = p.seek_s(9 * GIB);
        let far = p.seek_s(18 * GIB);
        assert!(near < mid && mid < far);
        assert!(near >= p.min_seek_s);
        assert!(far <= p.max_seek_s + 1e-12);
    }

    #[test]
    fn rotation_time() {
        let p = DiskParams::scsi_15k(GIB);
        assert!((p.rotation_s() - 0.004).abs() < 1e-12);
        let p7 = DiskParams::nearline_7200(GIB);
        assert!((p7.rotation_s() - 60.0 / 7200.0).abs() < 1e-12);
    }

    #[test]
    fn writes_cheaper_positioning_than_reads() {
        let p = DiskParams::scsi_15k(18 * GIB);
        let mut total_r = 0.0;
        let mut total_w = 0.0;
        for seed in 0..200 {
            let mut dr = Disk::new(p.clone());
            let mut dw = Disk::new(p.clone());
            let mut rng_r = SimRng::new(seed);
            let mut rng_w = SimRng::new(seed);
            let r = DeviceIo {
                kind: IoKind::Read,
                offset: 9 * GIB,
                len: 8192,
                stream: 0,
            };
            let w = DeviceIo {
                kind: IoKind::Write,
                offset: 9 * GIB,
                len: 8192,
                stream: 0,
            };
            total_r += dr.service_time(&r, &mut rng_r).as_secs();
            total_w += dw.service_time(&w, &mut rng_w).as_secs();
        }
        assert!(total_w < total_r, "writes {total_w} reads {total_r}");
    }

    #[test]
    fn nearline_slower_than_enterprise_for_random() {
        let mut fast = Disk::new(DiskParams::scsi_15k(18 * GIB));
        let mut slow = Disk::new(DiskParams::nearline_7200(18 * GIB));
        let mut t_fast = 0.0;
        let mut t_slow = 0.0;
        let mut rng_a = SimRng::new(9);
        let mut rng_b = SimRng::new(9);
        for i in 0..200u64 {
            let off = (i * 7_919_999_983) % (17 * GIB);
            t_fast += fast.service_time(&read(off, 8192, 0), &mut rng_a).as_secs();
            t_slow += slow.service_time(&read(off, 8192, 0), &mut rng_b).as_secs();
        }
        assert!(t_slow > 1.5 * t_fast, "slow {t_slow} fast {t_fast}");
    }

    #[test]
    fn preset_tiers_order_by_random_performance() {
        // 15K < 10K < 7200 RPM random service times (same workload).
        let mut totals = Vec::new();
        for params in [
            DiskParams::scsi_15k(18 * GIB),
            DiskParams::scsi_10k(18 * GIB),
            DiskParams::nearline_7200(18 * GIB),
        ] {
            let mut d = Disk::new(params);
            let mut rng = SimRng::new(17);
            let mut t = 0.0;
            for i in 0..300u64 {
                let off = (i * 7_919_999_983) % (17 * GIB);
                t += d.service_time(&read(off, 8192, 0), &mut rng).as_secs();
            }
            totals.push(t);
        }
        assert!(
            totals[0] < totals[1],
            "15K {:.3} vs 10K {:.3}",
            totals[0],
            totals[1]
        );
        assert!(
            totals[1] < totals[2],
            "10K {:.3} vs 7200 {:.3}",
            totals[1],
            totals[2]
        );
    }

    #[test]
    fn single_stream_approaches_media_rate() {
        // A long single-stream scan should cost ≈ bytes / media rate.
        let len = 131072u64;
        let steps = 400u64;
        let t = interleaved_scan_time(1, steps, len, 8);
        let ideal = (steps * len) as f64 / 58e6;
        assert!(t < 2.0 * ideal, "scan {t:.3}s vs ideal {ideal:.3}s");
    }
}
