//! Storage tiers: the economic identity of a target.
//!
//! The paper's NLP treats every target as an interchangeable
//! utilization sink; real fleets mix device classes whose dollar and
//! endurance costs differ by orders of magnitude. A [`Tier`] carries
//! that identity — class, $/GiB, $/IOPS, endurance weight — from the
//! device spec through calibration tables and target cost models to
//! the solver's pluggable objectives (`wasla_core::eval::objective`):
//! `ProvisioningCost` weights each target's utilization by its
//! $/IOPS, and `WearBlend` by its endurance sensitivity.

use crate::device::{DeviceKind, DeviceSpec};
use wasla_simlib::{impl_json_struct, impl_json_unit_enum};

/// Broad tier class. Mirrors [`DeviceKind`] today; kept separate so a
/// tier can later be a RAID level or a cloud volume class without
/// touching the device layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TierClass {
    /// Rotating-disk tier.
    Hdd,
    /// Flash tier.
    Ssd,
}

impl_json_unit_enum!(TierClass { Hdd, Ssd });

/// Economic descriptor of a storage tier.
///
/// The prices are circa-2010 list prices matching the paper's
/// hardware generation (15k SCSI disks vs. first-generation SATA
/// SSDs); they only ever enter the solver as *relative* per-target
/// weights, so the absolute scale is irrelevant to the layouts chosen.
#[derive(Clone, Debug, PartialEq)]
pub struct Tier {
    /// Broad device class.
    pub class: TierClass,
    /// Capacity price, dollars per GiB.
    pub cost_per_gib: f64,
    /// Throughput price, dollars per sustained IOPS.
    pub cost_per_iops: f64,
    /// Endurance sensitivity in [0, ∞): how strongly write traffic
    /// should be penalized on this tier (0 for HDDs — they do not
    /// wear out per write; positive for flash).
    pub endurance_weight: f64,
}

impl_json_struct!(Tier {
    class,
    cost_per_gib,
    cost_per_iops,
    endurance_weight
});

impl Tier {
    /// The enterprise-HDD tier: cheap IOPS-hungry capacity, no wear.
    pub fn hdd() -> Self {
        Tier {
            class: TierClass::Hdd,
            cost_per_gib: 2.0,
            cost_per_iops: 1.0,
            endurance_weight: 0.0,
        }
    }

    /// The flash tier: expensive capacity, cheap IOPS, finite
    /// endurance.
    pub fn ssd() -> Self {
        Tier {
            class: TierClass::Ssd,
            cost_per_gib: 12.0,
            cost_per_iops: 0.25,
            endurance_weight: 1.0,
        }
    }

    /// The default tier for a device class.
    pub fn for_kind(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::Disk => Tier::hdd(),
            DeviceKind::Ssd => Tier::ssd(),
        }
    }

    /// The default tier for a calibrated table's device name (the
    /// `TableModel::device` field: "disk" or "ssd"). Unknown names get
    /// the HDD tier — the conservative choice for old persisted
    /// caches that predate tiers.
    pub fn for_device_name(name: &str) -> Self {
        if name == "ssd" {
            Tier::ssd()
        } else {
            Tier::hdd()
        }
    }
}

impl Default for Tier {
    fn default() -> Self {
        Tier::hdd()
    }
}

impl DeviceSpec {
    /// The device's default tier, derived from its class. Derived
    /// rather than stored so device-spec JSON (and the calibration
    /// cache keys hashed from it) is unchanged by the tier layer.
    pub fn tier(&self) -> Tier {
        Tier::for_kind(self.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::ssd::SsdParams;
    use crate::GIB;
    use wasla_simlib::json;

    #[test]
    fn tier_round_trips_through_json() {
        for tier in [Tier::hdd(), Tier::ssd()] {
            let s = json::to_string(&tier);
            let back: Tier = json::from_str(&s).unwrap();
            assert_eq!(tier, back);
        }
    }

    #[test]
    fn device_specs_derive_their_class_tier() {
        let disk = DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB));
        let ssd = DeviceSpec::Ssd(SsdParams::sata_gen1(32 * GIB));
        assert_eq!(disk.tier(), Tier::hdd());
        assert_eq!(ssd.tier(), Tier::ssd());
        assert_eq!(disk.tier().class, TierClass::Hdd);
        assert_eq!(ssd.tier().class, TierClass::Ssd);
    }

    #[test]
    fn device_name_fallback_is_conservative() {
        assert_eq!(Tier::for_device_name("ssd"), Tier::ssd());
        assert_eq!(Tier::for_device_name("disk"), Tier::hdd());
        assert_eq!(Tier::for_device_name("mystery"), Tier::hdd());
    }

    #[test]
    fn ssd_iops_cheaper_but_capacity_dearer() {
        let hdd = Tier::hdd();
        let ssd = Tier::ssd();
        assert!(ssd.cost_per_iops < hdd.cost_per_iops);
        assert!(ssd.cost_per_gib > hdd.cost_per_gib);
        assert_eq!(hdd.endurance_weight, 0.0);
        assert!(ssd.endurance_weight > 0.0);
    }
}
