//! Solid-state drive model.
//!
//! SSDs have no mechanical positioning: random and sequential requests
//! cost nearly the same, reads are cheap, writes cost more (program
//! latency and occasional erase amplification), and internal channel
//! parallelism lets several requests proceed concurrently. This is the
//! heterogeneity the paper's §6.4 SSD experiments exploit: the layout
//! advisor should steer random-heavy objects to the SSD and large
//! sequential scans to the disks.

use crate::device::{DeviceKind, DeviceModel};
use crate::request::{DeviceIo, IoKind};
use wasla_simlib::impl_json_struct;
use wasla_simlib::{SimRng, SimTime};

/// Parameters of a simulated SSD.
#[derive(Clone, Debug, PartialEq)]
pub struct SsdParams {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Fixed read access latency in seconds (flash array read + FTL).
    pub read_latency_s: f64,
    /// Fixed write access latency in seconds (program + FTL).
    pub write_latency_s: f64,
    /// Read streaming bandwidth in bytes per second.
    pub read_bps: f64,
    /// Write streaming bandwidth in bytes per second.
    pub write_bps: f64,
    /// Number of independent channels (requests serviced concurrently).
    pub channels: usize,
    /// Extra write cost factor modelling garbage-collection
    /// amplification under sustained writes (1.0 = none).
    pub write_amplification: f64,
}

impl_json_struct!(SsdParams {
    capacity,
    read_latency_s,
    write_latency_s,
    read_bps,
    write_bps,
    channels,
    write_amplification,
});

impl SsdParams {
    /// A second-generation SATA SSD: higher bandwidth, faster writes,
    /// more channels — for "what if we bought a better SSD"
    /// configurator sweeps.
    pub fn sata_gen2(capacity: u64) -> Self {
        SsdParams {
            capacity,
            read_latency_s: 0.00008,
            write_latency_s: 0.00015,
            read_bps: 250e6,
            write_bps: 180e6,
            channels: 8,
            write_amplification: 1.15,
        }
    }

    /// A 2008-era SATA SSD comparable to the paper's 32 GB drive:
    /// excellent small random reads, moderate bandwidth, writes
    /// noticeably slower than reads.
    pub fn sata_gen1(capacity: u64) -> Self {
        SsdParams {
            capacity,
            read_latency_s: 0.00012,
            write_latency_s: 0.00035,
            read_bps: 110e6,
            write_bps: 70e6,
            channels: 4,
            write_amplification: 1.3,
        }
    }
}

/// A simulated SSD.
#[derive(Clone, Debug)]
pub struct Ssd {
    params: SsdParams,
}

impl Ssd {
    /// Creates an SSD.
    pub fn new(params: SsdParams) -> Self {
        assert!(params.capacity > 0);
        assert!(params.channels >= 1);
        Ssd { params }
    }

    /// The SSD's parameters.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }
}

impl DeviceModel for Ssd {
    fn service_time(&mut self, req: &DeviceIo, _rng: &mut SimRng) -> SimTime {
        let t = match req.kind {
            IoKind::Read => self.params.read_latency_s + req.len as f64 / self.params.read_bps,
            IoKind::Write => {
                (self.params.write_latency_s + req.len as f64 / self.params.write_bps)
                    * self.params.write_amplification
            }
        };
        SimTime::from_secs(t)
    }

    fn parallelism(&self) -> usize {
        self.params.channels
    }

    fn head_position(&self) -> u64 {
        0 // No mechanical head; schedulers treat all requests equally.
    }

    fn capacity(&self) -> u64 {
        self.params.capacity
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Ssd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    fn rd(offset: u64) -> DeviceIo {
        DeviceIo {
            kind: IoKind::Read,
            offset,
            len: 8192,
            stream: 0,
        }
    }

    #[test]
    fn random_equals_sequential() {
        let mut ssd = Ssd::new(SsdParams::sata_gen1(32 * GIB));
        let mut rng = SimRng::new(1);
        let seq = ssd.service_time(&rd(0), &mut rng);
        let rand = ssd.service_time(&rd(17 * GIB), &mut rng);
        assert_eq!(seq, rand);
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut ssd = Ssd::new(SsdParams::sata_gen1(32 * GIB));
        let mut rng = SimRng::new(1);
        let r = ssd.service_time(&rd(0), &mut rng);
        let w = ssd.service_time(
            &DeviceIo {
                kind: IoKind::Write,
                offset: 0,
                len: 8192,
                stream: 0,
            },
            &mut rng,
        );
        assert!(w > r);
    }

    #[test]
    fn much_faster_than_disk_for_small_random_reads() {
        use crate::disk::{Disk, DiskParams};
        let mut ssd = Ssd::new(SsdParams::sata_gen1(32 * GIB));
        let mut disk = Disk::new(DiskParams::scsi_15k(18 * GIB));
        let mut rng = SimRng::new(5);
        let mut t_ssd = 0.0;
        let mut t_disk = 0.0;
        for i in 0..100u64 {
            let off = (i * 999_999_937) % (16 * GIB);
            t_ssd += ssd.service_time(&rd(off), &mut rng).as_secs();
            t_disk += disk.service_time(&rd(off), &mut rng).as_secs();
        }
        assert!(t_disk > 10.0 * t_ssd, "disk {t_disk} ssd {t_ssd}");
    }

    #[test]
    fn gen2_faster_than_gen1() {
        let mut g1 = Ssd::new(SsdParams::sata_gen1(32 * GIB));
        let mut g2 = Ssd::new(SsdParams::sata_gen2(32 * GIB));
        let mut rng = SimRng::new(1);
        let w = DeviceIo {
            kind: IoKind::Write,
            offset: 0,
            len: 65536,
            stream: 0,
        };
        assert!(g2.service_time(&rd(0), &mut rng) < g1.service_time(&rd(0), &mut rng));
        assert!(g2.service_time(&w, &mut rng) < g1.service_time(&w, &mut rng));
        assert!(g2.parallelism() > g1.parallelism());
    }

    #[test]
    fn channel_parallelism_exposed() {
        let ssd = Ssd::new(SsdParams::sata_gen1(GIB));
        assert_eq!(ssd.parallelism(), 4);
        assert_eq!(ssd.kind(), DeviceKind::Ssd);
    }
}
