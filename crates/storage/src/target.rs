//! Storage targets: the independent containers the advisor lays
//! database objects onto (paper §3).
//!
//! A target is either a single device or a RAID-0 group of devices with
//! a fixed stripe unit. Targets present a linear byte address space;
//! RAID-0 targets translate target offsets to member-device offsets and
//! split requests that cross stripe boundaries.

use crate::device::DeviceSpec;
use crate::request::{DeviceIo, TargetIo};
use crate::sched::SchedulerKind;
use wasla_simlib::impl_json_struct;

/// Index of a target within a [`crate::StorageSystem`].
pub type TargetId = usize;

/// Serializable configuration of one storage target.
#[derive(Clone, Debug)]
pub struct TargetConfig {
    /// Human-readable name ("disk0", "raid3x", "ssd", ...).
    pub name: String,
    /// Member devices. One member = a plain device target; several =
    /// a RAID-0 group.
    pub members: Vec<DeviceSpec>,
    /// RAID-0 stripe unit in bytes (ignored for single-member targets).
    pub stripe_unit: u64,
    /// Queue scheduling discipline for member devices.
    pub scheduler: SchedulerKind,
}

impl_json_struct!(TargetConfig {
    name,
    members,
    stripe_unit,
    scheduler
});

impl TargetConfig {
    /// A single-device target.
    pub fn single(name: impl Into<String>, device: DeviceSpec) -> Self {
        TargetConfig {
            name: name.into(),
            members: vec![device],
            stripe_unit: 256 * 1024,
            scheduler: SchedulerKind::Sstf,
        }
    }

    /// A RAID-0 group over identical devices.
    pub fn raid0(name: impl Into<String>, devices: Vec<DeviceSpec>, stripe_unit: u64) -> Self {
        assert!(!devices.is_empty());
        assert!(stripe_unit > 0);
        TargetConfig {
            name: name.into(),
            members: devices,
            stripe_unit,
            scheduler: SchedulerKind::Sstf,
        }
    }

    /// Total capacity of the target in bytes. For RAID-0 this is
    /// limited by the smallest member (as in real arrays).
    pub fn capacity(&self) -> u64 {
        let min = self.members.iter().map(|d| d.capacity()).min().unwrap_or(0);
        min * self.members.len() as u64
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Translates a target-level request into per-member-device
    /// requests, splitting at stripe boundaries.
    pub fn translate(&self, io: &TargetIo) -> Vec<(usize, DeviceIo)> {
        let k = self.members.len() as u64;
        if k == 1 {
            return vec![(
                0,
                DeviceIo {
                    kind: io.kind,
                    offset: io.offset,
                    len: io.len,
                    stream: io.stream,
                },
            )];
        }
        let unit = self.stripe_unit;
        let mut parts = Vec::new();
        let mut off = io.offset;
        let mut remaining = io.len;
        while remaining > 0 {
            let stripe = off / unit;
            let member = (stripe % k) as usize;
            let within = off % unit;
            let chunk = (unit - within).min(remaining);
            let dev_off = (stripe / k) * unit + within;
            parts.push((
                member,
                DeviceIo {
                    kind: io.kind,
                    offset: dev_off,
                    len: chunk,
                    stream: io.stream,
                },
            ));
            off += chunk;
            remaining -= chunk;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::request::IoKind;
    use crate::{GIB, KIB};

    fn disk_spec() -> DeviceSpec {
        DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB))
    }

    #[test]
    fn single_target_passthrough() {
        let t = TargetConfig::single("d0", disk_spec());
        assert_eq!(t.capacity(), 18 * GIB);
        assert_eq!(t.width(), 1);
        let parts = t.translate(&TargetIo::read(12345, 8192, 3));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.offset, 12345);
        assert_eq!(parts[0].1.len, 8192);
        assert_eq!(parts[0].1.stream, 3);
    }

    #[test]
    fn raid0_capacity_limited_by_smallest() {
        let t = TargetConfig::raid0(
            "r",
            vec![
                DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
                DeviceSpec::Disk(DiskParams::scsi_15k(10 * GIB)),
            ],
            256 * KIB,
        );
        assert_eq!(t.capacity(), 20 * GIB);
    }

    #[test]
    fn raid0_round_robin_translation() {
        let unit = 64 * KIB;
        let t = TargetConfig::raid0("r3", vec![disk_spec(); 3], unit);
        // A request fully inside stripe 4 (offsets [4*unit, 5*unit)).
        let io = TargetIo::read(4 * unit + 100, 1000, 0);
        let parts = t.translate(&io);
        assert_eq!(parts.len(), 1);
        // Stripe 4 → member 4 % 3 = 1, device stripe 4/3 = 1.
        assert_eq!(parts[0].0, 1);
        assert_eq!(parts[0].1.offset, unit + 100);
    }

    #[test]
    fn raid0_splits_at_stripe_boundaries() {
        let unit = 64 * KIB;
        let t = TargetConfig::raid0("r2", vec![disk_spec(); 2], unit);
        // Spans stripes 0,1,2 → members 0,1,0.
        let io = TargetIo::write(unit / 2, 2 * unit, 9);
        let parts = t.translate(&io);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.len, unit / 2);
        assert_eq!(parts[1].0, 1);
        assert_eq!(parts[1].1.len, unit);
        assert_eq!(parts[2].0, 0);
        assert_eq!(parts[2].1.len, unit / 2);
        assert!(parts.iter().all(|(_, p)| p.kind == IoKind::Write));
        // Total bytes preserved.
        let total: u64 = parts.iter().map(|(_, p)| p.len).sum();
        assert_eq!(total, io.len);
    }

    #[test]
    fn raid0_contiguous_device_offsets_for_sequential_stream() {
        // Sequential target reads should produce sequential per-device
        // reads: stripe s and stripe s+k map to adjacent device units.
        let unit = 64 * KIB;
        let t = TargetConfig::raid0("r2", vec![disk_spec(); 2], unit);
        let a = t.translate(&TargetIo::read(0, unit, 0));
        let b = t.translate(&TargetIo::read(2 * unit, unit, 0));
        assert_eq!(a[0].0, 0);
        assert_eq!(b[0].0, 0);
        assert_eq!(b[0].1.offset, a[0].1.offset + unit);
    }
}
