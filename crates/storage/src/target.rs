//! Storage targets: the independent containers the advisor lays
//! database objects onto (paper §3).
//!
//! A target is either a single device or a RAID-0 group of devices with
//! a fixed stripe unit. Targets present a linear byte address space;
//! RAID-0 targets translate target offsets to member-device offsets and
//! split requests that cross stripe boundaries.

use crate::device::DeviceSpec;
use crate::request::{DeviceIo, TargetIo};
use crate::sched::SchedulerKind;
use crate::tier::Tier;
use wasla_simlib::json::{FromJson, Json, JsonError, ToJson};

/// Index of a target within a [`crate::StorageSystem`].
pub type TargetId = usize;

/// Serializable configuration of one storage target.
#[derive(Clone, Debug)]
pub struct TargetConfig {
    /// Human-readable name ("disk0", "raid3x", "ssd", ...).
    pub name: String,
    /// Member devices. One member = a plain device target; several =
    /// a RAID-0 group.
    pub members: Vec<DeviceSpec>,
    /// RAID-0 stripe unit in bytes (ignored for single-member targets).
    pub stripe_unit: u64,
    /// Queue scheduling discipline for member devices.
    pub scheduler: SchedulerKind,
    /// Economic tier of the target (class, $/GiB, $/IOPS, endurance).
    /// Defaults from the first member's device class; spec files can
    /// override it (`wasla-advisor --tier-spec`).
    pub tier: Tier,
}

impl ToJson for TargetConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), self.name.to_json()),
            ("members".to_string(), self.members.to_json()),
            ("stripe_unit".to_string(), self.stripe_unit.to_json()),
            ("scheduler".to_string(), self.scheduler.to_json()),
            ("tier".to_string(), self.tier.to_json()),
        ])
    }
}

// Hand-rolled (not `impl_json_struct!`, which requires every field):
// `tier` is optional on parse so target-spec files written before the
// tier layer still load, defaulting the tier from the first member's
// device class.
impl FromJson for TargetConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| v.field(name).ok_or_else(|| JsonError::missing_field(name));
        let name = String::from_json(field("name")?)?;
        let members = Vec::<DeviceSpec>::from_json(field("members")?)?;
        let stripe_unit = u64::from_json(field("stripe_unit")?)?;
        let scheduler = SchedulerKind::from_json(field("scheduler")?)?;
        let tier = match v.field("tier") {
            Some(t) => Tier::from_json(t)?,
            None => members.first().map(DeviceSpec::tier).unwrap_or_default(),
        };
        Ok(TargetConfig {
            name,
            members,
            stripe_unit,
            scheduler,
            tier,
        })
    }
}

impl TargetConfig {
    /// A single-device target.
    pub fn single(name: impl Into<String>, device: DeviceSpec) -> Self {
        let tier = device.tier();
        TargetConfig {
            name: name.into(),
            members: vec![device],
            stripe_unit: 256 * 1024,
            scheduler: SchedulerKind::Sstf,
            tier,
        }
    }

    /// A RAID-0 group over identical devices.
    pub fn raid0(name: impl Into<String>, devices: Vec<DeviceSpec>, stripe_unit: u64) -> Self {
        assert!(!devices.is_empty());
        assert!(stripe_unit > 0);
        let tier = devices[0].tier();
        TargetConfig {
            name: name.into(),
            members: devices,
            stripe_unit,
            scheduler: SchedulerKind::Sstf,
            tier,
        }
    }

    /// The same target placed in a different economic tier.
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// Total capacity of the target in bytes. For RAID-0 this is
    /// limited by the smallest member (as in real arrays).
    pub fn capacity(&self) -> u64 {
        let min = self.members.iter().map(|d| d.capacity()).min().unwrap_or(0);
        min * self.members.len() as u64
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Translates a target-level request into per-member-device
    /// requests, splitting at stripe boundaries.
    pub fn translate(&self, io: &TargetIo) -> Vec<(usize, DeviceIo)> {
        let k = self.members.len() as u64;
        if k == 1 {
            return vec![(
                0,
                DeviceIo {
                    kind: io.kind,
                    offset: io.offset,
                    len: io.len,
                    stream: io.stream,
                },
            )];
        }
        let unit = self.stripe_unit;
        let mut parts = Vec::new();
        let mut off = io.offset;
        let mut remaining = io.len;
        while remaining > 0 {
            let stripe = off / unit;
            let member = (stripe % k) as usize;
            let within = off % unit;
            let chunk = (unit - within).min(remaining);
            let dev_off = (stripe / k) * unit + within;
            parts.push((
                member,
                DeviceIo {
                    kind: io.kind,
                    offset: dev_off,
                    len: chunk,
                    stream: io.stream,
                },
            ));
            off += chunk;
            remaining -= chunk;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::request::IoKind;
    use crate::{GIB, KIB};

    fn disk_spec() -> DeviceSpec {
        DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB))
    }

    #[test]
    fn target_config_json_round_trip_keeps_tier() {
        use crate::ssd::SsdParams;
        use wasla_simlib::json;
        let t = TargetConfig::single("ssd0", DeviceSpec::Ssd(SsdParams::sata_gen1(4 * GIB)))
            .with_tier(Tier {
                cost_per_iops: 0.125,
                ..Tier::ssd()
            });
        let s = json::to_string(&t);
        let back: TargetConfig = json::from_str(&s).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.members, t.members);
        assert_eq!(back.tier, t.tier);
        assert_eq!(back.tier.cost_per_iops, 0.125);
    }

    #[test]
    fn pre_tier_target_config_json_still_parses() {
        use wasla_simlib::json;
        // The exact shape `impl_json_struct!` emitted before the tier
        // field existed — old spec files must keep loading, with the
        // tier defaulted from the member device class.
        let old = r#"{"name":"d0","members":[{"Disk":{"capacity":1073741824,
            "rpm":15000.0,"avg_seek_ms":3.6,"max_seek_ms":7.5,
            "transfer_mb_s":89.0,"readahead_streams":4,
            "readahead_unit":131072}}],"stripe_unit":262144,
            "scheduler":"Sstf"}"#;
        match json::from_str::<TargetConfig>(old) {
            Ok(t) => {
                assert_eq!(t.tier, Tier::hdd(), "disk member defaults to the HDD tier");
            }
            // Field names of DiskParams may drift; the contract under
            // test is only that a missing `tier` is not an error, so
            // rebuild the old shape from a fresh config instead.
            Err(_) => {
                let fresh = TargetConfig::single("d0", disk_spec());
                let mut s = json::to_string(&fresh);
                let tier_json = format!(",\"tier\":{}", json::to_string(&fresh.tier));
                s = s.replace(&tier_json, "");
                assert!(!s.contains("tier"), "tier stripped from {s}");
                let back: TargetConfig = json::from_str(&s).unwrap();
                assert_eq!(back.tier, Tier::hdd());
            }
        }
    }

    #[test]
    fn single_target_passthrough() {
        let t = TargetConfig::single("d0", disk_spec());
        assert_eq!(t.capacity(), 18 * GIB);
        assert_eq!(t.width(), 1);
        let parts = t.translate(&TargetIo::read(12345, 8192, 3));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.offset, 12345);
        assert_eq!(parts[0].1.len, 8192);
        assert_eq!(parts[0].1.stream, 3);
    }

    #[test]
    fn raid0_capacity_limited_by_smallest() {
        let t = TargetConfig::raid0(
            "r",
            vec![
                DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
                DeviceSpec::Disk(DiskParams::scsi_15k(10 * GIB)),
            ],
            256 * KIB,
        );
        assert_eq!(t.capacity(), 20 * GIB);
    }

    #[test]
    fn raid0_round_robin_translation() {
        let unit = 64 * KIB;
        let t = TargetConfig::raid0("r3", vec![disk_spec(); 3], unit);
        // A request fully inside stripe 4 (offsets [4*unit, 5*unit)).
        let io = TargetIo::read(4 * unit + 100, 1000, 0);
        let parts = t.translate(&io);
        assert_eq!(parts.len(), 1);
        // Stripe 4 → member 4 % 3 = 1, device stripe 4/3 = 1.
        assert_eq!(parts[0].0, 1);
        assert_eq!(parts[0].1.offset, unit + 100);
    }

    #[test]
    fn raid0_splits_at_stripe_boundaries() {
        let unit = 64 * KIB;
        let t = TargetConfig::raid0("r2", vec![disk_spec(); 2], unit);
        // Spans stripes 0,1,2 → members 0,1,0.
        let io = TargetIo::write(unit / 2, 2 * unit, 9);
        let parts = t.translate(&io);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.len, unit / 2);
        assert_eq!(parts[1].0, 1);
        assert_eq!(parts[1].1.len, unit);
        assert_eq!(parts[2].0, 0);
        assert_eq!(parts[2].1.len, unit / 2);
        assert!(parts.iter().all(|(_, p)| p.kind == IoKind::Write));
        // Total bytes preserved.
        let total: u64 = parts.iter().map(|(_, p)| p.len).sum();
        assert_eq!(total, io.len);
    }

    #[test]
    fn raid0_contiguous_device_offsets_for_sequential_stream() {
        // Sequential target reads should produce sequential per-device
        // reads: stripe s and stripe s+k map to adjacent device units.
        let unit = 64 * KIB;
        let t = TargetConfig::raid0("r2", vec![disk_spec(); 2], unit);
        let a = t.translate(&TargetIo::read(0, unit, 0));
        let b = t.translate(&TargetIo::read(2 * unit, unit, 0));
        assert_eq!(a[0].0, 0);
        assert_eq!(b[0].0, 0);
        assert_eq!(b[0].1.offset, a[0].1.offset + unit);
    }
}
