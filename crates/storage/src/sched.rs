//! Device queue schedulers.
//!
//! A scheduler picks which pending request a device services next given
//! the current head position. Deeper queues give position-aware
//! schedulers more choice, which is why random-request cost *falls*
//! slowly as contention rises in the paper's Figure 8 — SSTF and
//! elevator reproduce that effect; FCFS is kept as a baseline.

use crate::request::DeviceIo;
use wasla_simlib::impl_json_unit_enum;

/// Which scheduling discipline a device uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// First come, first served.
    Fcfs,
    /// Shortest seek time first (greedy nearest offset).
    #[default]
    Sstf,
    /// One-directional elevator (C-LOOK): service the nearest request at
    /// or beyond the head, wrapping to the lowest offset when none.
    Elevator,
}

impl_json_unit_enum!(SchedulerKind {
    Fcfs,
    Sstf,
    Elevator
});

impl SchedulerKind {
    /// Picks the index of the next request to service from `pending`
    /// (non-empty) given the current head byte position.
    pub fn pick(self, pending: &[DeviceIo], head: u64) -> usize {
        self.pick_from(pending.iter().map(|r| r.offset), head)
    }

    /// Like [`SchedulerKind::pick`], but over bare request offsets —
    /// used by the storage system, whose queues carry extra bookkeeping
    /// per entry.
    pub fn pick_from<I: IntoIterator<Item = u64>>(self, offsets: I, head: u64) -> usize {
        match self {
            SchedulerKind::Fcfs => 0,
            SchedulerKind::Sstf => {
                let mut best = 0usize;
                let mut best_dist = u64::MAX;
                for (i, off) in offsets.into_iter().enumerate() {
                    let dist = off.abs_diff(head);
                    if dist < best_dist {
                        best_dist = dist;
                        best = i;
                    }
                }
                best
            }
            SchedulerKind::Elevator => {
                let mut forward: Option<(usize, u64)> = None;
                let mut lowest: Option<(usize, u64)> = None;
                for (i, off) in offsets.into_iter().enumerate() {
                    if off >= head {
                        let dist = off - head;
                        if forward.map_or(true, |(_, d)| dist < d) {
                            forward = Some((i, dist));
                        }
                    }
                    if lowest.map_or(true, |(_, o)| off < o) {
                        lowest = Some((i, off));
                    }
                }
                // Nearest request at or beyond the head; wrap to the
                // lowest offset when none is forward.
                forward.or(lowest).map(|(i, _)| i).unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoKind;

    fn io(offset: u64) -> DeviceIo {
        DeviceIo {
            kind: IoKind::Read,
            offset,
            len: 4096,
            stream: 0,
        }
    }

    #[test]
    fn fcfs_picks_first() {
        let pending = [io(100), io(5), io(50)];
        assert_eq!(SchedulerKind::Fcfs.pick(&pending, 50), 0);
    }

    #[test]
    fn sstf_picks_nearest() {
        let pending = [io(1000), io(400), io(600)];
        assert_eq!(SchedulerKind::Sstf.pick(&pending, 550), 2);
        assert_eq!(SchedulerKind::Sstf.pick(&pending, 0), 1);
        assert_eq!(SchedulerKind::Sstf.pick(&pending, 10_000), 0);
    }

    #[test]
    fn elevator_moves_forward_then_wraps() {
        let pending = [io(100), io(900), io(500)];
        // Head at 400 → nearest forward is 500.
        assert_eq!(SchedulerKind::Elevator.pick(&pending, 400), 2);
        // Head at 950 → nothing forward, wrap to lowest (100).
        assert_eq!(SchedulerKind::Elevator.pick(&pending, 950), 0);
        // Head exactly on a request services it.
        assert_eq!(SchedulerKind::Elevator.pick(&pending, 900), 1);
    }

    #[test]
    fn single_request_always_picked() {
        let pending = [io(42)];
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::Sstf,
            SchedulerKind::Elevator,
        ] {
            assert_eq!(kind.pick(&pending, 7), 0);
        }
    }
}
