//! Property tests for the storage substrate.

use wasla_simlib::proptest::prelude::*;
use wasla_storage::{DeviceSpec, DiskParams, SchedulerKind, TargetConfig, TargetIo, GIB};

fn disk() -> DeviceSpec {
    DeviceSpec::Disk(DiskParams::scsi_15k(64 * GIB))
}

proptest! {
    /// RAID-0 translation partitions a request exactly: the member
    /// pieces cover every byte once, in order, with no overlap, and
    /// consecutive pieces alternate members.
    #[test]
    fn raid0_translation_partitions(
        width in 1usize..8,
        stripe_kib in 1u64..1024,
        offset in 0u64..1_000_000_000,
        len in 1u64..10_000_000,
    ) {
        let stripe = stripe_kib * 1024;
        let config = TargetConfig::raid0("r", vec![disk(); width], stripe);
        let io = TargetIo::read(offset, len, 3);
        let parts = config.translate(&io);
        // Total bytes preserved.
        let total: u64 = parts.iter().map(|(_, p)| p.len).sum();
        prop_assert_eq!(total, len);
        for (member, p) in &parts {
            prop_assert!(*member < width);
            prop_assert_eq!(p.stream, 3);
        }
        if width == 1 {
            // Single-member targets pass requests through unsplit.
            prop_assert_eq!(parts.len(), 1);
            prop_assert_eq!(parts[0].1.offset, offset);
        } else {
            // Each piece stays within one stripe unit; walking the
            // pieces in order advances the logical offset contiguously
            // through the round-robin mapping.
            let mut logical = offset;
            for (member, p) in &parts {
                prop_assert!(p.len <= stripe);
                let s = logical / stripe;
                prop_assert_eq!(*member, (s % width as u64) as usize);
                let within = logical % stripe;
                prop_assert_eq!(p.offset, (s / width as u64) * stripe + within);
                logical += p.len;
            }
        }
    }

    /// All schedulers return an index into the pending list.
    #[test]
    fn schedulers_pick_valid_indices(
        offsets in proptest::collection::vec(0u64..1_000_000_000, 1..50),
        head in 0u64..1_000_000_000,
    ) {
        for kind in [SchedulerKind::Fcfs, SchedulerKind::Sstf, SchedulerKind::Elevator] {
            let pick = kind.pick_from(offsets.iter().copied(), head);
            prop_assert!(pick < offsets.len());
        }
    }

    /// SSTF picks a request at minimal distance from the head.
    #[test]
    fn sstf_is_greedy_nearest(
        offsets in proptest::collection::vec(0u64..1_000_000_000, 1..50),
        head in 0u64..1_000_000_000,
    ) {
        let pick = SchedulerKind::Sstf.pick_from(offsets.iter().copied(), head);
        let best = offsets.iter().map(|o| o.abs_diff(head)).min().expect("non-empty");
        prop_assert_eq!(offsets[pick].abs_diff(head), best);
    }

    /// Elevator never picks a backward request when a forward one
    /// exists.
    #[test]
    fn elevator_prefers_forward(
        offsets in proptest::collection::vec(0u64..1_000_000_000, 1..50),
        head in 0u64..1_000_000_000,
    ) {
        let pick = SchedulerKind::Elevator.pick_from(offsets.iter().copied(), head);
        let any_forward = offsets.iter().any(|&o| o >= head);
        if any_forward {
            prop_assert!(offsets[pick] >= head);
        }
    }

    /// Device service times are positive and finite for arbitrary
    /// request sequences, and the simulated clock only moves forward.
    #[test]
    fn storage_system_time_is_monotone(
        reqs in proptest::collection::vec((0u64..60, 1u64..512, any::<bool>()), 1..60),
    ) {
        use wasla_simlib::SimTime;
        use wasla_storage::StorageSystem;
        let mut sys = StorageSystem::new(
            vec![TargetConfig::single("d0", disk())],
            9,
        );
        for (i, &(off_gib_frac, len_kib, is_write)) in reqs.iter().enumerate() {
            let offset = off_gib_frac * GIB;
            let len = len_kib * 1024;
            let io = if is_write {
                TargetIo::write(offset, len, 0)
            } else {
                TargetIo::read(offset, len, 0)
            };
            sys.submit(SimTime::ZERO, 0, io, i as u64);
        }
        let (end, comps) = sys.drain(SimTime::ZERO);
        prop_assert_eq!(comps.len(), reqs.len());
        prop_assert!(end > SimTime::ZERO);
        let mut last = SimTime::ZERO;
        for c in &comps {
            prop_assert!(c.finished >= c.submitted);
            prop_assert!(c.finished >= last);
            last = c.finished;
        }
    }
}
