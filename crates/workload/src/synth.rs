//! Seeded multi-tenant scenario generator for fleet-scale stress.
//!
//! The paper evaluates the advisor one catalog at a time; the fleet
//! work (ROADMAP: "Multi-tenant scenario generator and fleet-scale
//! stress") needs thousands of *distinct* tenants sharing one target
//! fleet. This module generates them from a compact parameter set in
//! the spirit of WiSeDB's multi-tenant workloads and atomix's
//! workload-generator knobs (PAPERS.md / SNIPPETS.md Snippet 1):
//! tenant count, zipf-skewed object popularity, object-count and
//! object-size distributions, read/write mix, burstiness, and a
//! per-tenant deadline class.
//!
//! Determinism contract: for a fixed [`SynthSpec`] the output is
//! bit-identical at any `WASLA_THREADS`. Tenant generation fans out
//! through [`wasla_simlib::par::par_map`] and every tenant derives its
//! private RNG stream from `par::task_seed(spec.seed, tenant_index)`,
//! so no randomness is threaded sequentially across tenants.

use crate::catalog::Catalog;
use crate::object::{DbObject, ObjectKind};
use crate::query::{AccessKind, AccessStep, QueryTemplate, RAND_REQ, SCAN_REQ, TEMP_REQ};
use crate::sql::{OlapConfig, SqlWorkload, SqlWorkloadKind};
use wasla_simlib::rng::ZipfSampler;
use wasla_simlib::{impl_json_struct, impl_json_unit_enum, par, SimRng};

const MIB: f64 = 1024.0 * 1024.0;

/// A tenant's latency expectation, in the WiSeDB sense of per-tenant
/// performance goals: it decides how much solve budget the advisor may
/// spend before degrading through the anytime fallback chain, and who
/// is shed first under admission pressure (batch tenants yield to
/// interactive ones).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeadlineClass {
    /// Tight deadline: answer fast, accept the cheapest solve rungs.
    Interactive,
    /// Default service level.
    Standard,
    /// No deadline: full-quality solves, first to be shed.
    Batch,
}

impl_json_unit_enum!(DeadlineClass {
    Interactive,
    Standard,
    Batch
});

impl DeadlineClass {
    /// Admission priority: lower is served first when capacity binds.
    pub fn priority(self) -> u8 {
        match self {
            DeadlineClass::Interactive => 0,
            DeadlineClass::Standard => 1,
            DeadlineClass::Batch => 2,
        }
    }

    /// Stable lower-case label (CLI flag value / decision log).
    pub fn label(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Standard => "standard",
            DeadlineClass::Batch => "batch",
        }
    }

    /// Parses a CLI label; `None` for unknown names.
    pub fn parse(s: &str) -> Option<DeadlineClass> {
        match s {
            "interactive" => Some(DeadlineClass::Interactive),
            "standard" => Some(DeadlineClass::Standard),
            "batch" => Some(DeadlineClass::Batch),
            _ => None,
        }
    }
}

/// Parameter set of one synthetic fleet scenario. Everything is
/// seeded: the same spec always regenerates the same tenants.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthSpec {
    /// Number of tenants to generate.
    pub tenants: usize,
    /// Shared fleet size (targets all tenants are laid out on).
    pub targets: usize,
    /// Zipf skew for object popularity and size decay within a tenant
    /// (0 = uniform; the atomix generator's `zipf-exponent`).
    pub zipf_theta: f64,
    /// Minimum data objects per tenant (tables + indexes).
    pub objects_min: usize,
    /// Maximum data objects per tenant.
    pub objects_max: usize,
    /// Smallest per-tenant base object size, in MiB.
    pub size_mib_min: f64,
    /// Largest per-tenant base object size, in MiB.
    pub size_mib_max: f64,
    /// Probability that a generated access step writes.
    pub write_fraction: f64,
    /// Concurrency burstiness in `[0, 1]`: 0 keeps every tenant at
    /// concurrency 1, 1 lets bursts reach 8 concurrent queries.
    pub burstiness: f64,
    /// Fraction of tenants in the interactive deadline class.
    pub interactive_share: f64,
    /// Fraction of tenants in the batch deadline class (the remainder
    /// after interactive + batch is standard).
    pub batch_share: f64,
    /// Base seed; tenant `i` derives `par::task_seed(seed, i)`.
    pub seed: u64,
}

impl_json_struct!(SynthSpec {
    tenants,
    targets,
    zipf_theta,
    objects_min,
    objects_max,
    size_mib_min,
    size_mib_max,
    write_fraction,
    burstiness,
    interactive_share,
    batch_share,
    seed
});

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            tenants: 1000,
            targets: 8,
            zipf_theta: 0.8,
            objects_min: 4,
            objects_max: 10,
            size_mib_min: 16.0,
            size_mib_max: 256.0,
            write_fraction: 0.2,
            burstiness: 0.5,
            interactive_share: 0.3,
            batch_share: 0.2,
            seed: 0x7E4A47,
        }
    }
}

impl SynthSpec {
    /// Validates the parameter ranges. The CLI maps the error message
    /// into `WaslaError::Usage` (exit 2).
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("tenants must be >= 1".into());
        }
        if self.targets == 0 {
            return Err("targets must be >= 1".into());
        }
        if self.objects_min == 0 || self.objects_min > self.objects_max {
            return Err(format!(
                "object count range [{}, {}] must satisfy 1 <= min <= max",
                self.objects_min, self.objects_max
            ));
        }
        if !(self.size_mib_min >= 1.0 && self.size_mib_min <= self.size_mib_max) {
            return Err(format!(
                "size range [{}, {}] MiB must satisfy 1 <= min <= max",
                self.size_mib_min, self.size_mib_max
            ));
        }
        if !(0.0..=4.0).contains(&self.zipf_theta) {
            return Err(format!("zipf theta {} must be in [0, 4]", self.zipf_theta));
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(format!(
                "write fraction {} must be in [0, 1]",
                self.write_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.burstiness) {
            return Err(format!("burstiness {} must be in [0, 1]", self.burstiness));
        }
        if !(0.0..=1.0).contains(&self.interactive_share)
            || !(0.0..=1.0).contains(&self.batch_share)
            || self.interactive_share + self.batch_share > 1.0
        {
            return Err(format!(
                "deadline shares (interactive {}, batch {}) must be in [0, 1] and sum to <= 1",
                self.interactive_share, self.batch_share
            ));
        }
        Ok(())
    }
}

/// One generated tenant: a private catalog, a workload over it, and a
/// deadline class. Object names carry the tenant prefix so catalogs
/// can be consolidated without collisions.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthTenant {
    /// Tenant name, `t0000`-style.
    pub name: String,
    /// The tenant's database objects.
    pub catalog: Catalog,
    /// The tenant's query workload.
    pub workload: SqlWorkload,
    /// The tenant's latency expectation.
    pub deadline: DeadlineClass,
}

/// Generates the full tenant population for a spec. Fans out through
/// `par::par_map`; bit-identical at any `WASLA_THREADS`.
pub fn generate(spec: &SynthSpec) -> Result<Vec<SynthTenant>, String> {
    spec.validate()?;
    let indices: Vec<u64> = (0..spec.tenants as u64).collect();
    Ok(par::par_map(&indices, |&i| generate_tenant(spec, i)))
}

/// Generates tenant `index` alone (used by the stress driver to avoid
/// materializing the whole population when batching).
pub fn generate_tenant(spec: &SynthSpec, index: u64) -> SynthTenant {
    let mut rng = SimRng::new(par::task_seed(spec.seed, index));
    let name = format!("t{index:04}");

    // --- catalog: zipf-decaying sizes over a random object count ---
    let span = spec.objects_max - spec.objects_min + 1;
    let data_objects = spec.objects_min + rng.index(span);
    let base_mib = rng.uniform_range(spec.size_mib_min, spec.size_mib_max);
    let mut objects = Vec::with_capacity(data_objects + 2);
    for k in 0..data_objects {
        // Rank-decay keeps one hot table and a long tail of smaller
        // objects, mirroring the skew the popularity sampler uses.
        let mib = (base_mib / ((k + 1) as f64).powf(spec.zipf_theta)).max(1.0);
        let kind = if k > 0 && rng.chance(0.35) {
            ObjectKind::Index
        } else {
            ObjectKind::Table
        };
        objects.push(DbObject::new(
            format!("{name}_OBJ{k:02}"),
            kind,
            (mib * MIB) as u64,
        ));
    }
    objects.push(DbObject::new(
        format!("{name}_TEMP"),
        ObjectKind::TempSpace,
        ((base_mib * 0.25).max(1.0) * MIB) as u64,
    ));
    let catalog = Catalog::from_objects(objects);

    // --- templates: zipf-skewed popularity over the data objects ---
    let popularity = ZipfSampler::new(data_objects, spec.zipf_theta);
    let template_count = 3 + rng.index(4);
    let mut templates = Vec::with_capacity(template_count);
    for t in 0..template_count {
        let steps = 1 + rng.index(3);
        let mut phase = Vec::with_capacity(steps);
        for _ in 0..steps {
            let obj = popularity.sample(&mut rng);
            let object = catalog.object(obj).name.clone();
            let write = rng.chance(spec.write_fraction);
            let sequential = rng.chance(0.6);
            let kind = match (write, sequential) {
                (false, true) => AccessKind::SeqRead {
                    fraction: rng.uniform_range(0.2, 1.0),
                    request: SCAN_REQ,
                },
                (false, false) => AccessKind::RandRead {
                    count: rng.uniform_range(50.0, 800.0),
                    request: RAND_REQ,
                },
                (true, true) => AccessKind::SeqWrite {
                    fraction: rng.uniform_range(0.05, 0.4),
                    request: SCAN_REQ,
                },
                (true, false) => AccessKind::RandWrite {
                    count: rng.uniform_range(20.0, 300.0),
                    request: RAND_REQ,
                },
            };
            phase.push(AccessStep { object, kind });
        }
        let mut phases = vec![phase];
        if rng.chance(0.4) {
            // Post-scan spill phase, like the paper's OLAP profiles.
            let spill = rng.uniform_range(0.05, 0.5);
            phases.push(vec![
                AccessStep {
                    object: format!("{name}_TEMP"),
                    kind: AccessKind::SeqWrite {
                        fraction: spill,
                        request: TEMP_REQ,
                    },
                },
                AccessStep {
                    object: format!("{name}_TEMP"),
                    kind: AccessKind::SeqRead {
                        fraction: spill,
                        request: TEMP_REQ,
                    },
                },
            ]);
        }
        templates.push(QueryTemplate {
            name: format!("{name}_Q{t}"),
            phases,
        });
    }

    // --- execution plan: zipf-skewed template mix, bursty concurrency ---
    let template_popularity = ZipfSampler::new(template_count, spec.zipf_theta);
    let sequence_len = 4 + rng.index(5);
    let sequence: Vec<usize> = (0..sequence_len)
        .map(|_| template_popularity.sample(&mut rng))
        .collect();
    let burst_span = (spec.burstiness * 7.0) as usize;
    let concurrency = 1 + rng.index(burst_span + 1);
    let workload = SqlWorkload {
        name: format!("{name}_MIX"),
        templates,
        kind: SqlWorkloadKind::Olap(OlapConfig {
            sequence,
            concurrency,
        }),
    };

    // --- deadline class from the configured shares ---
    let u = rng.uniform();
    let deadline = if u < spec.interactive_share {
        DeadlineClass::Interactive
    } else if u < spec.interactive_share + spec.batch_share {
        DeadlineClass::Batch
    } else {
        DeadlineClass::Standard
    };

    SynthTenant {
        name,
        catalog,
        workload,
        deadline,
    }
}

/// Renders tenants to a stable, human-diffable text form. This is the
/// golden-fixture format (`tests/fixtures/synth_tenants.golden`): any
/// change to the generator's sampling order shows up as a fixture
/// diff instead of silently shifting every downstream stress result.
pub fn render(tenants: &[SynthTenant]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for t in tenants {
        let (seq, conc) = match &t.workload.kind {
            SqlWorkloadKind::Olap(c) => (c.sequence.clone(), c.concurrency),
            SqlWorkloadKind::Oltp(c) => (Vec::new(), c.terminals),
        };
        let _ = writeln!(
            out,
            "tenant={} class={} objects={} bytes={} queries={} concurrency={}",
            t.name,
            t.deadline.label(),
            t.catalog.len(),
            t.catalog.total_size(),
            t.workload.templates.len(),
            conc,
        );
        for obj in t.catalog.objects() {
            let kind = match obj.kind {
                ObjectKind::Table => "table",
                ObjectKind::Index => "index",
                ObjectKind::Log => "log",
                ObjectKind::TempSpace => "temp",
            };
            let _ = writeln!(
                out,
                "  object name={} kind={kind} bytes={}",
                obj.name, obj.size
            );
        }
        for tpl in &t.workload.templates {
            let steps: usize = tpl.phases.iter().map(|p| p.len()).sum();
            let writes: usize = tpl
                .phases
                .iter()
                .flatten()
                .filter(|s| s.kind.is_write())
                .count();
            let _ = writeln!(
                out,
                "  query name={} phases={} steps={steps} writes={writes}",
                tpl.name,
                tpl.phases.len(),
            );
        }
        let seq_str: Vec<String> = seq.iter().map(|i| i.to_string()).collect();
        let _ = writeln!(out, "  sequence=[{}]", seq_str.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_simlib::json::{FromJson, ToJson};

    fn small_spec() -> SynthSpec {
        SynthSpec {
            tenants: 16,
            ..SynthSpec::default()
        }
    }

    #[test]
    fn generation_is_deterministic_and_index_stable() {
        let spec = small_spec();
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(a, b);
        // Per-tenant generation matches the batch path (index-seeded,
        // not sequence-seeded).
        for (i, t) in a.iter().enumerate() {
            assert_eq!(*t, generate_tenant(&spec, i as u64));
        }
    }

    #[test]
    fn seeds_change_the_population() {
        let a = generate(&small_spec()).unwrap();
        let b = generate(&SynthSpec {
            seed: 0xDEAD,
            ..small_spec()
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn object_names_are_fleet_unique() {
        let tenants = generate(&small_spec()).unwrap();
        let mut names: Vec<String> = tenants.iter().flat_map(|t| t.catalog.names()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn every_query_object_resolves_in_its_catalog() {
        for t in generate(&small_spec()).unwrap() {
            for tpl in &t.workload.templates {
                for name in tpl.objects() {
                    assert!(t.catalog.id_of(name).is_some(), "{}: {name}", t.name);
                }
            }
        }
    }

    #[test]
    fn deadline_shares_are_roughly_respected() {
        let spec = SynthSpec {
            tenants: 400,
            interactive_share: 0.5,
            batch_share: 0.25,
            ..SynthSpec::default()
        };
        let tenants = generate(&spec).unwrap();
        let interactive = tenants
            .iter()
            .filter(|t| t.deadline == DeadlineClass::Interactive)
            .count() as f64
            / 400.0;
        assert!((interactive - 0.5).abs() < 0.1, "share {interactive}");
    }

    #[test]
    fn zero_burstiness_pins_concurrency_to_one() {
        let spec = SynthSpec {
            tenants: 32,
            burstiness: 0.0,
            ..SynthSpec::default()
        };
        for t in generate(&spec).unwrap() {
            match &t.workload.kind {
                SqlWorkloadKind::Olap(c) => assert_eq!(c.concurrency, 1),
                SqlWorkloadKind::Oltp(_) => panic!("synth emits OLAP plans"),
            }
        }
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        for bad in [
            SynthSpec {
                tenants: 0,
                ..SynthSpec::default()
            },
            SynthSpec {
                objects_min: 0,
                ..SynthSpec::default()
            },
            SynthSpec {
                objects_min: 9,
                objects_max: 3,
                ..SynthSpec::default()
            },
            SynthSpec {
                write_fraction: 1.5,
                ..SynthSpec::default()
            },
            SynthSpec {
                burstiness: -0.1,
                ..SynthSpec::default()
            },
            SynthSpec {
                interactive_share: 0.8,
                batch_share: 0.4,
                ..SynthSpec::default()
            },
            SynthSpec {
                size_mib_min: 0.5,
                ..SynthSpec::default()
            },
            SynthSpec {
                zipf_theta: 9.0,
                ..SynthSpec::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should fail validation");
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SynthSpec::default();
        let json = spec.to_json().to_string_compact();
        let back = SynthSpec::from_json(&wasla_simlib::json::Json::parse(&json).unwrap()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn deadline_class_labels_round_trip() {
        for class in [
            DeadlineClass::Interactive,
            DeadlineClass::Standard,
            DeadlineClass::Batch,
        ] {
            assert_eq!(DeadlineClass::parse(class.label()), Some(class));
        }
        assert_eq!(DeadlineClass::parse("realtime"), None);
    }

    #[test]
    fn render_mentions_every_tenant_once() {
        let tenants = generate(&small_spec()).unwrap();
        let text = render(&tenants);
        for t in &tenants {
            assert_eq!(text.matches(&format!("tenant={} ", t.name)).count(), 1);
        }
    }
}
