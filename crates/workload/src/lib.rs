//! Workload modelling for WASLA.
//!
//! This crate holds everything the layout advisor needs to know about
//! *what* the database does, independent of *where* objects are placed:
//!
//! * [`WorkloadSpec`] — the paper's Rome-style per-object workload
//!   description `Wᵢ` (Figure 5): read/write request sizes and rates,
//!   sequential run count, and the temporal-overlap vector `Oᵢ[·]`.
//! * [`DbObject`] / [`Catalog`] — database objects (tables, indexes,
//!   logs, temp space) with sizes; prebuilt TPC-H-like and TPC-C-like
//!   catalogs matching the paper's Figure 9 inventory.
//! * [`QueryTemplate`] — per-query object-access profiles (which
//!   objects each query scans or probes, in which concurrent phases);
//!   prebuilt profiles for the 22 TPC-H-like queries and the TPC-C-like
//!   New-Order transaction.
//! * [`SqlWorkload`] — the paper's four workloads (Figure 10):
//!   OLAP1-21, OLAP1-63, OLAP8-63, and OLTP, plus consolidation and
//!   replicated (2x/3x/4x) variants used in §6.3 and §6.5.
//! * [`estimator`] — an analytic storage-workload estimator in the
//!   spirit of the paper's citation \[19\]: derives `Wᵢ` directly from a
//!   catalog and SQL workload without tracing.
//! * [`synth`] — a seeded multi-tenant scenario generator (zipf-skewed
//!   popularity, size/count distributions, read/write mix, burstiness,
//!   deadline classes) for fleet-scale stress.

pub mod catalog;
pub mod estimator;
pub mod object;
pub mod query;
pub mod replicate;
pub mod spec;
pub mod sql;
pub mod synth;

pub use catalog::Catalog;
pub use object::{DbObject, ObjectId, ObjectKind};
pub use query::{AccessKind, AccessStep, QueryTemplate};
pub use replicate::replicate_problem;
pub use spec::{WorkloadSet, WorkloadSpec};
pub use sql::{OlapConfig, OltpConfig, SqlWorkload, SqlWorkloadKind};
pub use synth::{DeadlineClass, SynthSpec, SynthTenant};
