//! Per-query object-access profiles.
//!
//! The execution simulator does not run SQL; it replays each query's
//! *storage footprint*: which objects it scans or probes, how much, and
//! in which concurrent phases. Steps within a phase proceed in
//! parallel (that concurrency is what creates the temporal overlap
//! `Oᵢ[j]` between objects, paper §5.1); phases run back-to-back.
//!
//! The profiles for the 22 TPC-H-like queries below are crafted so the
//! aggregate object load ordering matches the paper's Figures 1/12:
//! LINEITEM ≫ ORDERS > I_L_ORDERKEY > TEMP_SPACE > ORDERS_PKEY >
//! PARTSUPP > I_L_SUPPK_PARTK > PART > CUSTOMER, with LINEITEM/ORDERS
//! sequential and frequently co-accessed, and TEMP_SPACE used in
//! post-scan phases (so it rarely overlaps ORDERS — the property the
//! advisor exploits in Figure 1).

use wasla_simlib::impl_json_struct;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};

/// Request size for sequential table scans (bytes): the DBMS reads
/// 8 KiB pages; OS readahead and the I/O scheduler merge them into
/// large sequential requests.
pub const SCAN_REQ: u64 = 128 * 1024;
/// Request size for sequential index range scans (bytes).
pub const IDX_SCAN_REQ: u64 = 32 * 1024;
/// Request size for random (point) accesses (bytes).
pub const RAND_REQ: u64 = 8 * 1024;
/// Request size for temp-space spill I/O (bytes).
pub const TEMP_REQ: u64 = 64 * 1024;
/// Request size for log appends (bytes).
pub const LOG_REQ: u64 = 16 * 1024;

/// How one access step touches its object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessKind {
    /// Sequentially read `fraction` of the object in `request`-byte
    /// requests, starting at a random aligned position (wrapping).
    SeqRead {
        /// Fraction of the object read (may exceed 1.0 for re-scans).
        fraction: f64,
        /// Request size in bytes.
        request: u64,
    },
    /// `count` random point reads of `request` bytes each.
    RandRead {
        /// Expected number of requests at catalog scale 1.0.
        count: f64,
        /// Request size in bytes.
        request: u64,
    },
    /// Sequentially write `fraction` of the object.
    SeqWrite {
        /// Fraction of the object written.
        fraction: f64,
        /// Request size in bytes.
        request: u64,
    },
    /// `count` random point writes.
    RandWrite {
        /// Expected number of requests at catalog scale 1.0.
        count: f64,
        /// Request size in bytes.
        request: u64,
    },
}

// Externally tagged with named fields, matching the serde derive:
// `{"SeqRead": {"fraction": 0.6, "request": 65536}}`.
impl ToJson for AccessKind {
    fn to_json(&self) -> Json {
        let (tag, fields) = match *self {
            AccessKind::SeqRead { fraction, request } => (
                "SeqRead",
                vec![
                    ("fraction", fraction.to_json()),
                    ("request", request.to_json()),
                ],
            ),
            AccessKind::RandRead { count, request } => (
                "RandRead",
                vec![("count", count.to_json()), ("request", request.to_json())],
            ),
            AccessKind::SeqWrite { fraction, request } => (
                "SeqWrite",
                vec![
                    ("fraction", fraction.to_json()),
                    ("request", request.to_json()),
                ],
            ),
            AccessKind::RandWrite { count, request } => (
                "RandWrite",
                vec![("count", count.to_json()), ("request", request.to_json())],
            ),
        };
        json::variant(
            tag,
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        )
    }
}

impl FromJson for AccessKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = json::untag(v)?;
        let get = |name: &str| {
            payload
                .field(name)
                .ok_or_else(|| JsonError::missing_field(name))
        };
        match tag {
            "SeqRead" => Ok(AccessKind::SeqRead {
                fraction: f64::from_json(get("fraction")?)?,
                request: u64::from_json(get("request")?)?,
            }),
            "RandRead" => Ok(AccessKind::RandRead {
                count: f64::from_json(get("count")?)?,
                request: u64::from_json(get("request")?)?,
            }),
            "SeqWrite" => Ok(AccessKind::SeqWrite {
                fraction: f64::from_json(get("fraction")?)?,
                request: u64::from_json(get("request")?)?,
            }),
            "RandWrite" => Ok(AccessKind::RandWrite {
                count: f64::from_json(get("count")?)?,
                request: u64::from_json(get("request")?)?,
            }),
            other => Err(JsonError::new(format!(
                "unknown AccessKind variant: {other:?}"
            ))),
        }
    }
}

impl AccessKind {
    /// True if this step writes.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            AccessKind::SeqWrite { .. } | AccessKind::RandWrite { .. }
        )
    }

    /// True if this step is sequential.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            AccessKind::SeqRead { .. } | AccessKind::SeqWrite { .. }
        )
    }
}

/// One object-access step of a query.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessStep {
    /// Object name (resolved against the catalog at run time).
    pub object: String,
    /// Access pattern.
    pub kind: AccessKind,
}

impl_json_struct!(AccessStep { object, kind });

/// A query's storage footprint: phases of concurrent access steps.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryTemplate {
    /// Query name ("Q1", "NEW_ORDER", ...).
    pub name: String,
    /// Phases run sequentially; steps within a phase run concurrently.
    pub phases: Vec<Vec<AccessStep>>,
}

impl_json_struct!(QueryTemplate { name, phases });

impl QueryTemplate {
    /// All object names this query touches (deduplicated).
    pub fn objects(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .phases
            .iter()
            .flatten()
            .map(|s| s.object.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Returns a copy with every object name prefixed — used when a
    /// catalog is consolidated and names were prefixed to stay unique.
    pub fn with_prefix(&self, prefix: &str) -> QueryTemplate {
        QueryTemplate {
            name: format!("{prefix}{}", self.name),
            phases: self
                .phases
                .iter()
                .map(|phase| {
                    phase
                        .iter()
                        .map(|s| AccessStep {
                            object: format!("{prefix}{}", s.object),
                            kind: s.kind,
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

fn seq(object: &str, fraction: f64) -> AccessStep {
    AccessStep {
        object: object.into(),
        kind: AccessKind::SeqRead {
            fraction,
            request: SCAN_REQ,
        },
    }
}

fn idx(object: &str, fraction: f64) -> AccessStep {
    AccessStep {
        object: object.into(),
        kind: AccessKind::SeqRead {
            fraction,
            request: IDX_SCAN_REQ,
        },
    }
}

fn probe(object: &str, count: f64) -> AccessStep {
    AccessStep {
        object: object.into(),
        kind: AccessKind::RandRead {
            count,
            request: RAND_REQ,
        },
    }
}

fn tmp_write(fraction: f64) -> AccessStep {
    AccessStep {
        object: "TEMP_SPACE".into(),
        kind: AccessKind::SeqWrite {
            fraction,
            request: TEMP_REQ,
        },
    }
}

fn tmp_read(fraction: f64) -> AccessStep {
    AccessStep {
        object: "TEMP_SPACE".into(),
        kind: AccessKind::SeqRead {
            fraction,
            request: TEMP_REQ,
        },
    }
}

fn q(name: &str, phases: Vec<Vec<AccessStep>>) -> QueryTemplate {
    QueryTemplate {
        name: name.into(),
        phases,
    }
}

/// Storage profiles of the 22 TPC-H-like benchmark queries, indexed
/// `Q1..Q22` (element 0 is Q1). Fractions are of the object's size;
/// probe counts are expected requests at catalog scale 1.0.
pub fn tpch_queries() -> Vec<QueryTemplate> {
    vec![
        // Q1: pricing summary — full LINEITEM scan, small aggregation spill.
        q(
            "Q1",
            vec![
                vec![seq("LINEITEM", 1.0)],
                vec![tmp_write(0.1), tmp_read(0.1)],
            ],
        ),
        // Q2: minimum cost supplier — PARTSUPP/PART driven.
        q(
            "Q2",
            vec![vec![
                seq("PARTSUPP", 0.6),
                seq("PART", 0.6),
                seq("SUPPLIER", 1.0),
                probe("PARTSUPP_PKEY", 4_000.0),
            ]],
        ),
        // Q3: shipping priority — LINEITEM ⋈ ORDERS ⋈ CUSTOMER, sort spill.
        q(
            "Q3",
            vec![
                vec![
                    seq("LINEITEM", 1.0),
                    seq("ORDERS", 1.0),
                    seq("CUSTOMER", 0.6),
                ],
                vec![tmp_write(0.6)],
                vec![tmp_read(0.6)],
            ],
        ),
        // Q4: order priority — ORDERS scan with LINEITEM semijoin via index.
        q(
            "Q4",
            vec![
                vec![
                    seq("ORDERS", 1.0),
                    idx("I_L_ORDERKEY", 0.8),
                    probe("ORDERS_PKEY", 6_000.0),
                ],
                vec![tmp_write(0.3), tmp_read(0.3)],
            ],
        ),
        // Q5: local supplier volume — 5-way join.
        q(
            "Q5",
            vec![vec![
                seq("LINEITEM", 1.0),
                seq("ORDERS", 1.0),
                seq("CUSTOMER", 1.0),
                seq("SUPPLIER", 1.0),
            ]],
        ),
        // Q6: forecasting revenue change — pure LINEITEM scan.
        q("Q6", vec![vec![seq("LINEITEM", 1.0)]]),
        // Q7: volume shipping.
        q(
            "Q7",
            vec![
                vec![
                    seq("LINEITEM", 1.0),
                    seq("ORDERS", 1.0),
                    seq("CUSTOMER", 0.5),
                    seq("SUPPLIER", 1.0),
                ],
                vec![tmp_write(0.2), tmp_read(0.2)],
            ],
        ),
        // Q8: national market share.
        q(
            "Q8",
            vec![vec![
                seq("LINEITEM", 1.0),
                seq("ORDERS", 1.0),
                seq("PART", 0.4),
                seq("CUSTOMER", 0.4),
            ]],
        ),
        // Q9: product type profit — the heaviest query (excluded from the
        // paper's runs for excessive runtime; we keep the profile for
        // completeness but the OLAP mixes skip it, as the paper did).
        q(
            "Q9",
            vec![
                vec![
                    seq("LINEITEM", 2.0),
                    seq("ORDERS", 1.0),
                    seq("PARTSUPP", 1.0),
                    seq("PART", 1.0),
                ],
                vec![tmp_write(1.0)],
                vec![tmp_read(1.0)],
            ],
        ),
        // Q10: returned items — join + big sort.
        q(
            "Q10",
            vec![
                vec![
                    seq("LINEITEM", 1.0),
                    seq("ORDERS", 1.0),
                    seq("CUSTOMER", 1.0),
                ],
                vec![tmp_write(0.5)],
                vec![tmp_read(0.5)],
            ],
        ),
        // Q11: important stock — PARTSUPP driven.
        q(
            "Q11",
            vec![vec![seq("PARTSUPP", 1.0), seq("SUPPLIER", 1.0)]],
        ),
        // Q12: shipping modes — LINEITEM ⋈ ORDERS.
        q("Q12", vec![vec![seq("LINEITEM", 1.0), seq("ORDERS", 1.0)]]),
        // Q13: customer distribution — ORDERS ⋈ CUSTOMER with big agg.
        q(
            "Q13",
            vec![
                vec![seq("ORDERS", 1.0), seq("CUSTOMER", 1.0)],
                vec![tmp_write(0.4), tmp_read(0.4)],
            ],
        ),
        // Q14: promotion effect — LINEITEM ⋈ PART.
        q("Q14", vec![vec![seq("LINEITEM", 1.0), seq("PART", 1.0)]]),
        // Q15: top supplier — LINEITEM scan twice (view + join).
        q(
            "Q15",
            vec![vec![seq("LINEITEM", 1.3), seq("SUPPLIER", 1.0)]],
        ),
        // Q16: parts/supplier relationship — PARTSUPP ⋈ PART.
        q("Q16", vec![vec![seq("PARTSUPP", 1.0), seq("PART", 1.0)]]),
        // Q17: small-quantity-order revenue — index-driven LINEITEM access.
        q(
            "Q17",
            vec![vec![
                seq("PART", 0.3),
                idx("I_L_SUPPK_PARTK", 0.5),
                probe("LINEITEM", 12_000.0),
            ]],
        ),
        // Q18: large volume customer — the paper's §6.6 notes its huge
        // intermediate results; heavy TEMP usage after the scans.
        q(
            "Q18",
            vec![
                vec![
                    seq("LINEITEM", 1.0),
                    seq("ORDERS", 1.0),
                    idx("I_L_ORDERKEY", 1.0),
                ],
                vec![tmp_write(1.2)],
                vec![tmp_read(1.2)],
            ],
        ),
        // Q19: discounted revenue — LINEITEM ⋈ PART.
        q("Q19", vec![vec![seq("LINEITEM", 1.0), seq("PART", 1.0)]]),
        // Q20: potential part promotion.
        q(
            "Q20",
            vec![vec![
                seq("PARTSUPP", 0.8),
                idx("I_L_SUPPK_PARTK", 0.5),
                seq("SUPPLIER", 1.0),
                probe("PART_PKEY", 3_000.0),
            ]],
        ),
        // Q21: suppliers who kept orders waiting — LINEITEM self-join.
        q(
            "Q21",
            vec![
                vec![
                    seq("LINEITEM", 1.6),
                    seq("ORDERS", 1.0),
                    idx("I_L_ORDERKEY", 0.8),
                    seq("SUPPLIER", 1.0),
                ],
                vec![tmp_write(0.3), tmp_read(0.3)],
            ],
        ),
        // Q22: global sales opportunity — CUSTOMER driven with ORDERS
        // anti-join via its primary key.
        q(
            "Q22",
            vec![vec![
                seq("CUSTOMER", 1.0),
                probe("ORDERS_PKEY", 8_000.0),
                probe("ORDERS", 5_000.0),
            ]],
        ),
    ]
}

/// Storage profile of a TPC-C-like New-Order transaction: ~10 random
/// STOCK reads+writes, customer/district lookups, sequential
/// ORDER_LINE inserts, and a log append. Probe counts are *per
/// transaction* (not scaled by catalog size).
pub fn new_order_txn() -> QueryTemplate {
    fn rr(object: &str, count: f64) -> AccessStep {
        AccessStep {
            object: object.into(),
            kind: AccessKind::RandRead {
                count,
                request: RAND_REQ,
            },
        }
    }
    fn rw(object: &str, count: f64) -> AccessStep {
        AccessStep {
            object: object.into(),
            kind: AccessKind::RandWrite {
                count,
                request: RAND_REQ,
            },
        }
    }
    QueryTemplate {
        name: "NEW_ORDER".into(),
        phases: vec![
            // Reads: item/stock/customer lookups via indexes.
            vec![
                rr("ITEM", 10.0),
                rr("STOCK", 10.0),
                rr("PK_STOCK", 10.0),
                rr("CUSTOMER", 1.0),
                rr("PK_CUSTOMER", 1.0),
                rr("DISTRICT", 1.0),
            ],
            // Writes: stock update, order/order-line inserts, log.
            vec![
                rw("STOCK", 10.0),
                rw("ORDER_LINE", 2.0),
                rw("PK_ORDER_LINE", 1.0),
                rw("ORDERS", 1.0),
                rw("NEW_ORDER", 1.0),
                AccessStep {
                    object: "XACTION_LOG".into(),
                    kind: AccessKind::SeqWrite {
                        fraction: 5e-5,
                        request: LOG_REQ,
                    },
                },
            ],
        ],
    }
}

/// Storage profile of a TPC-C-like Payment transaction: customer and
/// district updates plus a history insert and log append.
pub fn payment_txn() -> QueryTemplate {
    QueryTemplate {
        name: "PAYMENT".into(),
        phases: vec![
            vec![
                rr_step("CUSTOMER", 1.0),
                rr_step("PK_CUSTOMER", 1.0),
                rr_step("I_CUSTOMER", 0.6), // 60% select customer by name
                rr_step("DISTRICT", 1.0),
                rr_step("WAREHOUSE", 1.0),
            ],
            vec![
                rw_step("CUSTOMER", 1.0),
                rw_step("DISTRICT", 1.0),
                rw_step("WAREHOUSE", 1.0),
                rw_step("HISTORY", 1.0),
                log_step(3e-5),
            ],
        ],
    }
}

/// Storage profile of a TPC-C-like Order-Status transaction
/// (read-only: customer lookup plus the latest order's lines).
pub fn order_status_txn() -> QueryTemplate {
    QueryTemplate {
        name: "ORDER_STATUS".into(),
        phases: vec![vec![
            rr_step("CUSTOMER", 1.0),
            rr_step("PK_CUSTOMER", 1.0),
            rr_step("I_CUSTOMER", 0.6),
            rr_step("ORDERS", 1.0),
            rr_step("I_ORDERS", 1.0),
            rr_step("ORDER_LINE", 10.0),
            rr_step("PK_ORDER_LINE", 1.0),
        ]],
    }
}

/// Storage profile of a TPC-C-like Delivery transaction: drain one
/// new-order per district, updating orders/lines/customer balances.
pub fn delivery_txn() -> QueryTemplate {
    QueryTemplate {
        name: "DELIVERY".into(),
        phases: vec![
            vec![
                rr_step("NEW_ORDER", 10.0),
                rr_step("PK_NEW_ORDER", 10.0),
                rr_step("ORDERS", 10.0),
                rr_step("ORDER_LINE", 100.0),
            ],
            vec![
                rw_step("NEW_ORDER", 10.0),
                rw_step("ORDERS", 10.0),
                rw_step("ORDER_LINE", 30.0),
                rw_step("CUSTOMER", 10.0),
                log_step(1e-4),
            ],
        ],
    }
}

/// Storage profile of a TPC-C-like Stock-Level transaction
/// (read-only: recent order lines joined against low-stock items).
pub fn stock_level_txn() -> QueryTemplate {
    QueryTemplate {
        name: "STOCK_LEVEL".into(),
        phases: vec![vec![
            rr_step("DISTRICT", 1.0),
            rr_step("ORDER_LINE", 200.0),
            rr_step("PK_ORDER_LINE", 20.0),
            rr_step("STOCK", 200.0),
            rr_step("PK_STOCK", 20.0),
        ]],
    }
}

fn rr_step(object: &str, count: f64) -> AccessStep {
    AccessStep {
        object: object.into(),
        kind: AccessKind::RandRead {
            count,
            request: RAND_REQ,
        },
    }
}

fn rw_step(object: &str, count: f64) -> AccessStep {
    AccessStep {
        object: object.into(),
        kind: AccessKind::RandWrite {
            count,
            request: RAND_REQ,
        },
    }
}

fn log_step(fraction: f64) -> AccessStep {
    AccessStep {
        object: "XACTION_LOG".into(),
        kind: AccessKind::SeqWrite {
            fraction,
            request: LOG_REQ,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn twenty_two_queries() {
        let qs = tpch_queries();
        assert_eq!(qs.len(), 22);
        for (i, tpl) in qs.iter().enumerate() {
            assert_eq!(tpl.name, format!("Q{}", i + 1));
            assert!(!tpl.phases.is_empty(), "{} has no phases", tpl.name);
        }
    }

    #[test]
    fn all_query_objects_exist_in_catalog() {
        let cat = Catalog::tpch_like(0.01);
        for tpl in tpch_queries() {
            for name in tpl.objects() {
                assert!(
                    cat.id_of(name).is_some(),
                    "{}: unknown object {name}",
                    tpl.name
                );
            }
        }
    }

    #[test]
    fn new_order_objects_exist_in_tpcc_catalog() {
        let cat = Catalog::tpcc_like(0.01);
        for name in new_order_txn().objects() {
            assert!(cat.id_of(name).is_some(), "unknown object {name}");
        }
    }

    #[test]
    fn all_tpcc_transaction_objects_exist() {
        let cat = Catalog::tpcc_like(0.01);
        for tpl in [
            payment_txn(),
            order_status_txn(),
            delivery_txn(),
            stock_level_txn(),
        ] {
            for name in tpl.objects() {
                assert!(cat.id_of(name).is_some(), "{}: unknown {name}", tpl.name);
            }
        }
    }

    #[test]
    fn read_only_transactions_never_write() {
        for tpl in [order_status_txn(), stock_level_txn()] {
            for step in tpl.phases.iter().flatten() {
                assert!(!step.kind.is_write(), "{} writes", tpl.name);
            }
        }
    }

    #[test]
    fn update_transactions_append_to_the_log() {
        for tpl in [new_order_txn(), payment_txn(), delivery_txn()] {
            assert!(
                tpl.objects().contains(&"XACTION_LOG"),
                "{} skips the log",
                tpl.name
            );
        }
    }

    #[test]
    fn lineitem_dominates_scan_bytes() {
        // Sum scan fractions × sizes across the mix: LINEITEM must carry
        // the largest sequential load (paper Figures 1/12/13 ordering).
        let cat = Catalog::tpch_like(1.0);
        let mut bytes = vec![0.0f64; cat.len()];
        for tpl in tpch_queries() {
            if tpl.name == "Q9" {
                continue; // excluded from the paper's mixes
            }
            for step in tpl.phases.iter().flatten() {
                if let AccessKind::SeqRead { fraction, .. } = step.kind {
                    let id = cat.expect_id(&step.object);
                    bytes[id] += fraction * cat.object(id).size as f64;
                }
            }
        }
        let li = bytes[cat.expect_id("LINEITEM")];
        let or = bytes[cat.expect_id("ORDERS")];
        assert!(li > 3.0 * or, "LINEITEM {li:.2e} vs ORDERS {or:.2e}");
        assert!(or > bytes[cat.expect_id("PARTSUPP")]);
    }

    #[test]
    fn temp_space_never_in_first_phase_with_orders() {
        // The Figure 1 layout co-locates TEMP_SPACE and ORDERS because
        // they are rarely accessed simultaneously; the profiles must
        // respect that (temp I/O happens after the scans).
        for tpl in tpch_queries() {
            for phase in &tpl.phases {
                let has_orders = phase.iter().any(|s| s.object == "ORDERS");
                let has_temp = phase.iter().any(|s| s.object == "TEMP_SPACE");
                assert!(
                    !(has_orders && has_temp),
                    "{}: ORDERS and TEMP_SPACE in the same phase",
                    tpl.name
                );
            }
        }
    }

    #[test]
    fn prefixing_renames_everything() {
        let tpl = new_order_txn().with_prefix("C_");
        assert_eq!(tpl.name, "C_NEW_ORDER");
        for name in tpl.objects() {
            assert!(name.starts_with("C_"));
        }
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::SeqWrite {
            fraction: 0.1,
            request: 1
        }
        .is_write());
        assert!(AccessKind::SeqWrite {
            fraction: 0.1,
            request: 1
        }
        .is_sequential());
        assert!(!AccessKind::RandRead {
            count: 1.0,
            request: 1
        }
        .is_write());
        assert!(!AccessKind::RandRead {
            count: 1.0,
            request: 1
        }
        .is_sequential());
    }
}
