//! Analytic storage-workload estimation.
//!
//! The paper's §5.1 names two ways to obtain workload descriptions:
//! trace-and-fit (their primary path; our `wasla-trace` crate) and a
//! *storage workload estimator* that derives the descriptions from
//! knowledge of the database and its SQL workload without running it
//! (their citation \[19\], noting the result "may be less accurate").
//!
//! This module implements the second path: it walks a
//! [`SqlWorkload`]'s templates against a [`Catalog`], places the
//! queries on a nominal timeline, and produces per-object request
//! rates, sizes, run counts and overlap estimates.

use crate::catalog::Catalog;
use crate::query::AccessKind;
use crate::spec::{WorkloadSet, WorkloadSpec};
use crate::sql::{SqlWorkload, SqlWorkloadKind};

/// Tunables for the analytic estimator. The defaults assume a
/// mid-2000s storage system; they only set the *nominal* time scale, so
/// rates are consistent relative to one another even if absolute
/// seconds are off (which is what the min-max objective cares about).
#[derive(Clone, Debug)]
pub struct EstimatorConfig {
    /// Nominal sequential bandwidth used to convert scan bytes to time.
    pub seq_bandwidth: f64,
    /// Nominal random-request service time (seconds).
    pub rand_service: f64,
    /// Catalog scale factor: probe counts in templates are specified at
    /// scale 1.0 and shrink with the data.
    pub scale: f64,
    /// Fraction of logical requests absorbed by the buffer pool for
    /// index objects (indexes are hot and mostly cached).
    pub index_hit_rate: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            seq_bandwidth: 100e6,
            rand_service: 0.006,
            scale: 1.0,
            index_hit_rate: 0.6,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct ObjectAccum {
    read_reqs: f64,
    write_reqs: f64,
    read_bytes: f64,
    write_bytes: f64,
    runs: f64,
    /// Nominal (start, end) active intervals on the timeline.
    intervals: Vec<(f64, f64)>,
}

/// Estimates the Rome workload descriptions for every catalog object
/// under the given SQL workload.
pub fn estimate(
    catalog: &Catalog,
    workload: &SqlWorkload,
    config: &EstimatorConfig,
) -> WorkloadSet {
    match &workload.kind {
        SqlWorkloadKind::Olap(olap) => {
            estimate_olap(catalog, workload, &olap.sequence, olap.concurrency, config)
        }
        SqlWorkloadKind::Oltp(oltp) => {
            estimate_oltp(catalog, workload, &oltp.mix, oltp.terminals, config)
        }
    }
}

/// Requests and nominal duration of one access step.
fn step_cost(
    catalog: &Catalog,
    object: usize,
    kind: &AccessKind,
    config: &EstimatorConfig,
) -> (f64, f64, f64, bool) {
    // Returns (requests, bytes, duration, is_write).
    let size = catalog.object(object).size as f64;
    match *kind {
        AccessKind::SeqRead { fraction, request } => {
            let bytes = fraction * size;
            let reqs = (bytes / request as f64).max(1.0);
            (reqs, bytes, bytes / config.seq_bandwidth, false)
        }
        AccessKind::SeqWrite { fraction, request } => {
            let bytes = fraction * size;
            let reqs = (bytes / request as f64).max(1.0);
            (reqs, bytes, bytes / config.seq_bandwidth, true)
        }
        AccessKind::RandRead { count, request } => {
            let reqs = (count * config.scale).max(1.0);
            (
                reqs,
                reqs * request as f64,
                reqs * config.rand_service,
                false,
            )
        }
        AccessKind::RandWrite { count, request } => {
            let reqs = (count * config.scale).max(1.0);
            (
                reqs,
                reqs * request as f64,
                reqs * config.rand_service,
                true,
            )
        }
    }
}

fn estimate_olap(
    catalog: &Catalog,
    workload: &SqlWorkload,
    sequence: &[usize],
    concurrency: usize,
    config: &EstimatorConfig,
) -> WorkloadSet {
    let n = catalog.len();
    let mut accum = vec![ObjectAccum::default(); n];
    // Lay queries out sequentially on a nominal single-stream timeline.
    let mut clock = 0.0f64;
    for &tidx in sequence {
        let template = &workload.templates[tidx];
        for phase in &template.phases {
            let mut phase_dur = 0.0f64;
            for step in phase {
                let obj = catalog.expect_id(&step.object);
                let (reqs, bytes, dur, is_write) = step_cost(catalog, obj, &step.kind, config);
                let a = &mut accum[obj];
                if is_write {
                    a.write_reqs += reqs;
                    a.write_bytes += bytes;
                } else {
                    a.read_reqs += reqs;
                    a.read_bytes += bytes;
                }
                a.runs += if step.kind.is_sequential() { 1.0 } else { reqs };
                a.intervals.push((clock, clock + dur));
                phase_dur = phase_dur.max(dur);
            }
            clock += phase_dur;
        }
    }
    let makespan = (clock / concurrency as f64).max(1e-9);
    build_set(catalog, accum, makespan, concurrency, clock, config)
}

fn estimate_oltp(
    catalog: &Catalog,
    workload: &SqlWorkload,
    mix: &[(usize, f64)],
    terminals: usize,
    config: &EstimatorConfig,
) -> WorkloadSet {
    let n = catalog.len();
    let mut accum = vec![ObjectAccum::default(); n];
    // Cost a mix-weighted "average transaction", then scale to a
    // nominal one-second window.
    let total_weight: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut txn_dur = 0.0f64;
    for &(tidx, weight) in mix {
        let share = weight / total_weight.max(1e-12);
        let template = &workload.templates[tidx];
        for phase in &template.phases {
            let mut phase_dur = 0.0f64;
            for step in phase {
                let obj = catalog.expect_id(&step.object);
                let (reqs, bytes, dur, is_write) = step_cost(catalog, obj, &step.kind, config);
                let a = &mut accum[obj];
                if is_write {
                    a.write_reqs += reqs * share;
                    a.write_bytes += bytes * share;
                } else {
                    a.read_reqs += reqs * share;
                    a.read_bytes += bytes * share;
                }
                a.runs += share * if step.kind.is_sequential() { 1.0 } else { reqs };
                phase_dur = phase_dur.max(dur);
            }
            txn_dur += phase_dur * share;
        }
    }
    let txn_rate = terminals as f64 / txn_dur.max(1e-9);
    // All OLTP objects are continuously co-active: the terminals cycle
    // through every object many times per second.
    for a in accum.iter_mut() {
        let active = a.read_reqs + a.write_reqs > 0.0;
        a.read_reqs *= txn_rate;
        a.write_reqs *= txn_rate;
        a.read_bytes *= txn_rate;
        a.write_bytes *= txn_rate;
        a.runs *= txn_rate;
        if active {
            a.intervals.push((0.0, 1.0));
        }
    }
    build_set(catalog, accum, 1.0, terminals, 1.0, config)
}

fn build_set(
    catalog: &Catalog,
    accum: Vec<ObjectAccum>,
    makespan: f64,
    concurrency: usize,
    nominal_total: f64,
    config: &EstimatorConfig,
) -> WorkloadSet {
    let n = catalog.len();
    // Active fraction of each object on the nominal timeline.
    let active: Vec<f64> = accum
        .iter()
        .map(|a| {
            let t: f64 = a.intervals.iter().map(|(s, e)| e - s).sum();
            (t / nominal_total.max(1e-9)).min(1.0)
        })
        .collect();
    let mut specs = Vec::with_capacity(n);
    for (i, a) in accum.iter().enumerate() {
        let is_index = matches!(catalog.object(i).kind, crate::object::ObjectKind::Index);
        let cache_pass = if is_index {
            1.0 - config.index_hit_rate
        } else {
            1.0
        };
        let read_reqs = a.read_reqs * cache_pass;
        let write_reqs = a.write_reqs;
        let read_size = if read_reqs > 0.0 {
            a.read_bytes * cache_pass / read_reqs
        } else {
            8192.0
        };
        let write_size = if write_reqs > 0.0 {
            a.write_bytes / write_reqs
        } else {
            8192.0
        };
        // Concurrency interleaves scans of the same object from
        // different queries, shortening observed runs.
        let raw_run = if a.runs > 0.0 {
            ((read_reqs + write_reqs) / a.runs).max(1.0)
        } else {
            1.0
        };
        let conc_factor = 1.0 + (concurrency.saturating_sub(1)) as f64 * active[i];
        let run_count = (raw_run / conc_factor).max(1.0);

        let mut overlaps = vec![0.0; n];
        for (j, aj) in accum.iter().enumerate() {
            if i == j {
                continue;
            }
            // Same-timeline co-activity...
            let mut co = interval_overlap(&a.intervals, &aj.intervals);
            // ...plus cross-query co-activity induced by concurrency.
            if concurrency > 1 {
                co += (concurrency - 1) as f64 * active[j];
            }
            overlaps[j] = co.min(1.0);
        }
        specs.push(WorkloadSpec {
            read_size,
            write_size,
            read_rate: read_reqs / makespan,
            write_rate: write_reqs / makespan,
            run_count,
            overlaps,
        });
    }
    WorkloadSet {
        names: catalog.names(),
        sizes: catalog.sizes(),
        specs,
    }
}

/// Fraction of `a`'s total active time during which some interval of
/// `b` is also active.
fn interval_overlap(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let total: f64 = a.iter().map(|(s, e)| e - s).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut covered = 0.0;
    for &(s1, e1) in a {
        for &(s2, e2) in b {
            let lo = s1.max(s2);
            let hi = e1.min(e2);
            if hi > lo {
                covered += hi - lo;
            }
        }
    }
    (covered / total).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::SqlWorkload;

    #[test]
    fn olap_lineitem_has_highest_rate() {
        let catalog = Catalog::tpch_like(1.0);
        let workload = SqlWorkload::olap1_63(1);
        let set = estimate(&catalog, &workload, &EstimatorConfig::default());
        set.validate().unwrap();
        let li = catalog.expect_id("LINEITEM");
        let rate_li = set.specs[li].total_rate();
        for (i, spec) in set.specs.iter().enumerate() {
            if i != li {
                assert!(
                    rate_li >= spec.total_rate(),
                    "object {} out-rates LINEITEM",
                    set.names[i]
                );
            }
        }
        // LINEITEM's workload is strongly sequential.
        assert!(
            set.specs[li].run_count > 20.0,
            "run {}",
            set.specs[li].run_count
        );
    }

    #[test]
    fn lineitem_orders_overlap_high_temp_orders_low() {
        let catalog = Catalog::tpch_like(1.0);
        let workload = SqlWorkload::olap1_63(1);
        let set = estimate(&catalog, &workload, &EstimatorConfig::default());
        let li = catalog.expect_id("LINEITEM");
        let or = catalog.expect_id("ORDERS");
        let tmp = catalog.expect_id("TEMP_SPACE");
        let o_li_or = set.specs[or].overlaps[li];
        let o_or_tmp = set.specs[tmp].overlaps[or];
        assert!(
            o_li_or > 2.0 * o_or_tmp,
            "LINEITEM/ORDERS overlap {o_li_or} should exceed ORDERS/TEMP {o_or_tmp}"
        );
    }

    #[test]
    fn concurrency_raises_overlap_and_cuts_runs() {
        let catalog = Catalog::tpch_like(1.0);
        let cfg = EstimatorConfig::default();
        let w1 = estimate(&catalog, &SqlWorkload::olap1_63(1), &cfg);
        let w8 = estimate(&catalog, &SqlWorkload::olap8_63(1), &cfg);
        let li = catalog.expect_id("LINEITEM");
        let or = catalog.expect_id("ORDERS");
        assert!(w8.specs[li].run_count < w1.specs[li].run_count);
        assert!(w8.specs[li].overlaps[or] >= w1.specs[li].overlaps[or]);
        // Concurrency compresses the makespan → higher rates.
        assert!(w8.specs[li].total_rate() > w1.specs[li].total_rate());
    }

    #[test]
    fn oltp_objects_fully_overlapped_and_log_sequential() {
        let catalog = Catalog::tpcc_like(1.0);
        let workload = SqlWorkload::oltp();
        let set = estimate(&catalog, &workload, &EstimatorConfig::default());
        set.validate().unwrap();
        let stock = catalog.expect_id("STOCK");
        let cust = catalog.expect_id("CUSTOMER");
        let log = catalog.expect_id("XACTION_LOG");
        assert!(set.specs[stock].overlaps[cust] > 0.9);
        assert!(set.specs[stock].run_count < 2.0, "STOCK must look random");
        assert!(set.specs[log].write_rate > 0.0);
        assert!(set.specs[stock].write_rate > 0.0);
        // Untouched objects are idle.
        let hist = catalog.expect_id("HISTORY");
        assert_eq!(set.specs[hist].total_rate(), 0.0);
    }

    #[test]
    fn interval_overlap_math() {
        let a = [(0.0, 10.0)];
        let b = [(5.0, 15.0)];
        assert!((interval_overlap(&a, &b) - 0.5).abs() < 1e-12);
        assert!((interval_overlap(&b, &a) - 0.5).abs() < 1e-12);
        assert_eq!(interval_overlap(&a, &[]), 0.0);
        assert_eq!(interval_overlap(&[], &a), 0.0);
        let c = [(20.0, 30.0)];
        assert_eq!(interval_overlap(&a, &c), 0.0);
    }
}
