//! Rome-style workload descriptions (paper §5.1, Figure 5).

use wasla_simlib::impl_json_struct;

/// The I/O workload description `Wᵢ` of one database object.
///
/// Parameters (paper Figure 5):
///
/// * `read_size` / `write_size` — average request sizes in bytes
///   (`Bᵢᴿ`, `Bᵢᵂ`);
/// * `read_rate` / `write_rate` — average request rates in requests
///   per second (`λᵢᴿ`, `λᵢᵂ`);
/// * `run_count` — average number of requests in a sequential run
///   (`Qᵢ`); 1 means fully random, large values mean long scans;
/// * `overlaps` — `Oᵢ[j] ∈ \[0,1\]`, the temporal correlation of this
///   workload's requests with workload `j`'s (0 = never concurrent,
///   1 = always concurrent). `overlaps[i]` (self) is ignored.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Average read request size in bytes (`Bᵢᴿ`).
    pub read_size: f64,
    /// Average write request size in bytes (`Bᵢᵂ`).
    pub write_size: f64,
    /// Average read request rate in req/s (`λᵢᴿ`).
    pub read_rate: f64,
    /// Average write request rate in req/s (`λᵢᵂ`).
    pub write_rate: f64,
    /// Average sequential run length in requests (`Qᵢ ≥ 1`).
    pub run_count: f64,
    /// Temporal overlap with every other workload (`Oᵢ[j]`).
    pub overlaps: Vec<f64>,
}

impl_json_struct!(WorkloadSpec {
    read_size,
    write_size,
    read_rate,
    write_rate,
    run_count,
    overlaps,
});

impl WorkloadSpec {
    /// An idle workload (used for objects with no traced activity).
    pub fn idle(n_objects: usize) -> Self {
        WorkloadSpec {
            read_size: 8192.0,
            write_size: 8192.0,
            read_rate: 0.0,
            write_rate: 0.0,
            run_count: 1.0,
            overlaps: vec![0.0; n_objects],
        }
    }

    /// Total request rate `λᵢᴿ + λᵢᵂ` (req/s) — the "request rate" the
    /// paper's initial-layout heuristic (§4.2) orders objects by.
    pub fn total_rate(&self) -> f64 {
        self.read_rate + self.write_rate
    }

    /// Request-rate-weighted average request size `Bᵢ` (paper Figure 7
    /// uses this in the run-count transformation).
    pub fn mean_size(&self) -> f64 {
        let total = self.total_rate();
        if total <= 0.0 {
            // No traffic: any size works; use the read size.
            return self.read_size;
        }
        (self.read_rate * self.read_size + self.write_rate * self.write_size) / total
    }

    /// Aggregate bandwidth demand in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.read_rate * self.read_size + self.write_rate * self.write_size
    }

    /// Checks internal consistency (non-negative rates/sizes, run count
    /// ≥ 1, overlaps in \[0,1\]).
    pub fn validate(&self) -> Result<(), String> {
        if self.read_size < 0.0 || self.write_size < 0.0 {
            return Err("negative request size".into());
        }
        if self.read_rate < 0.0 || self.write_rate < 0.0 {
            return Err("negative request rate".into());
        }
        if self.run_count < 1.0 {
            return Err(format!("run count {} < 1", self.run_count));
        }
        for (j, &o) in self.overlaps.iter().enumerate() {
            if !(0.0..=1.0).contains(&o) {
                return Err(format!("overlap[{j}] = {o} outside [0,1]"));
            }
        }
        Ok(())
    }
}

/// The workload descriptions of all `N` objects, plus the object sizes
/// — the complete advisor input describing the database side.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSet {
    /// Object names, parallel to `specs`.
    pub names: Vec<String>,
    /// Object sizes in bytes (`sᵢ`), parallel to `specs`.
    pub sizes: Vec<u64>,
    /// Per-object workload descriptions.
    pub specs: Vec<WorkloadSpec>,
}

impl_json_struct!(WorkloadSet {
    names,
    sizes,
    specs
});

impl WorkloadSet {
    /// Number of objects `N`.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if there are no objects.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Validates shapes and each spec: `names`, `sizes`, `specs` and
    /// every overlap vector must all have length `N`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.specs.len();
        if self.names.len() != n || self.sizes.len() != n {
            return Err("names/sizes/specs length mismatch".into());
        }
        for (i, spec) in self.specs.iter().enumerate() {
            if spec.overlaps.len() != n {
                return Err(format!(
                    "object {i}: overlap vector has length {} (expected {n})",
                    spec.overlaps.len()
                ));
            }
            spec.validate().map_err(|e| format!("object {i}: {e}"))?;
        }
        Ok(())
    }

    /// Total size of all objects in bytes.
    pub fn total_size(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Indices sorted by decreasing total request rate (the order the
    /// paper's initial-layout heuristic processes objects in).
    pub fn by_decreasing_rate(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| {
            self.specs[b]
                .total_rate()
                .partial_cmp(&self.specs[a].total_rate())
                .expect("rates are finite")
                .then(a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            read_size: 8192.0,
            write_size: 4096.0,
            read_rate: 30.0,
            write_rate: 10.0,
            run_count: 4.0,
            overlaps: vec![0.0, 0.5],
        }
    }

    #[test]
    fn derived_quantities() {
        let s = spec();
        assert_eq!(s.total_rate(), 40.0);
        // (30*8192 + 10*4096) / 40 = 7168
        assert_eq!(s.mean_size(), 7168.0);
        assert_eq!(s.bandwidth(), 30.0 * 8192.0 + 10.0 * 4096.0);
    }

    #[test]
    fn idle_spec_is_valid_and_quiet() {
        let s = WorkloadSpec::idle(3);
        assert!(s.validate().is_ok());
        assert_eq!(s.total_rate(), 0.0);
        assert_eq!(s.mean_size(), 8192.0);
        assert_eq!(s.overlaps.len(), 3);
    }

    #[test]
    fn validation_catches_errors() {
        let mut s = spec();
        s.run_count = 0.5;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.overlaps[1] = 1.5;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.read_rate = -1.0;
        assert!(s.validate().is_err());
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn set_validation_checks_shapes() {
        let set = WorkloadSet {
            names: vec!["a".into(), "b".into()],
            sizes: vec![100, 200],
            specs: vec![
                WorkloadSpec {
                    overlaps: vec![0.0, 1.0],
                    ..spec()
                },
                WorkloadSpec {
                    overlaps: vec![1.0, 0.0],
                    ..spec()
                },
            ],
        };
        assert!(set.validate().is_ok());
        assert_eq!(set.total_size(), 300);

        let mut bad = set.clone();
        bad.specs[0].overlaps.pop();
        assert!(bad.validate().is_err());
        let mut bad = set;
        bad.sizes.pop();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rate_ordering() {
        let mut specs = Vec::new();
        for rate in [5.0, 50.0, 20.0] {
            let mut s = spec();
            s.read_rate = rate;
            s.write_rate = 0.0;
            s.overlaps = vec![0.0; 3];
            specs.push(s);
        }
        let set = WorkloadSet {
            names: vec!["a".into(), "b".into(), "c".into()],
            sizes: vec![1, 1, 1],
            specs,
        };
        assert_eq!(set.by_decreasing_rate(), vec![1, 2, 0]);
    }
}
