//! SQL workload definitions (paper Figure 10).
//!
//! * **OLAP1-21** — 21 of the 22 TPC-H-like queries (Q9 excluded for
//!   excessive runtime, as in the paper) in a random order, executed
//!   sequentially.
//! * **OLAP1-63** — each of the 21 queries three times, randomly
//!   permuted, concurrency 1.
//! * **OLAP8-63** — same 63-query mix at concurrency 8 (when a query
//!   finishes the next starts, keeping 8 active).
//! * **OLTP** — nine simulated terminals running New-Order
//!   transactions with no think or keying time.

use crate::query::{
    delivery_txn, new_order_txn, order_status_txn, payment_txn, stock_level_txn, tpch_queries,
    QueryTemplate,
};
use wasla_simlib::impl_json_struct;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_simlib::SimRng;

/// Configuration of an OLAP (query-sequence) workload.
#[derive(Clone, Debug, PartialEq)]
pub struct OlapConfig {
    /// Template indices composing the mix, in execution order.
    pub sequence: Vec<usize>,
    /// Number of queries active at once (closed loop).
    pub concurrency: usize,
}

impl_json_struct!(OlapConfig {
    sequence,
    concurrency
});

/// Configuration of an OLTP (terminal-driven) workload.
#[derive(Clone, Debug, PartialEq)]
pub struct OltpConfig {
    /// Number of simulated terminals (each runs transactions
    /// back-to-back, no think time).
    pub terminals: usize,
    /// Weighted transaction mix: (template index, weight). Terminals
    /// sample a template per transaction proportionally to weight.
    pub mix: Vec<(usize, f64)>,
}

impl_json_struct!(OltpConfig { terminals, mix });

/// The kind-specific part of a workload.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlWorkloadKind {
    /// A finite query sequence with a concurrency level.
    Olap(OlapConfig),
    /// An open-ended transaction workload.
    Oltp(OltpConfig),
}

impl ToJson for SqlWorkloadKind {
    fn to_json(&self) -> Json {
        match self {
            SqlWorkloadKind::Olap(c) => json::variant("Olap", c.to_json()),
            SqlWorkloadKind::Oltp(c) => json::variant("Oltp", c.to_json()),
        }
    }
}

impl FromJson for SqlWorkloadKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match json::untag(v)? {
            ("Olap", payload) => OlapConfig::from_json(payload).map(SqlWorkloadKind::Olap),
            ("Oltp", payload) => OltpConfig::from_json(payload).map(SqlWorkloadKind::Oltp),
            (other, _) => Err(JsonError::new(format!(
                "unknown SqlWorkloadKind variant: {other:?}"
            ))),
        }
    }
}

/// A complete SQL workload: named templates plus an execution plan.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlWorkload {
    /// Workload name ("OLAP1-63", ...).
    pub name: String,
    /// The query/transaction templates this workload draws from.
    pub templates: Vec<QueryTemplate>,
    /// Execution plan.
    pub kind: SqlWorkloadKind,
}

impl_json_struct!(SqlWorkload {
    name,
    templates,
    kind
});

/// Builds the randomly permuted mix of the 21 included TPC-H-like
/// queries, repeated `repeats` times (paper: the 63-query mixes use
/// each query three times, permuted).
fn permuted_mix(repeats: usize, seed: u64) -> Vec<usize> {
    let mut seq: Vec<usize> = (0..22)
        .filter(|&i| i != 8) // exclude Q9 (index 8), as the paper does
        .flat_map(|i| std::iter::repeat(i).take(repeats))
        .collect();
    let mut rng = SimRng::new(seed);
    rng.shuffle(&mut seq);
    seq
}

impl SqlWorkload {
    /// The OLAP1-21 workload: 21 queries, concurrency 1.
    pub fn olap1_21(seed: u64) -> Self {
        SqlWorkload {
            name: "OLAP1-21".into(),
            templates: tpch_queries(),
            kind: SqlWorkloadKind::Olap(OlapConfig {
                sequence: permuted_mix(1, seed),
                concurrency: 1,
            }),
        }
    }

    /// The OLAP1-63 workload: 63 queries (each of 21 thrice),
    /// concurrency 1.
    pub fn olap1_63(seed: u64) -> Self {
        SqlWorkload {
            name: "OLAP1-63".into(),
            templates: tpch_queries(),
            kind: SqlWorkloadKind::Olap(OlapConfig {
                sequence: permuted_mix(3, seed),
                concurrency: 1,
            }),
        }
    }

    /// The OLAP8-63 workload: the 63-query mix at concurrency 8.
    pub fn olap8_63(seed: u64) -> Self {
        SqlWorkload {
            name: "OLAP8-63".into(),
            templates: tpch_queries(),
            kind: SqlWorkloadKind::Olap(OlapConfig {
                sequence: permuted_mix(3, seed),
                concurrency: 8,
            }),
        }
    }

    /// The OLTP workload: nine terminals running New-Order
    /// transactions back-to-back (the transaction the paper's tpmC
    /// metric counts).
    pub fn oltp() -> Self {
        SqlWorkload {
            name: "OLTP".into(),
            templates: vec![new_order_txn()],
            kind: SqlWorkloadKind::Oltp(OltpConfig {
                terminals: 9,
                mix: vec![(0, 1.0)],
            }),
        }
    }

    /// The full TPC-C-like transaction mix (New-Order 45%, Payment
    /// 43%, Order-Status 4%, Delivery 4%, Stock-Level 4%) on nine
    /// terminals — beyond the paper's New-Order-only measurement, for
    /// richer OLTP scenarios.
    pub fn oltp_full_mix() -> Self {
        SqlWorkload {
            name: "OLTP-MIX".into(),
            templates: vec![
                new_order_txn(),
                payment_txn(),
                order_status_txn(),
                delivery_txn(),
                stock_level_txn(),
            ],
            kind: SqlWorkloadKind::Oltp(OltpConfig {
                terminals: 9,
                mix: vec![(0, 0.45), (1, 0.43), (2, 0.04), (3, 0.04), (4, 0.04)],
            }),
        }
    }

    /// Returns a copy with every access step's request size mapped
    /// through `f` — e.g. to model a DBMS issuing raw 8 KiB page I/O
    /// instead of OS-merged large requests.
    pub fn with_request_sizes(&self, f: impl Fn(u64) -> u64) -> SqlWorkload {
        use crate::query::{AccessKind, AccessStep};
        SqlWorkload {
            name: self.name.clone(),
            templates: self
                .templates
                .iter()
                .map(|t| QueryTemplate {
                    name: t.name.clone(),
                    phases: t
                        .phases
                        .iter()
                        .map(|phase| {
                            phase
                                .iter()
                                .map(|step| AccessStep {
                                    object: step.object.clone(),
                                    kind: match step.kind {
                                        AccessKind::SeqRead { fraction, request } => {
                                            AccessKind::SeqRead {
                                                fraction,
                                                request: f(request),
                                            }
                                        }
                                        AccessKind::SeqWrite { fraction, request } => {
                                            AccessKind::SeqWrite {
                                                fraction,
                                                request: f(request),
                                            }
                                        }
                                        AccessKind::RandRead { count, request } => {
                                            AccessKind::RandRead {
                                                count,
                                                request: f(request),
                                            }
                                        }
                                        AccessKind::RandWrite { count, request } => {
                                            AccessKind::RandWrite {
                                                count,
                                                request: f(request),
                                            }
                                        }
                                    },
                                })
                                .collect()
                        })
                        .collect(),
                })
                .collect(),
            kind: self.kind.clone(),
        }
    }

    /// Returns a copy with all template object names prefixed (for
    /// consolidated catalogs).
    pub fn with_prefix(&self, prefix: &str) -> SqlWorkload {
        SqlWorkload {
            name: self.name.clone(),
            templates: self
                .templates
                .iter()
                .map(|t| t.with_prefix(prefix))
                .collect(),
            kind: self.kind.clone(),
        }
    }

    /// Total number of queries for OLAP workloads; `None` for OLTP.
    pub fn query_count(&self) -> Option<usize> {
        match &self.kind {
            SqlWorkloadKind::Olap(c) => Some(c.sequence.len()),
            SqlWorkloadKind::Oltp(_) => None,
        }
    }

    /// The concurrency level (terminals for OLTP).
    pub fn concurrency(&self) -> usize {
        match &self.kind {
            SqlWorkloadKind::Olap(c) => c.concurrency,
            SqlWorkloadKind::Oltp(c) => c.terminals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_10_shapes() {
        let w = SqlWorkload::olap1_21(1);
        assert_eq!(w.query_count(), Some(21));
        assert_eq!(w.concurrency(), 1);

        let w = SqlWorkload::olap1_63(1);
        assert_eq!(w.query_count(), Some(63));
        assert_eq!(w.concurrency(), 1);

        let w = SqlWorkload::olap8_63(1);
        assert_eq!(w.query_count(), Some(63));
        assert_eq!(w.concurrency(), 8);

        let w = SqlWorkload::oltp();
        assert_eq!(w.query_count(), None);
        assert_eq!(w.concurrency(), 9);
    }

    #[test]
    fn q9_excluded_from_mixes() {
        let w = SqlWorkload::olap1_63(123);
        if let SqlWorkloadKind::Olap(c) = &w.kind {
            assert!(!c.sequence.contains(&8), "Q9 must be excluded");
            // Each of the other 21 queries appears exactly 3 times.
            for i in (0..22).filter(|&i| i != 8) {
                assert_eq!(c.sequence.iter().filter(|&&x| x == i).count(), 3);
            }
        } else {
            panic!("expected OLAP");
        }
    }

    #[test]
    fn mixes_are_seed_deterministic_but_permuted() {
        let a = SqlWorkload::olap1_63(5);
        let b = SqlWorkload::olap1_63(5);
        let c = SqlWorkload::olap1_63(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn olap8_same_queries_as_olap1() {
        // The paper stresses OLAP8-63 differs from OLAP1-63 *only* in
        // concurrency (AutoAdmin therefore can't tell them apart).
        let a = SqlWorkload::olap1_63(9);
        let b = SqlWorkload::olap8_63(9);
        let (SqlWorkloadKind::Olap(ca), SqlWorkloadKind::Olap(cb)) = (&a.kind, &b.kind) else {
            panic!()
        };
        assert_eq!(ca.sequence, cb.sequence);
        assert_ne!(ca.concurrency, cb.concurrency);
    }

    #[test]
    fn full_mix_weights_are_the_tpcc_percentages() {
        let w = SqlWorkload::oltp_full_mix();
        assert_eq!(w.templates.len(), 5);
        let SqlWorkloadKind::Oltp(c) = &w.kind else {
            panic!()
        };
        let total: f64 = c.mix.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // New-Order is the heaviest component.
        assert_eq!(c.mix[0], (0, 0.45));
        assert_eq!(w.templates[0].name, "NEW_ORDER");
    }

    #[test]
    fn estimator_handles_the_full_mix() {
        use crate::catalog::Catalog;
        use crate::estimator::{estimate, EstimatorConfig};
        let catalog = Catalog::tpcc_like(1.0);
        let set = estimate(
            &catalog,
            &SqlWorkload::oltp_full_mix(),
            &EstimatorConfig::default(),
        );
        set.validate().unwrap();
        // Payment touches WAREHOUSE/HISTORY, which New-Order does not.
        let hist = catalog.expect_id("HISTORY");
        assert!(set.specs[hist].write_rate > 0.0);
        // Stock-Level adds heavy ORDER_LINE reads.
        let ol = catalog.expect_id("ORDER_LINE");
        assert!(set.specs[ol].read_rate > 0.0);
    }

    #[test]
    fn prefix_propagates_to_templates() {
        let w = SqlWorkload::oltp().with_prefix("C_");
        assert!(w.templates[0].objects().iter().all(|o| o.starts_with("C_")));
    }
}
