//! Database object catalogs.
//!
//! The paper's Figure 9 inventories two databases: a scale-factor-5
//! TPC-H database (9.4 GB: 8 tables, 11 indexes, 1 temp space) and a
//! scale-factor-90 TPC-C database (9.1 GB: 9 tables, 10 indexes, 1
//! log). The catalogs below reproduce those inventories with realistic
//! relative sizes. A `scale` parameter shrinks everything uniformly so
//! tests can run on tiny instances.

use crate::object::{DbObject, ObjectId, ObjectKind};

const MIB: u64 = 1024 * 1024;

/// A set of database objects from one (or several consolidated)
/// databases.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Catalog {
    objects: Vec<DbObject>,
}

wasla_simlib::impl_json_struct!(Catalog { objects });

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            objects: Vec::new(),
        }
    }

    /// Builds a catalog from objects. Names must be unique.
    pub fn from_objects(objects: Vec<DbObject>) -> Self {
        let mut names: Vec<&str> = objects.iter().map(|o| o.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), objects.len(), "duplicate object names");
        Catalog { objects }
    }

    /// Adds an object, returning its id.
    pub fn add(&mut self, object: DbObject) -> ObjectId {
        assert!(
            self.id_of(&object.name).is_none(),
            "duplicate object name {}",
            object.name
        );
        self.objects.push(object);
        self.objects.len() - 1
    }

    /// All objects in id order.
    pub fn objects(&self) -> &[DbObject] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The object with the given id.
    pub fn object(&self, id: ObjectId) -> &DbObject {
        &self.objects[id]
    }

    /// Finds an object id by name.
    pub fn id_of(&self, name: &str) -> Option<ObjectId> {
        self.objects.iter().position(|o| o.name == name)
    }

    /// Like [`Catalog::id_of`] but panics with a useful message.
    pub fn expect_id(&self, name: &str) -> ObjectId {
        self.id_of(name)
            .unwrap_or_else(|| panic!("no object named {name} in catalog"))
    }

    /// Total size of all objects in bytes.
    pub fn total_size(&self) -> u64 {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Object sizes in id order.
    pub fn sizes(&self) -> Vec<u64> {
        self.objects.iter().map(|o| o.size).collect()
    }

    /// Object names in id order.
    pub fn names(&self) -> Vec<String> {
        self.objects.iter().map(|o| o.name.clone()).collect()
    }

    /// Merges another catalog into this one, prefixing its object names
    /// (used for the §6.3 consolidation scenario). Returns the id
    /// offset at which the other catalog's objects begin.
    pub fn consolidate(&mut self, prefix: &str, other: &Catalog) -> usize {
        let offset = self.objects.len();
        for obj in &other.objects {
            self.objects.push(DbObject {
                name: format!("{prefix}{}", obj.name),
                kind: obj.kind,
                size: obj.size,
            });
        }
        offset
    }

    /// The paper's TPC-H-like catalog (Figure 9 row 1): 8 tables, 11
    /// indexes and a temporary tablespace totalling ≈ 9.4 GB at
    /// `scale = 1.0`.
    pub fn tpch_like(scale: f64) -> Self {
        let sz = |mib: u64| ((mib * MIB) as f64 * scale).max(1.0) as u64;
        use ObjectKind::*;
        Catalog::from_objects(vec![
            DbObject::new("LINEITEM", Table, sz(4300)),
            DbObject::new("ORDERS", Table, sz(980)),
            DbObject::new("PARTSUPP", Table, sz(680)),
            DbObject::new("PART", Table, sz(180)),
            DbObject::new("CUSTOMER", Table, sz(140)),
            DbObject::new("SUPPLIER", Table, sz(10)),
            DbObject::new("NATION", Table, sz(1)),
            DbObject::new("REGION", Table, sz(1)),
            DbObject::new("I_L_ORDERKEY", Index, sz(760)),
            DbObject::new("I_L_SUPPK_PARTK", Index, sz(820)),
            DbObject::new("ORDERS_PKEY", Index, sz(360)),
            DbObject::new("PARTSUPP_PKEY", Index, sz(310)),
            DbObject::new("PART_PKEY", Index, sz(40)),
            DbObject::new("CUSTOMER_PKEY", Index, sz(30)),
            DbObject::new("SUPPLIER_PKEY", Index, sz(3)),
            DbObject::new("I_C_NATIONKEY", Index, sz(25)),
            DbObject::new("I_O_CUSTKEY", Index, sz(330)),
            DbObject::new("I_S_NATIONKEY", Index, sz(2)),
            DbObject::new("I_PS_SUPPKEY", Index, sz(290)),
            DbObject::new("TEMP_SPACE", TempSpace, sz(360)),
        ])
    }

    /// The paper's TPC-C-like catalog (Figure 9 row 2): 9 tables, 10
    /// indexes and a transaction log totalling ≈ 9.1 GB at
    /// `scale = 1.0`.
    pub fn tpcc_like(scale: f64) -> Self {
        let sz = |mib: u64| ((mib * MIB) as f64 * scale).max(1.0) as u64;
        use ObjectKind::*;
        Catalog::from_objects(vec![
            DbObject::new("STOCK", Table, sz(2900)),
            DbObject::new("ORDER_LINE", Table, sz(1950)),
            DbObject::new("CUSTOMER", Table, sz(1550)),
            DbObject::new("HISTORY", Table, sz(210)),
            DbObject::new("ORDERS", Table, sz(150)),
            DbObject::new("NEW_ORDER", Table, sz(40)),
            DbObject::new("ITEM", Table, sz(90)),
            DbObject::new("DISTRICT", Table, sz(2)),
            DbObject::new("WAREHOUSE", Table, sz(1)),
            DbObject::new("PK_STOCK", Index, sz(610)),
            DbObject::new("PK_CUSTOMER", Index, sz(260)),
            DbObject::new("I_CUSTOMER", Index, sz(310)),
            DbObject::new("PK_ORDER_LINE", Index, sz(700)),
            DbObject::new("PK_ORDERS", Index, sz(90)),
            DbObject::new("I_ORDERS", Index, sz(110)),
            DbObject::new("PK_NEW_ORDER", Index, sz(25)),
            DbObject::new("PK_ITEM", Index, sz(6)),
            DbObject::new("PK_DISTRICT", Index, sz(1)),
            DbObject::new("PK_WAREHOUSE", Index, sz(1)),
            DbObject::new("XACTION_LOG", Log, sz(310)),
        ])
    }

    /// The §6.3 consolidation catalog: TPC-H and TPC-C objects on one
    /// server (40 objects). TPC-C names get a `C_` prefix to stay
    /// unique (both databases have CUSTOMER and ORDERS).
    pub fn consolidation(scale: f64) -> Self {
        let mut cat = Catalog::tpch_like(scale);
        cat.consolidate("C_", &Catalog::tpcc_like(scale));
        cat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_matches_figure_9() {
        let cat = Catalog::tpch_like(1.0);
        assert_eq!(cat.len(), 20);
        let tables = cat
            .objects()
            .iter()
            .filter(|o| o.kind == ObjectKind::Table)
            .count();
        let indexes = cat
            .objects()
            .iter()
            .filter(|o| o.kind == ObjectKind::Index)
            .count();
        let temps = cat
            .objects()
            .iter()
            .filter(|o| o.kind == ObjectKind::TempSpace)
            .count();
        assert_eq!((tables, indexes, temps), (8, 11, 1));
        // Total ≈ 9.4 GB (paper: 9.4 GB).
        let gb = cat.total_size() as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((9.2..9.6).contains(&gb), "total {gb} GB");
    }

    #[test]
    fn tpcc_matches_figure_9() {
        let cat = Catalog::tpcc_like(1.0);
        assert_eq!(cat.len(), 20);
        let tables = cat
            .objects()
            .iter()
            .filter(|o| o.kind == ObjectKind::Table)
            .count();
        let indexes = cat
            .objects()
            .iter()
            .filter(|o| o.kind == ObjectKind::Index)
            .count();
        let logs = cat
            .objects()
            .iter()
            .filter(|o| o.kind == ObjectKind::Log)
            .count();
        assert_eq!((tables, indexes, logs), (9, 10, 1));
        let gb = cat.total_size() as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((8.9..9.3).contains(&gb), "total {gb} GB");
    }

    #[test]
    fn consolidation_has_40_unique_objects() {
        let cat = Catalog::consolidation(1.0);
        assert_eq!(cat.len(), 40);
        assert!(cat.id_of("LINEITEM").is_some());
        assert!(cat.id_of("C_STOCK").is_some());
        assert!(cat.id_of("C_CUSTOMER").is_some());
        assert!(cat.id_of("CUSTOMER").is_some());
    }

    #[test]
    fn scale_shrinks_sizes() {
        let full = Catalog::tpch_like(1.0);
        let tiny = Catalog::tpch_like(0.01);
        assert_eq!(full.len(), tiny.len());
        assert!(tiny.total_size() < full.total_size() / 50);
    }

    #[test]
    fn lookup_by_name() {
        let cat = Catalog::tpch_like(0.1);
        let id = cat.expect_id("LINEITEM");
        assert_eq!(cat.object(id).name, "LINEITEM");
        assert!(cat.id_of("NOPE").is_none());
        // LINEITEM is the largest object.
        assert!(cat.object(id).size > cat.object(cat.expect_id("ORDERS")).size);
    }

    #[test]
    #[should_panic(expected = "duplicate object name")]
    fn duplicate_names_rejected() {
        let mut cat = Catalog::new();
        cat.add(DbObject::new("X", ObjectKind::Table, 1));
        cat.add(DbObject::new("X", ObjectKind::Table, 1));
    }
}
