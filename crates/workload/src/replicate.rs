//! Workload replication for optimizer-scaling experiments.
//!
//! The paper's Figure 19 scales the advisor's input by taking the 40
//! workload descriptions from the consolidation scenario and
//! replicating them to get 80-, 120- and 160-object problems
//! (2x/3x/4x-consolidation). Replicas are independent databases, so
//! cross-replica overlaps are zero while within-replica overlap
//! structure is preserved.

use crate::spec::{WorkloadSet, WorkloadSpec};

/// Replicates a workload set `k` times (k ≥ 1). Object `i` of replica
/// `r` keeps its spec; its overlap vector is the original vector within
/// the replica and zero across replicas. Names get a `#r` suffix for
/// replicas beyond the first.
pub fn replicate_problem(set: &WorkloadSet, k: usize) -> WorkloadSet {
    assert!(k >= 1, "replication factor must be >= 1");
    let n = set.len();
    let mut names = Vec::with_capacity(n * k);
    let mut sizes = Vec::with_capacity(n * k);
    let mut specs = Vec::with_capacity(n * k);
    for r in 0..k {
        for i in 0..n {
            names.push(if r == 0 {
                set.names[i].clone()
            } else {
                format!("{}#{r}", set.names[i])
            });
            sizes.push(set.sizes[i]);
            let mut overlaps = vec![0.0; n * k];
            overlaps[r * n..(r + 1) * n].copy_from_slice(&set.specs[i].overlaps);
            specs.push(WorkloadSpec {
                overlaps,
                ..set.specs[i].clone()
            });
        }
    }
    WorkloadSet {
        names,
        sizes,
        specs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadSet {
        WorkloadSet {
            names: vec!["A".into(), "B".into()],
            sizes: vec![100, 200],
            specs: vec![
                WorkloadSpec {
                    read_size: 8192.0,
                    write_size: 8192.0,
                    read_rate: 10.0,
                    write_rate: 0.0,
                    run_count: 8.0,
                    overlaps: vec![0.0, 0.7],
                },
                WorkloadSpec {
                    read_size: 8192.0,
                    write_size: 8192.0,
                    read_rate: 5.0,
                    write_rate: 1.0,
                    run_count: 1.0,
                    overlaps: vec![0.7, 0.0],
                },
            ],
        }
    }

    #[test]
    fn identity_replication() {
        let set = base();
        let rep = replicate_problem(&set, 1);
        assert_eq!(rep, set);
    }

    #[test]
    fn triples_objects_and_keeps_block_structure() {
        let set = base();
        let rep = replicate_problem(&set, 3);
        assert_eq!(rep.len(), 6);
        rep.validate().unwrap();
        assert_eq!(rep.names[2], "A#1");
        assert_eq!(rep.names[5], "B#2");
        // Within-replica overlap preserved.
        assert_eq!(rep.specs[2].overlaps[3], 0.7);
        // Cross-replica overlap zero.
        assert_eq!(rep.specs[0].overlaps[3], 0.0);
        assert_eq!(rep.specs[4].overlaps[1], 0.0);
        // Rates and sizes preserved.
        assert_eq!(rep.specs[4].total_rate(), set.specs[0].total_rate());
        assert_eq!(rep.sizes[5], 200);
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_rejected() {
        replicate_problem(&base(), 0);
    }
}
