//! Database objects.

use wasla_simlib::{impl_json_struct, impl_json_unit_enum};

/// Index of an object within its [`crate::Catalog`].
pub type ObjectId = usize;

/// What kind of database object this is. The advisor itself is
/// indifferent (paper §3: "the exact nature of the database objects is
/// not important"), but the heuristic baselines of §6.4
/// (isolate-tables, isolate-tables-and-indexes) need the distinction,
/// and the buffer-pool model treats indexes as hotter than tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A base table.
    Table,
    /// A secondary or primary-key index.
    Index,
    /// A write-ahead/transaction log.
    Log,
    /// Tablespace for temporary (sort/join spill) data.
    TempSpace,
}

impl_json_unit_enum!(ObjectKind {
    Table,
    Index,
    Log,
    TempSpace
});

/// One database object to be laid out.
#[derive(Clone, Debug, PartialEq)]
pub struct DbObject {
    /// Human-readable name ("LINEITEM", "I_L_ORDERKEY", ...).
    pub name: String,
    /// Object kind.
    pub kind: ObjectKind,
    /// Size in bytes (the paper's `sᵢ`).
    pub size: u64,
}

impl_json_struct!(DbObject { name, kind, size });

impl DbObject {
    /// Creates an object.
    pub fn new(name: impl Into<String>, kind: ObjectKind, size: u64) -> Self {
        DbObject {
            name: name.into(),
            kind,
            size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let o = DbObject::new("LINEITEM", ObjectKind::Table, 4096);
        assert_eq!(o.name, "LINEITEM");
        assert_eq!(o.kind, ObjectKind::Table);
        assert_eq!(o.size, 4096);
    }
}
