//! Property tests for workload descriptions, centered on the in-tree
//! JSON codec: every serializable workload type must survive a
//! serialize → parse round trip unchanged, through both the compact
//! and the pretty writer.

use wasla_simlib::json;
use wasla_simlib::proptest::prelude::*;
use wasla_workload::{
    AccessKind, Catalog, DbObject, ObjectKind, OlapConfig, OltpConfig, SqlWorkloadKind,
    WorkloadSpec,
};

fn kind_strategy() -> Strategy<ObjectKind> {
    one_of(vec![
        Just(ObjectKind::Table).into_strategy(),
        Just(ObjectKind::Index).into_strategy(),
        Just(ObjectKind::Log).into_strategy(),
        Just(ObjectKind::TempSpace).into_strategy(),
    ])
}

fn access_strategy() -> Strategy<AccessKind> {
    let frac = 0.0f64..1.0;
    let count = 1.0f64..1e6;
    let request = 512u64..1_048_576;
    one_of(vec![
        (frac.clone(), request.clone())
            .into_strategy()
            .prop_map(|(fraction, request)| AccessKind::SeqRead { fraction, request }),
        (count.clone(), request.clone())
            .into_strategy()
            .prop_map(|(count, request)| AccessKind::RandRead { count, request }),
        (frac, request.clone())
            .into_strategy()
            .prop_map(|(fraction, request)| AccessKind::SeqWrite { fraction, request }),
        (count, request)
            .into_strategy()
            .prop_map(|(count, request)| AccessKind::RandWrite { count, request }),
    ])
}

fn spec_strategy() -> Strategy<WorkloadSpec> {
    (
        512.0f64..1e6,
        512.0f64..1e6,
        0.0f64..1e4,
        0.0f64..1e4,
        1.0f64..1e3,
        proptest::collection::vec(0.0f64..1.0, 1..8),
    )
        .into_strategy()
        .prop_map(
            |(read_size, write_size, read_rate, write_rate, run_count, overlaps)| WorkloadSpec {
                read_size,
                write_size,
                read_rate,
                write_rate,
                run_count,
                overlaps,
            },
        )
}

proptest! {
    /// `DbObject` round-trips through compact and pretty JSON.
    #[test]
    fn db_object_json_round_trip(
        kind in kind_strategy(),
        size in 1u64..1_000_000_000_000,
        name_tag in 0u32..1000,
    ) {
        let obj = DbObject::new(format!("obj-{name_tag}"), kind, size);
        let compact: DbObject = json::from_str(&json::to_string(&obj)).unwrap();
        prop_assert_eq!(&compact, &obj);
        let pretty: DbObject = json::from_str(&json::to_string_pretty(&obj)).unwrap();
        prop_assert_eq!(&pretty, &obj);
    }

    /// `AccessKind`'s externally-tagged encoding round-trips for all
    /// four variants.
    #[test]
    fn access_kind_json_round_trip(kind in access_strategy()) {
        let text = json::to_string(&kind);
        let back: AccessKind = json::from_str(&text).unwrap();
        prop_assert_eq!(back, kind);
    }

    /// `WorkloadSpec` round-trips, and its floats survive exactly (the
    /// writer must emit enough digits for bit-exact re-parsing).
    #[test]
    fn workload_spec_json_round_trip(spec in spec_strategy()) {
        let back: WorkloadSpec = json::from_str(&json::to_string(&spec)).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// A whole catalog of objects round-trips with order preserved.
    #[test]
    fn catalog_json_round_trip(
        kinds in proptest::collection::vec(kind_strategy(), 1..20),
        sizes in proptest::collection::vec(1u64..1_000_000_000, 1..20),
    ) {
        let n = kinds.len().min(sizes.len());
        let catalog = Catalog::from_objects(
            (0..n)
                .map(|i| DbObject::new(format!("o{i}"), kinds[i], sizes[i]))
                .collect(),
        );
        let back: Catalog = json::from_str(&json::to_string(&catalog)).unwrap();
        prop_assert_eq!(back, catalog);
    }

    /// `SqlWorkloadKind` keeps its variant and payload through JSON.
    #[test]
    fn sql_workload_kind_json_round_trip(
        olap in any::<bool>(),
        a in 1usize..64,
        b in 1usize..64,
        weight in 0.0f64..1.0,
    ) {
        let kind = if olap {
            SqlWorkloadKind::Olap(OlapConfig {
                sequence: (0..a).collect(),
                concurrency: b,
            })
        } else {
            SqlWorkloadKind::Oltp(OltpConfig {
                terminals: a,
                mix: vec![(b, weight)],
            })
        };
        let back: SqlWorkloadKind = json::from_str(&json::to_string(&kind)).unwrap();
        prop_assert_eq!(back, kind);
    }

    /// The JSON text itself is canonical: encoding is a pure function
    /// of the value, so decode → encode reproduces the exact bytes.
    #[test]
    fn workload_spec_json_is_canonical(spec in spec_strategy()) {
        let text = json::to_string(&spec);
        let back: WorkloadSpec = json::from_str(&text).unwrap();
        prop_assert_eq!(json::to_string(&back), text);
    }
}
