//! Property tests for placement address translation.

use wasla_exec::Placement;
use wasla_simlib::proptest::prelude::*;

const GIB: u64 = 1 << 30;
const STRIPE: u64 = 256 * 1024;

/// Strategy: a layout row over `m` targets that sums to 1 — either a
/// regular even spread over a random subset, or arbitrary fractions.
fn row_strategy(m: usize) -> Strategy<Vec<f64>> {
    let regular = proptest::collection::vec(any::<bool>(), m).prop_filter_map(
        "at least one target",
        move |mask| {
            let k = mask.iter().filter(|&&b| b).count();
            if k == 0 {
                return None;
            }
            Some(
                mask.iter()
                    .map(|&b| if b { 1.0 / k as f64 } else { 0.0 })
                    .collect::<Vec<f64>>(),
            )
        },
    );
    let fractional =
        proptest::collection::vec(0.0f64..1.0, m).prop_filter_map("positive total", move |raw| {
            let total: f64 = raw.iter().sum();
            if total < 1e-6 {
                return None;
            }
            Some(raw.iter().map(|v| v / total).collect::<Vec<f64>>())
        });
    prop_oneof![regular, fractional]
}

proptest! {
    /// Whole-object translation covers every byte exactly once, within
    /// target bounds, for both striped and chunked mappings.
    #[test]
    fn translation_partitions_object(
        m in 1usize..6,
        size_kib in 1u64..50_000,
        (rows, probe) in (1usize..6).prop_flat_map(|m| {
            (proptest::collection::vec(row_strategy(m), 1..4), 0.0f64..1.0)
        }).prop_map(|(r, p)| (r, p)),
    ) {
        let _ = m; // m regenerated inside flat_map; rows define the real m
        let m = rows[0].len();
        prop_assume!(rows.iter().all(|r| r.len() == m));
        let size = size_kib * 1024;
        let sizes = vec![size; rows.len()];
        let capacities = vec![64 * GIB; m];
        let placement = Placement::build(&rows, &sizes, &capacities, STRIPE)
            .expect("ample capacity");
        for obj in 0..rows.len() {
            // Whole-object cover.
            let mut out = Vec::new();
            placement.translate(obj, 0, size, &mut out);
            let total: u64 = out.iter().map(|(_, _, l)| l).sum();
            prop_assert_eq!(total, size);
            for &(t, _, _) in &out {
                prop_assert!(t < m);
            }
            // Random sub-range cover.
            let start = ((probe * size as f64) as u64).min(size - 1);
            let len = (size - start).clamp(1, 123_456);
            out.clear();
            placement.translate(obj, start, len, &mut out);
            let total: u64 = out.iter().map(|(_, _, l)| l).sum();
            prop_assert_eq!(total, len);
        }
    }

    /// Two objects never overlap on a target: translating both whole
    /// objects yields disjoint target extents.
    #[test]
    fn objects_get_disjoint_extents(
        size_a_kib in 1u64..10_000,
        size_b_kib in 1u64..10_000,
    ) {
        let rows = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        let sizes = vec![size_a_kib * 1024, size_b_kib * 1024];
        let placement =
            Placement::build(&rows, &sizes, &[64 * GIB, 64 * GIB], STRIPE).expect("fits");
        let mut a = Vec::new();
        let mut b = Vec::new();
        placement.translate(0, 0, sizes[0], &mut a);
        placement.translate(1, 0, sizes[1], &mut b);
        for &(ta, oa, la) in &a {
            for &(tb, ob, lb) in &b {
                if ta == tb {
                    let overlap = oa < ob + lb && ob < oa + la;
                    prop_assert!(!overlap, "extents overlap on target {ta}");
                }
            }
        }
    }
}
