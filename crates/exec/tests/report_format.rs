//! Golden test pinning the `RunReport` JSON format to the exact bytes
//! the seed repository produced with serde derives: field order is
//! declaration order, `SimTime` is a bare number of seconds,
//! `OnlineStats` writes its empty min/max as `null`, tuples are
//! arrays, and a `None` trace is `null`.

use wasla_exec::report::{ObjectIoStats, RunReport};
use wasla_simlib::json;
use wasla_simlib::{OnlineStats, SimTime};
use wasla_storage::TargetStats;

fn tiny_report() -> RunReport {
    let mut latency = OnlineStats::new();
    latency.record(2.0);
    latency.record(4.0);
    RunReport {
        elapsed: SimTime::from_secs(12.5),
        target_stats: vec![TargetStats {
            name: "t0".to_string(),
            requests: 3,
            bytes: 24576,
            response: OnlineStats::new(),
            max_member_utilization: 0.75,
            mean_member_utilization: 0.5,
        }],
        target_utilization: vec![0.75],
        objects: vec![ObjectIoStats {
            logical_reads: 10,
            logical_writes: 2,
            physical_reads: 4,
            physical_writes: 2,
            bytes_read: 32768,
            bytes_written: 16384,
        }],
        queries_completed: 7,
        oltp_txns: 0,
        tpm: 0.0,
        storage_requests: 6,
        query_latency: latency,
        txn_latency: OnlineStats::new(),
        txn_by_template: vec![("NewOrder".to_string(), 0)],
        trace: None,
    }
}

#[test]
fn run_report_compact_bytes_are_pinned() {
    let expected = concat!(
        r#"{"elapsed":12.5,"#,
        r#""target_stats":[{"name":"t0","requests":3,"bytes":24576,"#,
        r#""response":{"count":0,"mean":0.0,"m2":0.0,"min":null,"max":null,"sum":0.0},"#,
        r#""max_member_utilization":0.75,"mean_member_utilization":0.5}],"#,
        r#""target_utilization":[0.75],"#,
        r#""objects":[{"logical_reads":10,"logical_writes":2,"physical_reads":4,"#,
        r#""physical_writes":2,"bytes_read":32768,"bytes_written":16384}],"#,
        r#""queries_completed":7,"oltp_txns":0,"tpm":0.0,"storage_requests":6,"#,
        r#""query_latency":{"count":2,"mean":3.0,"m2":2.0,"min":2.0,"max":4.0,"sum":6.0},"#,
        r#""txn_latency":{"count":0,"mean":0.0,"m2":0.0,"min":null,"max":null,"sum":0.0},"#,
        r#""txn_by_template":[["NewOrder",0]],"#,
        r#""trace":null}"#,
    );
    assert_eq!(json::to_string(&tiny_report()), expected);
}

#[test]
fn run_report_round_trips_through_both_writers() {
    let report = tiny_report();
    let compact: RunReport = json::from_str(&json::to_string(&report)).unwrap();
    assert_eq!(json::to_string(&compact), json::to_string(&report));
    let pretty: RunReport = json::from_str(&json::to_string_pretty(&report)).unwrap();
    assert_eq!(json::to_string(&pretty), json::to_string(&report));
    // Decoded null min/max restore the empty-accumulator infinities.
    assert_eq!(compact.txn_latency.min(), None);
    assert_eq!(compact.query_latency.max(), Some(4.0));
}
