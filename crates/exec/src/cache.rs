//! Coarse buffer-pool model.
//!
//! The paper ran PostgreSQL with a 2 GB shared buffer (1.5 GB for
//! OLTP). The first-order effect of that cache on the *storage*
//! workload is: hot, small objects (indexes, dimension tables) are
//! mostly served from memory, while scans of objects much larger than
//! the pool stream past it. We model exactly that, at the object
//! granularity:
//!
//! * Objects are ranked by heat density (logical requests per byte,
//!   with indexes boosted for their internal reuse).
//! * Pool capacity is granted greedily in that order, with one
//!   exception: a scan-dominated object only receives a grant if it
//!   fits *entirely* in the remaining pool — partially caching a scan
//!   is useless (the scan of the uncached tail evicts its own head,
//!   the classic LRU sequential-flooding behaviour that real buffer
//!   managers fend off with ring buffers).
//! * A fully granted object hits with high residency probability; a
//!   partially granted one hits in proportion for random access only.
//! * Log pages are written once and never re-read: no grant.
//!
//! The model is deliberately simple: the advisor never sees it; it only
//! shapes the physical request streams the same way a real cache would.

use wasla_simlib::impl_json_struct;
use wasla_workload::{Catalog, ObjectKind};

/// Per-object cache behaviour produced by the pool model.
#[derive(Clone, Debug, Default)]
pub struct ObjectCachePolicy {
    /// Probability a random logical read is served from memory.
    pub random_hit: f64,
    /// Probability a sequential-scan logical read is served from
    /// memory (≈ residency for fully cached objects, else 0).
    pub scan_hit: f64,
}

/// The buffer-pool model: per-object hit probabilities.
#[derive(Clone, Debug)]
pub struct BufferPool {
    policies: Vec<ObjectCachePolicy>,
    pool_bytes: u64,
}

impl_json_struct!(ObjectCachePolicy {
    random_hit,
    scan_hit
});
impl_json_struct!(BufferPool {
    policies,
    pool_bytes
});

/// Residency probability for objects that fit entirely in their grant.
const RESIDENT_HIT: f64 = 0.92;

impl BufferPool {
    /// Builds the pool model.
    ///
    /// * `catalog` — the objects;
    /// * `random_heat` — relative random (point) logical request counts;
    /// * `seq_heat` — relative sequential-scan logical request counts;
    /// * `pool_bytes` — buffer pool capacity.
    pub fn new(catalog: &Catalog, random_heat: &[f64], seq_heat: &[f64], pool_bytes: u64) -> Self {
        assert_eq!(random_heat.len(), catalog.len());
        assert_eq!(seq_heat.len(), catalog.len());
        let n = catalog.len();
        let density: Vec<f64> = (0..n)
            .map(|i| {
                let size = catalog.object(i).size.max(1) as f64;
                let boost = match catalog.object(i).kind {
                    ObjectKind::Index => 4.0,
                    ObjectKind::Log => 0.0, // written once, never re-read
                    _ => 1.0,
                };
                (random_heat[i] + seq_heat[i]) * boost / size
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| density[b].partial_cmp(&density[a]).expect("finite"));

        let mut remaining = pool_bytes;
        let mut policies = vec![ObjectCachePolicy::default(); n];
        for &i in &order {
            if density[i] <= 0.0 || remaining == 0 {
                continue;
            }
            let size = catalog.object(i).size;
            let scan_dominated = seq_heat[i] > 10.0 * random_heat[i];
            if scan_dominated && size > remaining {
                continue; // partial scan caching is useless
            }
            let granted = size.min(remaining);
            remaining -= granted;
            let frac = granted as f64 / size.max(1) as f64;
            if frac >= 1.0 - 1e-9 {
                policies[i] = ObjectCachePolicy {
                    random_hit: RESIDENT_HIT,
                    scan_hit: RESIDENT_HIT,
                };
            } else {
                policies[i] = ObjectCachePolicy {
                    random_hit: frac * RESIDENT_HIT,
                    scan_hit: 0.0,
                };
            }
        }
        BufferPool {
            policies,
            pool_bytes,
        }
    }

    /// A pass-through pool (no caching), for experiments that want raw
    /// storage behaviour.
    pub fn disabled(n_objects: usize) -> Self {
        BufferPool {
            policies: vec![ObjectCachePolicy::default(); n_objects],
            pool_bytes: 0,
        }
    }

    /// The policy for one object.
    pub fn policy(&self, object: usize) -> &ObjectCachePolicy {
        &self.policies[object]
    }

    /// Configured pool size in bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.pool_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn hot_small_indexes_cached_big_scanned_tables_not() {
        let catalog = Catalog::tpch_like(1.0);
        let n = catalog.len();
        let mut random = vec![100.0; n];
        let mut seq = vec![0.0; n];
        // LINEITEM: scan-dominated, far larger than the pool.
        seq[catalog.expect_id("LINEITEM")] = 1_000_000.0;
        random[catalog.expect_id("LINEITEM")] = 10.0;
        random[catalog.expect_id("ORDERS_PKEY")] = 50_000.0;
        let pool = BufferPool::new(&catalog, &random, &seq, 2 * GIB);
        let li = pool.policy(catalog.expect_id("LINEITEM"));
        let pk = pool.policy(catalog.expect_id("ORDERS_PKEY"));
        // LINEITEM (4.2 GB) cannot be resident in 2 GB: scans miss.
        assert_eq!(li.scan_hit, 0.0);
        // ORDERS_PKEY (360 MB index) should be fully resident.
        assert!(pk.random_hit > 0.9, "pkey hit {}", pk.random_hit);
        assert!(pk.scan_hit > 0.9);
    }

    #[test]
    fn partially_cached_random_object_gets_partial_hits() {
        let catalog = Catalog::tpcc_like(1.0);
        let n = catalog.len();
        let mut random = vec![0.0; n];
        // STOCK (2.9 GB) random-hot with a 1.5 GB pool: partial hits.
        random[catalog.expect_id("STOCK")] = 1_000_000.0;
        let pool = BufferPool::new(&catalog, &random, &vec![0.0; n], 3 * GIB / 2);
        let stock = pool.policy(catalog.expect_id("STOCK"));
        assert!(stock.random_hit > 0.2 && stock.random_hit < 0.8);
        assert_eq!(stock.scan_hit, 0.0);
    }

    #[test]
    fn zero_heat_objects_get_no_grant() {
        let catalog = Catalog::tpch_like(0.01);
        let zeros = vec![0.0; catalog.len()];
        let pool = BufferPool::new(&catalog, &zeros, &zeros, GIB);
        for i in 0..catalog.len() {
            assert_eq!(pool.policy(i).random_hit, 0.0);
        }
    }

    #[test]
    fn disabled_pool_never_hits() {
        let pool = BufferPool::disabled(5);
        for i in 0..5 {
            assert_eq!(pool.policy(i).random_hit, 0.0);
            assert_eq!(pool.policy(i).scan_hit, 0.0);
        }
        assert_eq!(pool.pool_bytes(), 0);
    }

    #[test]
    fn bigger_pool_covers_more() {
        let catalog = Catalog::tpch_like(1.0);
        let heat = vec![1000.0; catalog.len()];
        let zeros = vec![0.0; catalog.len()];
        let small = BufferPool::new(&catalog, &heat, &zeros, GIB / 4);
        let large = BufferPool::new(&catalog, &heat, &zeros, 8 * GIB);
        let covered = |p: &BufferPool| {
            (0..catalog.len())
                .filter(|&i| p.policy(i).random_hit > 0.5)
                .count()
        };
        assert!(covered(&large) > covered(&small));
    }

    #[test]
    fn log_never_cached() {
        let catalog = Catalog::tpcc_like(1.0);
        let heat = vec![1_000_000.0; catalog.len()];
        let pool = BufferPool::new(&catalog, &heat, &heat, 64 * GIB);
        let log = pool.policy(catalog.expect_id("XACTION_LOG"));
        assert_eq!(log.random_hit, 0.0);
        assert_eq!(log.scan_hit, 0.0);
    }
}
