//! The closed-loop execution engine.
//!
//! Drives one or more SQL workloads against a storage system under a
//! placement, advancing simulated time until the run's stop condition:
//!
//! * OLAP workloads finish when their query sequence completes; the
//!   concurrency level is maintained closed-loop (paper Figure 10).
//! * OLTP workloads run terminals back-to-back; standalone OLTP runs
//!   stop at `max_time` or a transaction cap, while consolidated runs
//!   (paper §6.3) stop when the co-running OLAP workload finishes,
//!   exactly like the paper's measurement procedure.

use crate::cache::BufferPool;
use crate::placement::Placement;
use crate::report::{ObjectIoStats, RunReport};
use wasla_simlib::fault::{self, DeviceFault};
use wasla_simlib::{SimRng, SimTime};
use wasla_storage::{BlockTraceRecord, IoKind, StorageSystem, TargetIo, Trace};
use wasla_trace::oplog::{OpLog, OpRecord};
use wasla_workload::sql::SqlWorkloadKind;
use wasla_workload::{AccessKind, Catalog, SqlWorkload};

/// Completion tags are `((record + 1) << SHIFT) | step_slot` while an
/// op-log is being captured, and the bare step slot otherwise. 20 bits
/// of slot space is far beyond any realistic concurrent-step count, and
/// the `+ 1` keeps "no op-log record" distinguishable as all-zero high
/// bits.
const OPLOG_TAG_SHIFT: u32 = 20;
const OPLOG_TAG_MASK: u64 = (1 << OPLOG_TAG_SHIFT) - 1;

/// Engine tunables.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// RNG seed for request generation.
    pub seed: u64,
    /// Catalog scale factor; OLAP probe counts in templates are
    /// specified at scale 1.0 and shrink with the data. (OLTP per-
    /// transaction counts are absolute and not scaled.)
    pub scale: f64,
    /// Buffer-pool size in bytes (0 disables caching).
    pub pool_bytes: u64,
    /// Outstanding request depth for sequential streams (prefetch).
    pub scan_depth: usize,
    /// Outstanding request depth for random streams.
    pub rand_depth: usize,
    /// Hard stop for runs with no OLAP workload (seconds).
    pub max_time: Option<f64>,
    /// Stop OLTP-only runs after this many transactions.
    pub txn_cap: Option<u64>,
    /// Warm-up window excluded from the tpm computation (seconds; the
    /// paper excludes 1600 s).
    pub oltp_warmup: f64,
    /// Capture a logical block trace for workload fitting.
    pub capture_trace: bool,
    /// Capture a streaming op-log (issue *and* completion timestamps
    /// per physical request) for replay and streamed ingestion.
    pub capture_oplog: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 42,
            scale: 1.0,
            pool_bytes: 2 * 1024 * 1024 * 1024,
            // OS/LVM readahead keeps a few requests in flight for a
            // sequential scan (a ~512 KiB readahead window).
            scan_depth: 2,
            rand_depth: 1,
            max_time: None,
            txn_cap: None,
            oltp_warmup: 0.0,
            capture_trace: false,
            capture_oplog: false,
        }
    }
}

/// Typed failures of the execution engine's slot bookkeeping.
///
/// These replace the old `expect(...)` panics on the step/query slab
/// accessors: a storage completion carrying a bogus tag (corrupted or
/// fault-injected) now surfaces as an error the caller can handle
/// instead of aborting the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A completion or phase transition referenced a step slot with no
    /// live step.
    DeadStep {
        /// The offending slot index.
        slot: usize,
    },
    /// A step or phase transition referenced a query slot with no live
    /// query.
    DeadQuery {
        /// The offending slot index.
        slot: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DeadStep { slot } => {
                write!(f, "engine error: no live step in slot {slot}")
            }
            EngineError::DeadQuery { slot } => {
                write!(f, "engine error: no live query in slot {slot}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// An injected device fault observed during a run. Reported
/// out-of-band from [`RunReport`], whose JSON shape the golden result
/// files pin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeviceEvent {
    /// The target's member devices ran with service times scaled by
    /// `factor`.
    Degraded {
        /// Target index.
        target: usize,
        /// Service-time multiplier applied.
        factor: f64,
    },
    /// The target effectively failed (pathological latency factor).
    Failed {
        /// Target index.
        target: usize,
    },
}

impl DeviceEvent {
    /// The affected target.
    pub fn target(&self) -> usize {
        match *self {
            DeviceEvent::Degraded { target, .. } | DeviceEvent::Failed { target } => target,
        }
    }
}

/// A run's report plus the injected device faults that shaped it.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The ordinary run report.
    pub report: RunReport,
    /// Device faults applied during the run, in target order.
    pub device_events: Vec<DeviceEvent>,
    /// The captured op-log, when [`RunConfig::capture_oplog`] was set.
    /// Reported out-of-band from [`RunReport`], whose JSON shape the
    /// golden result files pin.
    pub oplog: Option<OpLog>,
}

/// Access pattern state of a running step.
enum Pattern {
    /// Sequential walk from `next`, wrapping within `[0, span)`.
    Seq { next: u64, span: u64 },
    /// Uniform random aligned offsets within `[0, span)`.
    Rand { span: u64 },
}

/// A running access step.
struct StepRun {
    query: usize,
    object: usize,
    pattern: Pattern,
    request: u64,
    remaining: u64,
    outstanding: u32,
    is_write: bool,
    sequential: bool,
    depth: usize,
    scan_hit: f64,
    random_hit: f64,
}

impl StepRun {
    fn alive(&self) -> bool {
        self.remaining > 0 || self.outstanding > 0
    }
}

/// A running query (or transaction) instance.
struct QueryRun {
    workload: usize,
    template: usize,
    phase: usize,
    live_steps: usize,
    started: SimTime,
}

/// Per-workload progress.
enum WorkloadProgress {
    Olap {
        pos: usize,
        active: usize,
        completed: usize,
    },
    Oltp {
        txns: u64,
        txns_after_warmup: u64,
        by_template: Vec<u64>,
    },
}

/// The execution engine. Construct once per run.
pub struct Engine<'a> {
    catalog: &'a Catalog,
    workloads: &'a [SqlWorkload],
    placement: &'a Placement,
    storage: &'a mut StorageSystem,
    config: RunConfig,
    rng: SimRng,
    steps: Vec<Option<StepRun>>,
    free_steps: Vec<usize>,
    queries: Vec<Option<QueryRun>>,
    free_queries: Vec<usize>,
    progress: Vec<WorkloadProgress>,
    object_stats: Vec<ObjectIoStats>,
    trace: Option<Trace>,
    oplog: Option<OpLog>,
    /// Outstanding storage parts per op-log record; a record's
    /// completion timestamp is stamped when its count drains to zero.
    oplog_open: Vec<u32>,
    translate_buf: Vec<(usize, u64, u64)>,
    has_olap: bool,
    queries_completed: usize,
    query_latency: wasla_simlib::OnlineStats,
    txn_latency: wasla_simlib::OnlineStats,
}

impl<'a> Engine<'a> {
    /// Creates an engine over the given catalog, workloads, placement
    /// and storage system.
    pub fn new(
        catalog: &'a Catalog,
        workloads: &'a [SqlWorkload],
        placement: &'a Placement,
        storage: &'a mut StorageSystem,
        config: RunConfig,
    ) -> Self {
        assert!(!workloads.is_empty(), "no workloads");
        let has_olap = workloads
            .iter()
            .any(|w| matches!(w.kind, SqlWorkloadKind::Olap(_)));
        let progress = workloads
            .iter()
            .map(|w| match &w.kind {
                SqlWorkloadKind::Olap(_) => WorkloadProgress::Olap {
                    pos: 0,
                    active: 0,
                    completed: 0,
                },
                SqlWorkloadKind::Oltp(_) => WorkloadProgress::Oltp {
                    txns: 0,
                    txns_after_warmup: 0,
                    by_template: vec![0; w.templates.len()],
                },
            })
            .collect();
        let trace = config.capture_trace.then(Trace::new);
        let oplog = config.capture_oplog.then(OpLog::new);
        let rng = SimRng::new(config.seed);
        Engine {
            catalog,
            workloads,
            placement,
            storage,
            config,
            rng,
            steps: Vec::new(),
            free_steps: Vec::new(),
            queries: Vec::new(),
            free_queries: Vec::new(),
            progress,
            object_stats: vec![ObjectIoStats::default(); catalog.len()],
            trace,
            oplog,
            oplog_open: Vec::new(),
            translate_buf: Vec::new(),
            has_olap,
            queries_completed: 0,
            query_latency: wasla_simlib::OnlineStats::new(),
            txn_latency: wasla_simlib::OnlineStats::new(),
        }
    }

    /// Estimates relative logical request heat per object across all
    /// workloads (random, sequential), used to size the buffer-pool
    /// model.
    fn heat(&self) -> (Vec<f64>, Vec<f64>) {
        let mut random = vec![0.0f64; self.catalog.len()];
        let mut seq = vec![0.0f64; self.catalog.len()];
        for w in self.workloads {
            let weight = match &w.kind {
                // OLTP templates run continuously; weight them up so
                // their small per-txn footprints register.
                SqlWorkloadKind::Oltp(_) => 50_000.0,
                SqlWorkloadKind::Olap(_) => 1.0,
            };
            let counts: Box<dyn Iterator<Item = usize>> = match &w.kind {
                SqlWorkloadKind::Olap(c) => Box::new(c.sequence.iter().copied()),
                SqlWorkloadKind::Oltp(c) => Box::new(c.mix.iter().map(|&(t, _)| t)),
            };
            for t in counts {
                for step in w.templates[t].phases.iter().flatten() {
                    let obj = self.catalog.expect_id(&step.object);
                    let size = self.catalog.object(obj).size as f64;
                    match step.kind {
                        AccessKind::SeqRead { fraction, request }
                        | AccessKind::SeqWrite { fraction, request } => {
                            seq[obj] += (fraction * size / request as f64).max(1.0) * weight;
                        }
                        AccessKind::RandRead { count, request: _ }
                        | AccessKind::RandWrite { count, request: _ } => {
                            random[obj] += (count * self.config.scale).max(1.0) * weight;
                        }
                    }
                }
            }
        }
        (random, seq)
    }

    /// Runs the workload(s) to completion and reports.
    pub fn run(self) -> Result<RunReport, EngineError> {
        self.run_observed().map(|o| o.report)
    }

    /// Like [`Engine::run`], but also applies the active fault plan's
    /// device faults (degraded or failed targets) before the run and
    /// reports them alongside the [`RunReport`]. With no plan (the
    /// default) the event list is empty and the run is bit-identical
    /// to [`Engine::run`].
    pub fn run_observed(mut self) -> Result<RunOutcome, EngineError> {
        let mut device_events = Vec::new();
        if let Some(plan) = fault::plan() {
            for target in 0..self.storage.target_count() {
                let key = fault::device_key(self.config.seed, target as u64);
                let Some(f) = plan.device_fault(key) else {
                    continue;
                };
                self.storage.degrade_target(target, f.latency_factor());
                device_events.push(match f {
                    DeviceFault::Degraded { latency_factor } => DeviceEvent::Degraded {
                        target,
                        factor: latency_factor,
                    },
                    DeviceFault::Failed => DeviceEvent::Failed { target },
                });
            }
        }
        let pool = if self.config.pool_bytes > 0 {
            let (random, seq) = self.heat();
            BufferPool::new(self.catalog, &random, &seq, self.config.pool_bytes)
        } else {
            BufferPool::disabled(self.catalog.len())
        };
        // Kick off initial queries/terminals.
        let now = SimTime::ZERO;
        for widx in 0..self.workloads.len() {
            match &self.workloads[widx].kind {
                SqlWorkloadKind::Olap(c) => {
                    let launch = c.concurrency.min(c.sequence.len());
                    for _ in 0..launch {
                        self.start_next_olap_query(widx, now, &pool)?;
                    }
                }
                SqlWorkloadKind::Oltp(c) => {
                    for _ in 0..c.terminals {
                        let template = self.sample_txn_template(widx);
                        self.start_query(widx, template, now, &pool)?;
                    }
                }
            }
        }

        let mut last = now;
        loop {
            if self.stop_condition_met() {
                break;
            }
            let Some(t) = self.storage.next_event_time() else {
                // Nothing in flight: either all done or stalled.
                break;
            };
            if let Some(cap) = self.config.max_time {
                if !self.has_olap && t.as_secs() > cap {
                    last = SimTime::from_secs(cap);
                    break;
                }
            }
            let completions = self.storage.advance_until(t);
            last = t;
            for c in completions {
                let sidx = self.note_oplog_completion(c.tag, c.finished);
                self.on_part_complete(sidx, c.finished, &pool)?;
            }
        }

        let oplog = self.oplog.take();
        Ok(RunOutcome {
            report: self.build_report(last),
            device_events,
            oplog,
        })
    }

    fn stop_condition_met(&self) -> bool {
        if self.has_olap {
            // Consolidated and OLAP-only runs end when every OLAP
            // workload has finished its sequence.
            self.workloads
                .iter()
                .zip(&self.progress)
                .all(|(w, p)| match (&w.kind, p) {
                    (SqlWorkloadKind::Olap(c), WorkloadProgress::Olap { completed, .. }) => {
                        *completed >= c.sequence.len()
                    }
                    _ => true,
                })
        } else if let Some(cap) = self.config.txn_cap {
            self.progress.iter().all(|p| match p {
                WorkloadProgress::Oltp { txns, .. } => *txns >= cap,
                _ => true,
            })
        } else {
            false // rely on max_time
        }
    }

    /// Samples a transaction template from an OLTP workload's weighted
    /// mix.
    fn sample_txn_template(&mut self, widx: usize) -> usize {
        let SqlWorkloadKind::Oltp(c) = &self.workloads[widx].kind else {
            unreachable!()
        };
        if c.mix.len() == 1 {
            return c.mix[0].0;
        }
        let weights: Vec<f64> = c.mix.iter().map(|&(_, w)| w).collect();
        c.mix[self.rng.weighted_index(&weights)].0
    }

    fn start_next_olap_query(
        &mut self,
        widx: usize,
        now: SimTime,
        pool: &BufferPool,
    ) -> Result<(), EngineError> {
        let SqlWorkloadKind::Olap(c) = &self.workloads[widx].kind else {
            unreachable!()
        };
        let sequence = &c.sequence;
        let (pos_now, has_more) = match &mut self.progress[widx] {
            WorkloadProgress::Olap { pos, active, .. } => {
                if *pos < sequence.len() {
                    let p = *pos;
                    *pos += 1;
                    *active += 1;
                    (p, true)
                } else {
                    (0, false)
                }
            }
            _ => unreachable!(),
        };
        if has_more {
            let template = sequence[pos_now];
            self.start_query(widx, template, now, pool)?;
        }
        Ok(())
    }

    fn alloc_query(&mut self, q: QueryRun) -> usize {
        if let Some(i) = self.free_queries.pop() {
            self.queries[i] = Some(q);
            i
        } else {
            self.queries.push(Some(q));
            self.queries.len() - 1
        }
    }

    fn alloc_step(&mut self, s: StepRun) -> usize {
        if let Some(i) = self.free_steps.pop() {
            self.steps[i] = Some(s);
            i
        } else {
            self.steps.push(Some(s));
            self.steps.len() - 1
        }
    }

    fn start_query(
        &mut self,
        widx: usize,
        template: usize,
        now: SimTime,
        pool: &BufferPool,
    ) -> Result<(), EngineError> {
        let qidx = self.alloc_query(QueryRun {
            workload: widx,
            template,
            phase: 0,
            live_steps: 0,
            started: now,
        });
        self.enter_phase(qidx, now, pool)
    }

    /// Starts the current phase's steps; if every phase completes
    /// instantly (all cached), advances through phases and finishes the
    /// query synchronously.
    fn enter_phase(
        &mut self,
        qidx: usize,
        now: SimTime,
        pool: &BufferPool,
    ) -> Result<(), EngineError> {
        loop {
            let (widx, template, phase) = {
                let q = self
                    .queries
                    .get(qidx)
                    .and_then(Option::as_ref)
                    .ok_or(EngineError::DeadQuery { slot: qidx })?;
                (q.workload, q.template, q.phase)
            };
            let phases = &self.workloads[widx].templates[template].phases;
            if phase >= phases.len() {
                return self.finish_query(qidx, now, pool);
            }
            let n_steps = phases[phase].len();
            let mut live = 0usize;
            for s in 0..n_steps {
                let step_spec = self.workloads[widx].templates[template].phases[phase][s].clone();
                let is_oltp = matches!(self.workloads[widx].kind, SqlWorkloadKind::Oltp(_));
                if let Some(sidx) = self.spawn_step(qidx, &step_spec, is_oltp, now, pool)? {
                    if self.steps[sidx].as_ref().expect("just spawned").alive() {
                        live += 1;
                    } else {
                        self.release_step(sidx);
                    }
                }
            }
            let q = self
                .queries
                .get_mut(qidx)
                .and_then(Option::as_mut)
                .ok_or(EngineError::DeadQuery { slot: qidx })?;
            q.live_steps = live;
            if live > 0 {
                return Ok(());
            }
            q.phase += 1;
        }
    }

    /// Creates a step and issues its initial window. Returns `None`
    /// for steps that generate no requests at all.
    fn spawn_step(
        &mut self,
        qidx: usize,
        spec: &wasla_workload::AccessStep,
        is_oltp: bool,
        now: SimTime,
        pool: &BufferPool,
    ) -> Result<Option<usize>, EngineError> {
        let object = self.catalog.expect_id(&spec.object);
        let size = self.catalog.object(object).size;
        let (request, count, is_write, sequential) = match spec.kind {
            AccessKind::SeqRead { fraction, request } => {
                let req = request.min(size.max(1)).max(512);
                let n = ((fraction * size as f64) / req as f64).ceil().max(1.0) as u64;
                (req, n, false, true)
            }
            AccessKind::SeqWrite { fraction, request } => {
                let req = request.min(size.max(1)).max(512);
                let n = ((fraction * size as f64) / req as f64).ceil().max(1.0) as u64;
                (req, n, true, true)
            }
            AccessKind::RandRead { count, request } => {
                let req = request.min(size.max(1)).max(512);
                let expected = if is_oltp {
                    count
                } else {
                    count * self.config.scale
                };
                (req, self.stochastic_round(expected), false, false)
            }
            AccessKind::RandWrite { count, request } => {
                let req = request.min(size.max(1)).max(512);
                let expected = if is_oltp {
                    count
                } else {
                    count * self.config.scale
                };
                (req, self.stochastic_round(expected), true, false)
            }
        };
        if count == 0 {
            return Ok(None);
        }
        let span = (size - size % request).max(request);
        let pattern = if sequential {
            let slots = span / request;
            let start = self.rng.below(slots) * request;
            Pattern::Seq { next: start, span }
        } else {
            Pattern::Rand { span }
        };
        let policy = pool.policy(object);
        let depth = if sequential {
            self.config.scan_depth
        } else {
            self.config.rand_depth
        };
        let sidx = self.alloc_step(StepRun {
            query: qidx,
            object,
            pattern,
            request,
            remaining: count,
            outstanding: 0,
            is_write,
            sequential,
            depth: depth.max(1),
            scan_hit: policy.scan_hit,
            random_hit: policy.random_hit,
        });
        self.issue(sidx, now)?;
        Ok(Some(sidx))
    }

    fn stochastic_round(&mut self, x: f64) -> u64 {
        let base = x.floor();
        let frac = x - base;
        base as u64 + u64::from(self.rng.chance(frac))
    }

    /// Issues logical requests for a step until its outstanding window
    /// is full or it runs out of requests. Cache hits complete
    /// synchronously and never reach storage.
    fn issue(&mut self, sidx: usize, now: SimTime) -> Result<(), EngineError> {
        loop {
            let step = self
                .steps
                .get_mut(sidx)
                .and_then(Option::as_mut)
                .ok_or(EngineError::DeadStep { slot: sidx })?;
            if step.remaining == 0 || step.outstanding as usize >= step.depth {
                return Ok(());
            }
            step.remaining -= 1;
            // Generate the next logical request.
            let offset = match &mut step.pattern {
                Pattern::Seq { next, span } => {
                    let o = *next;
                    *next = (*next + step.request) % *span;
                    o
                }
                Pattern::Rand { span } => {
                    let slots = *span / step.request;
                    self.rng.below(slots.max(1)) * step.request
                }
            };
            let len = step.request;
            let object = step.object;
            let is_write = step.is_write;
            let hit_prob = if is_write {
                0.0
            } else if step.sequential {
                step.scan_hit
            } else {
                step.random_hit
            };
            let stats = &mut self.object_stats[object];
            if is_write {
                stats.logical_writes += 1;
            } else {
                stats.logical_reads += 1;
            }
            if hit_prob > 0.0 && self.rng.chance(hit_prob) {
                continue; // served from the buffer pool
            }
            if let Some(trace) = &mut self.trace {
                trace.push(BlockTraceRecord {
                    time: now,
                    stream: object as u32,
                    kind: if is_write {
                        IoKind::Write
                    } else {
                        IoKind::Read
                    },
                    offset,
                    len,
                });
            }
            let stats = &mut self.object_stats[object];
            if is_write {
                stats.physical_writes += 1;
                stats.bytes_written += len;
            } else {
                stats.physical_reads += 1;
                stats.bytes_read += len;
            }
            self.translate_buf.clear();
            self.placement
                .translate(object, offset, len, &mut self.translate_buf);
            let parts = self.translate_buf.len() as u32;
            let step = self
                .steps
                .get_mut(sidx)
                .and_then(Option::as_mut)
                .ok_or(EngineError::DeadStep { slot: sidx })?;
            step.outstanding += parts;
            let kind = if is_write {
                IoKind::Write
            } else {
                IoKind::Read
            };
            // With op-log capture on, the completion tag carries the
            // record index so `run_observed` can stamp completion
            // times; otherwise it is the bare step slot, bit-identical
            // to the capture-off behaviour.
            let tag = if let Some(log) = &mut self.oplog {
                debug_assert!((sidx as u64) <= OPLOG_TAG_MASK, "step slab overflow");
                let rid = log.len() as u64;
                log.push(OpRecord {
                    kind,
                    stream: object as u32,
                    offset,
                    len,
                    issue: now,
                    complete: now,
                });
                self.oplog_open.push(parts);
                ((rid + 1) << OPLOG_TAG_SHIFT) | sidx as u64
            } else {
                sidx as u64
            };
            // Move the buffer out to appease the borrow checker, then
            // restore it (no allocation in steady state).
            let buf = std::mem::take(&mut self.translate_buf);
            for &(target, toff, tlen) in &buf {
                self.storage.submit(
                    now,
                    target,
                    TargetIo {
                        kind,
                        offset: toff,
                        len: tlen,
                        stream: object as u32,
                    },
                    tag,
                );
            }
            self.translate_buf = buf;
        }
    }

    /// Decodes a completion tag: drains the part count of the op-log
    /// record it names (stamping the record's completion time when the
    /// last part lands) and returns the step slot.
    fn note_oplog_completion(&mut self, tag: u64, finished: SimTime) -> usize {
        let rid_plus_one = tag >> OPLOG_TAG_SHIFT;
        if rid_plus_one == 0 {
            return tag as usize;
        }
        let rid = (rid_plus_one - 1) as usize;
        if let Some(open) = self.oplog_open.get_mut(rid) {
            *open = open.saturating_sub(1);
            if *open == 0 {
                if let Some(log) = &mut self.oplog {
                    log.set_complete(rid, finished);
                }
            }
        }
        (tag & OPLOG_TAG_MASK) as usize
    }

    fn release_step(&mut self, sidx: usize) {
        self.steps[sidx] = None;
        self.free_steps.push(sidx);
    }

    fn on_part_complete(
        &mut self,
        sidx: usize,
        now: SimTime,
        pool: &BufferPool,
    ) -> Result<(), EngineError> {
        {
            let step = self
                .steps
                .get_mut(sidx)
                .and_then(Option::as_mut)
                .ok_or(EngineError::DeadStep { slot: sidx })?;
            debug_assert!(step.outstanding > 0);
            step.outstanding -= 1;
        }
        self.issue(sidx, now)?;
        let (alive, qidx) = {
            let step = self
                .steps
                .get(sidx)
                .and_then(Option::as_ref)
                .ok_or(EngineError::DeadStep { slot: sidx })?;
            (step.alive(), step.query)
        };
        if alive {
            return Ok(());
        }
        self.release_step(sidx);
        let q = self
            .queries
            .get_mut(qidx)
            .and_then(Option::as_mut)
            .ok_or(EngineError::DeadQuery { slot: qidx })?;
        q.live_steps -= 1;
        if q.live_steps == 0 {
            q.phase += 1;
            self.enter_phase(qidx, now, pool)?;
        }
        Ok(())
    }

    fn finish_query(
        &mut self,
        qidx: usize,
        now: SimTime,
        pool: &BufferPool,
    ) -> Result<(), EngineError> {
        let q = self
            .queries
            .get(qidx)
            .and_then(Option::as_ref)
            .ok_or(EngineError::DeadQuery { slot: qidx })?;
        let widx = q.workload;
        let tidx = q.template;
        let latency = (now - q.started).as_secs();
        self.queries[qidx] = None;
        self.free_queries.push(qidx);
        self.queries_completed += 1;
        match &mut self.progress[widx] {
            WorkloadProgress::Olap {
                active, completed, ..
            } => {
                self.query_latency.record(latency);
                *active -= 1;
                *completed += 1;
                self.start_next_olap_query(widx, now, pool)?;
            }
            WorkloadProgress::Oltp {
                txns,
                txns_after_warmup,
                by_template,
            } => {
                self.txn_latency.record(latency);
                *txns += 1;
                by_template[tidx] += 1;
                if now.as_secs() >= self.config.oltp_warmup {
                    *txns_after_warmup += 1;
                }
                let under_cap = self.config.txn_cap.map_or(true, |cap| *txns < cap);
                let under_time = self.config.max_time.map_or(true, |cap| now.as_secs() < cap);
                if under_cap && under_time {
                    let template = self.sample_txn_template(widx);
                    self.start_query(widx, template, now, pool)?;
                }
            }
        }
        Ok(())
    }

    fn build_report(self, last: SimTime) -> RunReport {
        let elapsed = if last > SimTime::ZERO {
            last
        } else {
            SimTime::from_secs(1e-9)
        };
        let target_stats = self.storage.target_stats(elapsed);
        let target_utilization = target_stats
            .iter()
            .map(|t| t.max_member_utilization)
            .collect();
        let storage_requests = self
            .storage
            .device_stats()
            .iter()
            .map(|d| d.requests())
            .sum();
        let mut txn_by_template = Vec::new();
        let (oltp_txns, tpm) = self
            .progress
            .iter()
            .zip(self.workloads)
            .find_map(|(p, w)| match p {
                WorkloadProgress::Oltp {
                    txns,
                    txns_after_warmup,
                    by_template,
                } => {
                    let window = (elapsed.as_secs() - self.config.oltp_warmup).max(1e-9);
                    txn_by_template = w
                        .templates
                        .iter()
                        .zip(by_template)
                        .map(|(t, &c)| (t.name.clone(), c))
                        .collect();
                    Some((*txns, *txns_after_warmup as f64 * 60.0 / window))
                }
                _ => None,
            })
            .unwrap_or((0, 0.0));
        RunReport {
            elapsed,
            target_stats,
            target_utilization,
            objects: self.object_stats,
            queries_completed: self.queries_completed,
            oltp_txns,
            tpm,
            storage_requests,
            query_latency: self.query_latency,
            txn_latency: self.txn_latency,
            txn_by_template,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{see_rows, DEFAULT_STRIPE};
    use wasla_storage::{DeviceSpec, DiskParams, TargetConfig, GIB};
    use wasla_workload::SqlWorkload;

    fn four_disks() -> StorageSystem {
        StorageSystem::new(
            (0..4)
                .map(|i| {
                    TargetConfig::single(
                        format!("d{i}"),
                        DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
                    )
                })
                .collect(),
            7,
        )
    }

    fn run_olap(scale: f64, workload: SqlWorkload, config: RunConfig) -> RunReport {
        let catalog = Catalog::tpch_like(scale);
        let mut storage = four_disks();
        let rows = see_rows(catalog.len(), 4);
        let placement = Placement::build(
            &rows,
            &catalog.sizes(),
            &storage.capacities(),
            DEFAULT_STRIPE,
        )
        .unwrap();
        let workloads = [workload];
        Engine::new(&catalog, &workloads, &placement, &mut storage, config)
            .run()
            .expect("run succeeds")
    }

    #[test]
    fn olap_run_completes_all_queries() {
        let report = run_olap(
            0.02,
            SqlWorkload::olap1_21(3),
            RunConfig {
                scale: 0.02,
                pool_bytes: 0,
                ..RunConfig::default()
            },
        );
        assert_eq!(report.queries_completed, 21);
        assert!(report.elapsed.as_secs() > 0.0);
        assert!(report.storage_requests > 1000);
        // Per-query latency statistics cover every completed query.
        assert_eq!(report.query_latency.count(), 21);
        assert!(report.query_latency.mean() > 0.0);
        assert_eq!(report.txn_latency.count(), 0);
        assert!(report.max_utilization() > 0.0);
        // LINEITEM must be the most-requested object.
        let catalog = Catalog::tpch_like(0.02);
        let li = catalog.expect_id("LINEITEM");
        let li_reqs = report.objects[li].physical();
        for (i, o) in report.objects.iter().enumerate() {
            if i != li {
                assert!(li_reqs >= o.physical(), "{} out-requests LINEITEM", i);
            }
        }
    }

    #[test]
    fn cache_reduces_physical_io() {
        let scale = 0.02;
        let cached = run_olap(
            scale,
            SqlWorkload::olap1_21(3),
            RunConfig {
                scale,
                pool_bytes: 64 * 1024 * 1024,
                ..RunConfig::default()
            },
        );
        let raw = run_olap(
            scale,
            SqlWorkload::olap1_21(3),
            RunConfig {
                scale,
                pool_bytes: 0,
                ..RunConfig::default()
            },
        );
        assert!(cached.storage_requests < raw.storage_requests);
        assert!(cached.elapsed < raw.elapsed);
    }

    #[test]
    fn concurrency_shortens_elapsed_time() {
        let scale = 0.02;
        let cfg = RunConfig {
            scale,
            pool_bytes: 0,
            ..RunConfig::default()
        };
        let c1 = run_olap(scale, SqlWorkload::olap1_63(5), cfg.clone());
        let c8 = run_olap(scale, SqlWorkload::olap8_63(5), cfg);
        assert_eq!(c1.queries_completed, 63);
        assert_eq!(c8.queries_completed, 63);
        // Concurrency overlaps I/O across targets: wall-clock drops even
        // though per-disk efficiency suffers.
        assert!(
            c8.elapsed < c1.elapsed,
            "c8 {:?} c1 {:?}",
            c8.elapsed,
            c1.elapsed
        );
    }

    #[test]
    fn oltp_run_reports_throughput() {
        let scale = 0.05;
        let catalog = Catalog::tpcc_like(scale);
        let mut storage = four_disks();
        let rows = see_rows(catalog.len(), 4);
        let placement = Placement::build(
            &rows,
            &catalog.sizes(),
            &storage.capacities(),
            DEFAULT_STRIPE,
        )
        .unwrap();
        let workloads = [SqlWorkload::oltp()];
        let report = Engine::new(
            &catalog,
            &workloads,
            &placement,
            &mut storage,
            RunConfig {
                scale,
                max_time: Some(60.0),
                oltp_warmup: 10.0,
                pool_bytes: 256 * 1024 * 1024,
                ..RunConfig::default()
            },
        )
        .run()
        .expect("run succeeds");
        assert!(report.oltp_txns > 10, "txns {}", report.oltp_txns);
        assert!(report.tpm > 0.0);
        assert_eq!(report.txn_latency.count(), report.oltp_txns);
        assert!(report.txn_latency.mean() > 0.0);
        assert!(report.elapsed.as_secs() <= 61.0);
    }

    #[test]
    fn full_tpcc_mix_runs_all_transaction_types() {
        let scale = 0.05;
        let catalog = Catalog::tpcc_like(scale);
        let mut storage = four_disks();
        let rows = see_rows(catalog.len(), 4);
        let placement = Placement::build(
            &rows,
            &catalog.sizes(),
            &storage.capacities(),
            DEFAULT_STRIPE,
        )
        .unwrap();
        let workloads = [SqlWorkload::oltp_full_mix()];
        let report = Engine::new(
            &catalog,
            &workloads,
            &placement,
            &mut storage,
            RunConfig {
                scale,
                max_time: Some(120.0),
                pool_bytes: 256 * 1024 * 1024,
                ..RunConfig::default()
            },
        )
        .run()
        .expect("run succeeds");
        assert!(report.oltp_txns > 100);
        // All five transaction types executed, with New-Order and
        // Payment dominating (45/43/4/4/4 mix).
        assert_eq!(report.txn_by_template.len(), 5);
        let count = |name: &str| {
            report
                .txn_by_template
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        let no = count("NEW_ORDER");
        let pay = count("PAYMENT");
        let os = count("ORDER_STATUS");
        assert!(no > 0 && pay > 0 && os > 0, "{:?}", report.txn_by_template);
        assert!(no > 3 * os, "NEW_ORDER {no} vs ORDER_STATUS {os}");
        let total: u64 = report.txn_by_template.iter().map(|(_, c)| c).sum();
        assert_eq!(total, report.oltp_txns);
    }

    #[test]
    fn trace_capture_produces_records() {
        let report = run_olap(
            0.01,
            SqlWorkload::olap1_21(3),
            RunConfig {
                scale: 0.01,
                pool_bytes: 0,
                capture_trace: true,
                ..RunConfig::default()
            },
        );
        let trace = report.trace.expect("trace requested");
        assert!(trace.len() > 100);
        // Trace must mention LINEITEM's stream.
        let catalog = Catalog::tpch_like(0.01);
        let li = catalog.expect_id("LINEITEM") as u32;
        assert!(trace.stream_ids().contains(&li));
    }

    #[test]
    fn malformed_completion_tag_is_a_typed_error() {
        // A completion whose tag references no live step (corrupted or
        // fault-injected) must surface as EngineError, not a panic.
        let catalog = Catalog::tpch_like(0.01);
        let mut storage = four_disks();
        let rows = see_rows(catalog.len(), 4);
        let placement = Placement::build(
            &rows,
            &catalog.sizes(),
            &storage.capacities(),
            DEFAULT_STRIPE,
        )
        .unwrap();
        let workloads = [SqlWorkload::olap1_21(3)];
        let mut engine = Engine::new(
            &catalog,
            &workloads,
            &placement,
            &mut storage,
            RunConfig::default(),
        );
        let pool = BufferPool::disabled(engine.catalog.len());
        let err = engine
            .on_part_complete(99, SimTime::ZERO, &pool)
            .unwrap_err();
        assert_eq!(err, EngineError::DeadStep { slot: 99 });
        assert!(err.to_string().contains("slot 99"), "{err}");
        assert!(
            engine.enter_phase(7, SimTime::ZERO, &pool).unwrap_err()
                == EngineError::DeadQuery { slot: 7 }
        );
    }

    #[test]
    fn deterministic_runs() {
        let cfg = RunConfig {
            scale: 0.01,
            pool_bytes: 0,
            ..RunConfig::default()
        };
        let a = run_olap(0.01, SqlWorkload::olap1_21(9), cfg.clone());
        let b = run_olap(0.01, SqlWorkload::olap1_21(9), cfg);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.storage_requests, b.storage_requests);
    }
}
