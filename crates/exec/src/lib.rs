//! Database execution simulator.
//!
//! This crate plays the role PostgreSQL played in the paper's
//! evaluation: it executes SQL workloads — as object-access profiles,
//! not SQL text — against a simulated [`wasla_storage::StorageSystem`]
//! under a given object placement, and reports wall-clock completion
//! time, per-target utilization, and OLTP throughput. The paper's
//! experiments all compare *workload execution time under layout A vs.
//! layout B*; this crate produces those numbers.
//!
//! Components:
//!
//! * [`Placement`] — maps each database object onto the storage targets
//!   according to a fractional layout row, using LVM-style round-robin
//!   striping for regular rows and contiguous chunks otherwise
//!   (paper §3 "a variety of mechanisms can be used to implement the
//!   layout").
//! * [`BufferPool`] — a coarse buffer-cache model: the hottest objects
//!   (by logical heat density) are cached; scans of objects that don't
//!   fit stream past the cache. This reproduces the paper's setup of a
//!   2 GB shared buffer absorbing index traffic while table scans hit
//!   the disks.
//! * [`Engine`] — the closed-loop driver: OLAP query sequences at a
//!   fixed concurrency level (a new query starts whenever one
//!   finishes), OLTP terminals running transactions back-to-back, and
//!   consolidation runs with both at once. Optionally captures a block
//!   I/O trace for the `wasla-trace` fitting pipeline.

pub mod cache;
pub mod engine;
pub mod openloop;
pub mod placement;
pub mod replay;
pub mod report;

pub use cache::BufferPool;
pub use engine::{DeviceEvent, Engine, EngineError, RunConfig, RunOutcome};
pub use openloop::{run_open_loop, OpenLoopReport, OpenStream};
pub use placement::{see_rows, ObjectMapping, Placement, PlacementError};
pub use replay::{replay_oplog, ReplayReport};
pub use report::{ObjectIoStats, RunReport};
