//! Object-to-target placement.
//!
//! A placement realizes a layout matrix `L` (N objects × M targets,
//! row sums 1) on concrete storage: it allocates byte extents on each
//! target and translates object-relative addresses to target addresses.
//!
//! Two mechanisms, mirroring the paper's §3 discussion:
//!
//! * **Striped** — when a row is *regular* (equal nonzero fractions),
//!   the object is striped round-robin across its targets with a fixed
//!   stripe size, exactly like the host LVM used in the paper's
//!   experiments (Figure 7's layout model describes this mechanism).
//! * **Chunked** — a general (non-regular) row is realized as
//!   contiguous per-target chunks sized by the fractions, the way a
//!   volume manager concatenates extents.

use wasla_simlib::impl_json_struct;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_storage::TargetId;

/// Default LVM stripe size (bytes), matching the layout model's
/// `StripeSize` parameter.
pub const DEFAULT_STRIPE: u64 = 1024 * 1024;

/// Tolerance when deciding whether a row's nonzero fractions are equal.
const REGULAR_EPS: f64 = 1e-6;

/// Errors raised while building a placement.
#[derive(Clone, Debug, PartialEq)]
pub enum PlacementError {
    /// A row does not sum to 1 (integrity constraint violated).
    BadRow {
        /// Object index.
        object: usize,
        /// Actual row sum.
        sum: f64,
    },
    /// A target was assigned more bytes than its capacity.
    OverCapacity {
        /// Target index.
        target: TargetId,
        /// Bytes assigned.
        assigned: u64,
        /// Target capacity.
        capacity: u64,
    },
    /// Row length doesn't match the number of targets.
    ShapeMismatch,
}

impl ToJson for PlacementError {
    fn to_json(&self) -> Json {
        match *self {
            PlacementError::BadRow { object, sum } => json::variant(
                "BadRow",
                Json::Obj(vec![
                    ("object".to_string(), object.to_json()),
                    ("sum".to_string(), sum.to_json()),
                ]),
            ),
            PlacementError::OverCapacity {
                target,
                assigned,
                capacity,
            } => json::variant(
                "OverCapacity",
                Json::Obj(vec![
                    ("target".to_string(), target.to_json()),
                    ("assigned".to_string(), assigned.to_json()),
                    ("capacity".to_string(), capacity.to_json()),
                ]),
            ),
            PlacementError::ShapeMismatch => Json::Str("ShapeMismatch".to_string()),
        }
    }
}

impl FromJson for PlacementError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            return if s == "ShapeMismatch" {
                Ok(PlacementError::ShapeMismatch)
            } else {
                Err(JsonError::new(format!(
                    "unknown PlacementError variant: {s:?}"
                )))
            };
        }
        let (tag, payload) = json::untag(v)?;
        let get = |name: &str| {
            payload
                .field(name)
                .ok_or_else(|| JsonError::missing_field(name))
        };
        match tag {
            "BadRow" => Ok(PlacementError::BadRow {
                object: usize::from_json(get("object")?)?,
                sum: f64::from_json(get("sum")?)?,
            }),
            "OverCapacity" => Ok(PlacementError::OverCapacity {
                target: usize::from_json(get("target")?)?,
                assigned: u64::from_json(get("assigned")?)?,
                capacity: u64::from_json(get("capacity")?)?,
            }),
            other => Err(JsonError::new(format!(
                "unknown PlacementError variant: {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::BadRow { object, sum } => {
                write!(f, "layout row {object} sums to {sum}, expected 1")
            }
            PlacementError::OverCapacity {
                target,
                assigned,
                capacity,
            } => write!(
                f,
                "target {target} assigned {assigned} bytes > capacity {capacity}"
            ),
            PlacementError::ShapeMismatch => write!(f, "layout row length != target count"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// How one object is mapped.
#[derive(Clone, Debug)]
pub enum ObjectMapping {
    /// Round-robin striping across `targets`; logical stripe `s` lives
    /// on `targets[s % k]` at byte `base[s % k] + (s / k) * stripe`.
    Striped {
        /// (target, base offset) pairs in stripe order.
        targets: Vec<(TargetId, u64)>,
        /// Stripe unit in bytes.
        stripe: u64,
    },
    /// Contiguous chunks: `(target, base, logical_start, len)`,
    /// ascending in `logical_start` and covering `[0, size)`.
    Chunked {
        /// The chunks.
        chunks: Vec<(TargetId, u64, u64, u64)>,
    },
}

impl ToJson for ObjectMapping {
    fn to_json(&self) -> Json {
        match self {
            ObjectMapping::Striped { targets, stripe } => json::variant(
                "Striped",
                Json::Obj(vec![
                    ("targets".to_string(), targets.to_json()),
                    ("stripe".to_string(), stripe.to_json()),
                ]),
            ),
            ObjectMapping::Chunked { chunks } => json::variant(
                "Chunked",
                Json::Obj(vec![("chunks".to_string(), chunks.to_json())]),
            ),
        }
    }
}

impl FromJson for ObjectMapping {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = json::untag(v)?;
        let get = |name: &str| {
            payload
                .field(name)
                .ok_or_else(|| JsonError::missing_field(name))
        };
        match tag {
            "Striped" => Ok(ObjectMapping::Striped {
                targets: FromJson::from_json(get("targets")?)?,
                stripe: u64::from_json(get("stripe")?)?,
            }),
            "Chunked" => Ok(ObjectMapping::Chunked {
                chunks: FromJson::from_json(get("chunks")?)?,
            }),
            other => Err(JsonError::new(format!(
                "unknown ObjectMapping variant: {other:?}"
            ))),
        }
    }
}

/// A realized placement of all objects onto targets.
#[derive(Clone, Debug)]
pub struct Placement {
    mappings: Vec<ObjectMapping>,
    sizes: Vec<u64>,
    per_target: Vec<u64>,
}

impl_json_struct!(Placement {
    mappings,
    sizes,
    per_target
});

impl Placement {
    /// Builds a placement from a layout matrix.
    ///
    /// * `rows[i][j]` — fraction of object `i` on target `j`;
    /// * `sizes[i]` — object sizes in bytes;
    /// * `capacities[j]` — target capacities in bytes;
    /// * `stripe` — stripe unit for regular rows.
    pub fn build(
        rows: &[Vec<f64>],
        sizes: &[u64],
        capacities: &[u64],
        stripe: u64,
    ) -> Result<Placement, PlacementError> {
        assert_eq!(rows.len(), sizes.len());
        let m = capacities.len();
        let mut cursors = vec![0u64; m];
        let mut mappings = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(PlacementError::ShapeMismatch);
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-3 {
                return Err(PlacementError::BadRow { object: i, sum });
            }
            let size = sizes[i];
            let nonzero: Vec<usize> = (0..m).filter(|&j| row[j] > REGULAR_EPS).collect();
            debug_assert!(!nonzero.is_empty());
            let first = row[nonzero[0]];
            let regular = nonzero
                .iter()
                .all(|&j| (row[j] - first).abs() < REGULAR_EPS);
            if regular {
                // Striped: each target holds ceil(size / k) rounded up
                // to a whole number of stripes.
                let k = nonzero.len() as u64;
                let stripes_total = size.div_ceil(stripe);
                let per_target_stripes = stripes_total.div_ceil(k);
                let per_target_bytes = per_target_stripes * stripe;
                let mut targets = Vec::with_capacity(nonzero.len());
                for &j in &nonzero {
                    targets.push((j, cursors[j]));
                    cursors[j] += per_target_bytes;
                }
                mappings.push(ObjectMapping::Striped { targets, stripe });
            } else {
                // Chunked: contiguous per-target chunks by fraction.
                let mut chunks = Vec::with_capacity(nonzero.len());
                let mut logical = 0u64;
                for (pos, &j) in nonzero.iter().enumerate() {
                    let len = if pos + 1 == nonzero.len() {
                        size - logical
                    } else {
                        ((row[j] / sum) * size as f64).round() as u64
                    };
                    if len == 0 {
                        continue;
                    }
                    chunks.push((j, cursors[j], logical, len));
                    cursors[j] += len;
                    logical += len;
                }
                mappings.push(ObjectMapping::Chunked { chunks });
            }
        }
        for (j, (&used, &cap)) in cursors.iter().zip(capacities).enumerate() {
            if used > cap {
                return Err(PlacementError::OverCapacity {
                    target: j,
                    assigned: used,
                    capacity: cap,
                });
            }
        }
        Ok(Placement {
            mappings,
            sizes: sizes.to_vec(),
            per_target: cursors,
        })
    }

    /// Bytes allocated on each target.
    pub fn bytes_per_target(&self) -> &[u64] {
        &self.per_target
    }

    /// The mapping of one object.
    pub fn mapping(&self, object: usize) -> &ObjectMapping {
        &self.mappings[object]
    }

    /// Translates an object-relative byte range into per-target
    /// `(target, offset, len)` pieces, appended to `out`.
    pub fn translate(
        &self,
        object: usize,
        offset: u64,
        len: u64,
        out: &mut Vec<(TargetId, u64, u64)>,
    ) {
        debug_assert!(offset + len <= self.sizes[object].max(offset + len));
        match &self.mappings[object] {
            ObjectMapping::Striped { targets, stripe } => {
                let k = targets.len() as u64;
                let mut off = offset;
                let mut remaining = len;
                while remaining > 0 {
                    let s = off / stripe;
                    let within = off % stripe;
                    let chunk = (stripe - within).min(remaining);
                    let (target, base) = targets[(s % k) as usize];
                    out.push((target, base + (s / k) * stripe + within, chunk));
                    off += chunk;
                    remaining -= chunk;
                }
            }
            ObjectMapping::Chunked { chunks } => {
                let mut off = offset;
                let mut remaining = len;
                for &(target, base, lstart, clen) in chunks {
                    if remaining == 0 {
                        break;
                    }
                    let lend = lstart + clen;
                    if off >= lend || off + remaining <= lstart {
                        continue;
                    }
                    let within = off - lstart;
                    let take = (clen - within).min(remaining);
                    out.push((target, base + within, take));
                    off += take;
                    remaining -= take;
                }
                debug_assert_eq!(remaining, 0, "range escaped chunk cover");
            }
        }
    }
}

/// Builds the stripe-everything-everywhere row set for `n` objects on
/// `m` targets — the paper's SEE baseline layout matrix.
pub fn see_rows(n: usize, m: usize) -> Vec<Vec<f64>> {
    vec![vec![1.0 / m as f64; m]; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn striped_mapping_round_robins() {
        let rows = vec![vec![0.5, 0.5]];
        let p =
            Placement::build(&rows, &[4 * DEFAULT_STRIPE], &[GIB, GIB], DEFAULT_STRIPE).unwrap();
        let mut out = Vec::new();
        // Stripe 0 → target 0, stripe 1 → target 1, stripe 2 → target 0 …
        p.translate(0, 0, DEFAULT_STRIPE, &mut out);
        assert_eq!(out, vec![(0, 0, DEFAULT_STRIPE)]);
        out.clear();
        p.translate(0, DEFAULT_STRIPE, DEFAULT_STRIPE, &mut out);
        assert_eq!(out, vec![(1, 0, DEFAULT_STRIPE)]);
        out.clear();
        p.translate(0, 2 * DEFAULT_STRIPE, DEFAULT_STRIPE, &mut out);
        assert_eq!(out, vec![(0, DEFAULT_STRIPE, DEFAULT_STRIPE)]);
    }

    #[test]
    fn striped_request_spanning_stripes_splits() {
        let rows = vec![vec![0.5, 0.5]];
        let p =
            Placement::build(&rows, &[4 * DEFAULT_STRIPE], &[GIB, GIB], DEFAULT_STRIPE).unwrap();
        let mut out = Vec::new();
        p.translate(0, DEFAULT_STRIPE / 2, DEFAULT_STRIPE, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_eq!(out[0].2 + out[1].2, DEFAULT_STRIPE);
    }

    #[test]
    fn chunked_mapping_covers_object() {
        let rows = vec![vec![0.2, 0.3, 0.5]];
        let size = 1000 * 1000;
        let p = Placement::build(&rows, &[size], &[GIB, GIB, GIB], DEFAULT_STRIPE).unwrap();
        // Whole-object translation covers every byte exactly once.
        let mut out = Vec::new();
        p.translate(0, 0, size, &mut out);
        let total: u64 = out.iter().map(|(_, _, l)| l).sum();
        assert_eq!(total, size);
        assert_eq!(out.len(), 3);
        assert!((out[0].2 as f64 / size as f64 - 0.2).abs() < 0.01);
        assert!((out[2].2 as f64 / size as f64 - 0.5).abs() < 0.01);
        // A range inside the middle chunk maps to one target.
        out.clear();
        p.translate(0, 300_000, 10_000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1);
    }

    #[test]
    fn sequential_allocation_does_not_overlap() {
        // Two objects on the same target get disjoint extents.
        let rows = vec![vec![1.0, 0.0], vec![1.0, 0.0]];
        let p = Placement::build(&rows, &[GIB, GIB], &[4 * GIB, 4 * GIB], DEFAULT_STRIPE).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.translate(0, 0, GIB, &mut a);
        p.translate(1, 0, GIB, &mut b);
        let (ta, oa, la) = a[0];
        let (tb, ob, _lb) = b[0];
        assert_eq!(ta, tb);
        assert!(ob >= oa + la, "extents overlap");
    }

    #[test]
    fn capacity_enforced() {
        let rows = vec![vec![1.0]];
        let err = Placement::build(&rows, &[2 * GIB], &[GIB], DEFAULT_STRIPE).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::OverCapacity { target: 0, .. }
        ));
    }

    #[test]
    fn bad_row_rejected() {
        let rows = vec![vec![0.5, 0.3]];
        let err = Placement::build(&rows, &[GIB], &[GIB, GIB], DEFAULT_STRIPE).unwrap_err();
        assert!(matches!(err, PlacementError::BadRow { object: 0, .. }));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let rows = vec![vec![1.0]];
        let err = Placement::build(&rows, &[GIB], &[GIB, GIB], DEFAULT_STRIPE).unwrap_err();
        assert_eq!(err, PlacementError::ShapeMismatch);
    }

    #[test]
    fn see_rows_are_uniform() {
        let rows = see_rows(3, 4);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.len(), 4);
            for &v in row {
                assert!((v - 0.25).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bytes_per_target_accounts_allocation() {
        let rows = vec![vec![1.0, 0.0], vec![0.5, 0.5]];
        let p =
            Placement::build(&rows, &[GIB, 2 * GIB], &[4 * GIB, 4 * GIB], DEFAULT_STRIPE).unwrap();
        let bt = p.bytes_per_target();
        assert!(bt[0] >= GIB + GIB); // object0 + half of object1
        assert!(bt[1] >= GIB);
    }
}
