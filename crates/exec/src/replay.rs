//! Op-log replay driver.
//!
//! Re-executes a captured [`OpLog`] against a candidate layout: every
//! record is re-issued at its recorded issue time, translated through
//! the candidate [`Placement`] onto a fresh storage system, and the
//! observed completion behaviour is measured. Replaying the same log
//! against the baseline layout it was captured on and against an
//! advised layout turns the cost model's predictions into observable,
//! regressable numbers — the paper's predict-vs-observe validation
//! loop (§6), and the same replay-against-candidate-configurations
//! methodology as the provisioning follow-up work.
//!
//! The driver is open-loop by construction: the log fixes the arrival
//! schedule, so a better layout shows up as lower device utilization
//! and an earlier final completion, not as a different request
//! sequence.

use crate::placement::Placement;
use wasla_simlib::SimTime;
use wasla_storage::{StorageSystem, TargetIo};
use wasla_trace::oplog::OpLog;
use wasla_trace::FitError;

/// What one replay of a log against one layout observed.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Records issued.
    pub issued: u64,
    /// Records whose every storage part completed.
    pub completed: u64,
    /// Issue-time span of the log (seconds).
    pub log_span: f64,
    /// First issue to last completion (seconds).
    pub makespan: f64,
    /// Mean per-record response time (seconds).
    pub mean_response: f64,
    /// Per-target utilization over the replay (busiest member device).
    pub target_utilization: Vec<f64>,
}

/// Replays `log` against `placement` on `storage`.
///
/// `n_objects` bounds the stream ids the placement covers; a record
/// naming a stream outside it is the same typed error the fitting path
/// reports. The replay itself is deterministic: same log, same layout,
/// same report.
pub fn replay_oplog(
    log: &OpLog,
    placement: &Placement,
    storage: &mut StorageSystem,
    n_objects: usize,
) -> Result<ReplayReport, FitError> {
    let records = log.records();
    let first_issue = records.first().map_or(SimTime::ZERO, |r| r.issue);
    let mut open: Vec<u32> = vec![0; records.len()];
    let mut completed = 0u64;
    let mut response_sum = 0.0f64;
    let mut last_completion = first_issue;
    let mut last_issue = first_issue;
    let mut translate: Vec<(usize, u64, u64)> = Vec::new();

    let note = |c: wasla_storage::Completion,
                open: &mut [u32],
                completed: &mut u64,
                response_sum: &mut f64,
                last_completion: &mut SimTime| {
        let rid = c.tag as usize;
        if let Some(o) = open.get_mut(rid) {
            if *o > 0 {
                *o -= 1;
                if *o == 0 {
                    *completed += 1;
                    *response_sum += (c.finished - records[rid].issue).as_secs();
                    *last_completion = (*last_completion).max(c.finished);
                }
            }
        }
    };

    for (rid, rec) in records.iter().enumerate() {
        if rec.stream as usize >= n_objects {
            return Err(FitError::StreamOutOfRange {
                stream: rec.stream,
                objects: n_objects,
            });
        }
        for c in storage.advance_until(rec.issue) {
            note(
                c,
                &mut open,
                &mut completed,
                &mut response_sum,
                &mut last_completion,
            );
        }
        translate.clear();
        placement.translate(rec.stream as usize, rec.offset, rec.len, &mut translate);
        open[rid] = translate.len() as u32;
        last_issue = rec.issue;
        for &(target, toff, tlen) in &translate {
            storage.submit(
                rec.issue,
                target,
                TargetIo {
                    kind: rec.kind,
                    offset: toff,
                    len: tlen,
                    stream: rec.stream,
                },
                rid as u64,
            );
        }
        if translate.is_empty() {
            completed += 1;
        }
    }
    for c in storage.advance_until(SimTime::FAR_FUTURE) {
        note(
            c,
            &mut open,
            &mut completed,
            &mut response_sum,
            &mut last_completion,
        );
    }

    let end = last_completion.max(last_issue);
    let target_utilization = storage
        .target_stats(end.max(SimTime::from_secs(1e-9)))
        .iter()
        .map(|t| t.max_member_utilization)
        .collect();
    Ok(ReplayReport {
        issued: records.len() as u64,
        completed,
        log_span: log.span().as_secs(),
        makespan: (last_completion - first_issue).as_secs(),
        mean_response: if completed == 0 {
            0.0
        } else {
            response_sum / completed as f64
        },
        target_utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::see_rows;
    use wasla_simlib::SimTime;
    use wasla_storage::{DeviceSpec, DiskParams, IoKind, TargetConfig, GIB};
    use wasla_trace::oplog::OpRecord;

    fn disks(m: usize) -> StorageSystem {
        StorageSystem::new(
            (0..m)
                .map(|j| {
                    TargetConfig::single(
                        format!("d{j}"),
                        DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
                    )
                })
                .collect(),
            3,
        )
    }

    fn placement(n: usize, m: usize) -> Placement {
        Placement::build(
            &see_rows(n, m),
            &vec![4 * GIB; n],
            &vec![18 * GIB; m],
            256 * 1024,
        )
        .unwrap()
    }

    fn sample_log(n: u64) -> OpLog {
        let mut log = OpLog::new();
        for k in 0..n {
            log.push(OpRecord {
                kind: if k % 4 == 0 {
                    IoKind::Write
                } else {
                    IoKind::Read
                },
                stream: (k % 2) as u32,
                offset: (k * 12_345_678) % (2 * GIB),
                len: 65536,
                issue: SimTime::from_secs(k as f64 * 0.01),
                complete: SimTime::from_secs(k as f64 * 0.01 + 0.005),
            });
        }
        log
    }

    #[test]
    fn replay_completes_every_record() {
        let log = sample_log(200);
        let mut storage = disks(2);
        let report = replay_oplog(&log, &placement(2, 2), &mut storage, 2).unwrap();
        assert_eq!(report.issued, 200);
        assert_eq!(report.completed, 200);
        assert!(report.makespan >= report.log_span);
        assert!(report.mean_response > 0.0);
        assert_eq!(report.target_utilization.len(), 2);
        assert!(report.target_utilization.iter().all(|u| *u > 0.0));
    }

    #[test]
    fn replay_is_deterministic() {
        let log = sample_log(150);
        let run = || {
            let mut storage = disks(2);
            replay_oplog(&log, &placement(2, 2), &mut storage, 2).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.target_utilization, b.target_utilization);
        assert_eq!(a.mean_response, b.mean_response);
    }

    #[test]
    fn more_spindles_lower_utilization() {
        let log = sample_log(300);
        let measure = |m: usize| {
            let mut storage = disks(m);
            let report = replay_oplog(&log, &placement(2, m), &mut storage, 2).unwrap();
            report
                .target_utilization
                .iter()
                .cloned()
                .fold(0.0f64, f64::max)
        };
        let narrow = measure(1);
        let wide = measure(4);
        assert!(wide < narrow, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn out_of_range_stream_is_typed() {
        let mut log = OpLog::new();
        log.push(OpRecord {
            kind: IoKind::Read,
            stream: 9,
            offset: 0,
            len: 8192,
            issue: SimTime::ZERO,
            complete: SimTime::ZERO,
        });
        let mut storage = disks(1);
        let err = replay_oplog(&log, &placement(1, 1), &mut storage, 1).unwrap_err();
        assert_eq!(
            err,
            FitError::StreamOutOfRange {
                stream: 9,
                objects: 1
            }
        );
    }

    #[test]
    fn empty_log_replays_to_zeros() {
        let log = OpLog::new();
        let mut storage = disks(1);
        let report = replay_oplog(&log, &placement(1, 1), &mut storage, 1).unwrap();
        assert_eq!(report.issued, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.mean_response, 0.0);
    }
}
