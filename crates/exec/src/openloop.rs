//! Open-loop workload driver for model validation.
//!
//! The closed-loop [`crate::Engine`] reproduces database behaviour; for
//! *validating the cost models* we also need an open-loop driver: issue
//! requests against a single target at a fixed rate with Poisson
//! arrivals, exactly as the utilization law `µ = λ · Cost` (paper
//! Eq. 1) assumes, and measure the target's actual busy fraction. The
//! `ablation-costmodel` experiment and the model-validation tests use
//! this to check that `CostModel::request_cost` predictions line up
//! with simulated reality under controlled conditions.

use wasla_simlib::{SimRng, SimTime};
use wasla_storage::{StorageSystem, TargetIo};
use wasla_workload::WorkloadSpec;

/// One synthetic open-loop stream: a Rome workload description realized
/// as a request generator against a byte range of a target.
#[derive(Clone, Debug)]
pub struct OpenStream {
    /// The workload description to realize (rates, sizes, run count).
    pub spec: WorkloadSpec,
    /// Target to drive.
    pub target: usize,
    /// Byte range ```[start, start + span)``` the stream walks within.
    pub start: u64,
    /// Range length in bytes.
    pub span: u64,
    /// Stream id (for traces/diagnostics).
    pub stream: u32,
}

/// Result of an open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Requested duration (simulated seconds).
    pub duration: f64,
    /// Requests issued per stream.
    pub issued: Vec<u64>,
    /// Requests completed per stream.
    pub completed: Vec<u64>,
    /// Per-target utilization over the run (busiest member device).
    pub target_utilization: Vec<f64>,
    /// Mean response time per stream (seconds).
    pub mean_response: Vec<f64>,
}

/// Per-stream generator state.
struct StreamState {
    next_arrival: f64,
    run_left: u64,
    next_offset: u64,
    issued: u64,
    completed: u64,
    response_sum: f64,
}

/// Drives the streams open-loop for `duration` simulated seconds and
/// reports measured utilizations.
///
/// Arrivals are Poisson at each stream's total rate; each arrival is a
/// read or write by the spec's rate mix; sequential runs follow the
/// spec's run count (geometrically distributed lengths), jumping to a
/// uniformly random position between runs.
pub fn run_open_loop(
    storage: &mut StorageSystem,
    streams: &[OpenStream],
    duration: f64,
    seed: u64,
) -> OpenLoopReport {
    assert!(!streams.is_empty());
    let mut rng = SimRng::new(seed);
    let mut states: Vec<StreamState> = streams
        .iter()
        .map(|s| {
            let rate = s.spec.total_rate();
            assert!(rate > 0.0, "open-loop stream needs a positive rate");
            StreamState {
                next_arrival: rng.exponential(rate),
                run_left: 0,
                next_offset: s.start,
                issued: 0,
                completed: 0,
                response_sum: 0.0,
            }
        })
        .collect();

    loop {
        // Next arrival across streams.
        let (idx, t_arrival) = states
            .iter()
            .enumerate()
            .map(|(i, st)| (i, st.next_arrival))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("streams non-empty");
        // Drain storage completions up to the arrival (or stop).
        let t_next = t_arrival.min(duration);
        for c in storage.advance_until(SimTime::from_secs(t_next)) {
            let s = c.tag as usize;
            states[s].completed += 1;
            states[s].response_sum += c.response().as_secs();
        }
        if t_arrival > duration {
            break;
        }
        // Issue the arrival.
        let stream = &streams[idx];
        let spec = &stream.spec;
        let state = &mut states[idx];
        let is_read = rng.uniform() * spec.total_rate() < spec.read_rate;
        let len = if is_read {
            spec.read_size
        } else {
            spec.write_size
        }
        .max(512.0) as u64;
        if state.run_left == 0 {
            state.run_left = rng.geometric_mean(spec.run_count);
            let slots = (stream.span / len).max(1);
            state.next_offset = stream.start + rng.below(slots) * len;
        }
        let offset = state
            .next_offset
            .min(stream.start + stream.span.saturating_sub(len));
        state.next_offset = offset + len;
        if state.next_offset + len > stream.start + stream.span {
            state.run_left = 0;
        } else {
            state.run_left -= 1;
        }
        let io = if is_read {
            TargetIo::read(offset, len, stream.stream)
        } else {
            TargetIo::write(offset, len, stream.stream)
        };
        storage.submit(SimTime::from_secs(t_arrival), stream.target, io, idx as u64);
        state.issued += 1;
        state.next_arrival = t_arrival + rng.exponential(spec.total_rate());
    }
    // Let in-flight work finish (it still counts toward busy time, but
    // utilization is measured over the nominal duration).
    for c in storage.advance_until(SimTime::FAR_FUTURE) {
        let s = c.tag as usize;
        states[s].completed += 1;
        states[s].response_sum += c.response().as_secs();
    }

    let end = SimTime::from_secs(duration);
    let target_utilization = storage
        .target_stats(end)
        .iter()
        .map(|t| t.max_member_utilization)
        .collect();
    OpenLoopReport {
        duration,
        issued: states.iter().map(|s| s.issued).collect(),
        completed: states.iter().map(|s| s.completed).collect(),
        target_utilization,
        mean_response: states
            .iter()
            .map(|s| {
                if s.completed == 0 {
                    0.0
                } else {
                    s.response_sum / s.completed as f64
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_storage::{DeviceSpec, DiskParams, TargetConfig, GIB};

    fn one_disk() -> StorageSystem {
        StorageSystem::new(
            vec![TargetConfig::single(
                "d0",
                DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
            )],
            3,
        )
    }

    fn spec(rate: f64, run: f64, size: f64) -> WorkloadSpec {
        WorkloadSpec {
            read_size: size,
            write_size: size,
            read_rate: rate,
            write_rate: 0.0,
            run_count: run,
            overlaps: vec![],
        }
    }

    #[test]
    fn issues_at_the_requested_rate() {
        let mut storage = one_disk();
        let streams = [OpenStream {
            spec: spec(50.0, 1.0, 8192.0),
            target: 0,
            start: 0,
            span: 16 * GIB,
            stream: 0,
        }];
        let report = run_open_loop(&mut storage, &streams, 100.0, 7);
        let rate = report.issued[0] as f64 / report.duration;
        assert!((rate - 50.0).abs() < 5.0, "measured rate {rate}");
        assert_eq!(report.issued[0], report.completed[0]);
    }

    #[test]
    fn utilization_scales_with_rate() {
        let measure = |rate: f64| {
            let mut storage = one_disk();
            let streams = [OpenStream {
                spec: spec(rate, 1.0, 8192.0),
                target: 0,
                start: 0,
                span: 16 * GIB,
                stream: 0,
            }];
            run_open_loop(&mut storage, &streams, 200.0, 7).target_utilization[0]
        };
        let low = measure(20.0);
        let high = measure(60.0);
        assert!(high > 2.0 * low, "low {low} high {high}");
        // Random 8 KiB at ~5 ms a piece: 20 req/s ≈ 10% busy.
        assert!((0.05..0.25).contains(&low), "low {low}");
    }

    #[test]
    fn sequential_streams_cost_less() {
        let measure = |run: f64| {
            let mut storage = one_disk();
            let streams = [OpenStream {
                spec: spec(100.0, run, 131072.0),
                target: 0,
                start: 0,
                span: 16 * GIB,
                stream: 0,
            }];
            run_open_loop(&mut storage, &streams, 100.0, 7).target_utilization[0]
        };
        let random = measure(1.0);
        let sequential = measure(256.0);
        assert!(sequential < 0.7 * random, "seq {sequential} rand {random}");
    }

    #[test]
    fn two_streams_share_a_target() {
        let mut storage = one_disk();
        let streams = [
            OpenStream {
                spec: spec(30.0, 64.0, 131072.0),
                target: 0,
                start: 0,
                span: 4 * GIB,
                stream: 0,
            },
            OpenStream {
                spec: spec(30.0, 1.0, 8192.0),
                target: 0,
                start: 8 * GIB,
                span: 4 * GIB,
                stream: 1,
            },
        ];
        let report = run_open_loop(&mut storage, &streams, 100.0, 9);
        assert!(report.completed[0] > 1000);
        assert!(report.completed[1] > 1000);
        assert!(report.target_utilization[0] > 0.2);
        assert!(report.mean_response[0] > 0.0);
    }
}
