//! The AutoAdmin comparison (paper Figure 20 and §6.6).
//!
//! The paper reimplements Microsoft AutoAdmin's two-step graph layout
//! tool and compares: for OLAP1-63 AutoAdmin's layout performs about
//! as well as the NLP advisor's despite being less balanced; but
//! because AutoAdmin is *oblivious to concurrency* it emits the same
//! layout for OLAP8-63 — where that layout actually hurts relative to
//! SEE — while the workload-aware advisor adapts. AutoAdmin also runs
//! roughly twice as fast as the NLP advisor.

use crate::common::{advise, run_settings, ExpConfig, ExperimentResult, Row};
use std::time::Instant;
use wasla::core::{autoadmin_layout, AutoAdminOptions};
use wasla::pipeline::{self, Scenario};
use wasla::workload::SqlWorkload;

/// Figure 20 + §6.6: AutoAdmin vs the NLP advisor on OLAP1-63 and
/// OLAP8-63.
pub fn fig20(config: &ExpConfig) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut text = String::new();

    // AutoAdmin takes the SQL workload, not traces; OLAP1-63 and
    // OLAP8-63 are the same queries, so it sees identical inputs. We
    // give it the OLAP1-63-fitted descriptions for both, exactly
    // mirroring its concurrency blindness.
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let olap1 = [SqlWorkload::olap1_63(config.seed)];
    let outcome1 = advise(config, &scenario, &olap1);
    let rec1 = &outcome1.recommendation;

    let t0 = Instant::now();
    let aa_layout = autoadmin_layout(
        &outcome1.problem,
        &AutoAdminOptions::new(outcome1.problem.n()),
    );
    let aa_time = t0.elapsed().as_secs_f64();

    text.push_str("--- AutoAdmin layout (from OLAP1-63 inputs) ---\n");
    text.push_str(&wasla::core::report::render_layout(
        &outcome1.problem,
        &aa_layout,
        8,
    ));
    text.push_str("\n--- NLP advisor layout (OLAP1-63) ---\n");
    text.push_str(&wasla::core::report::render_layout(
        &outcome1.problem,
        rec1.final_layout(),
        8,
    ));

    // OLAP1-63 execution under the three layouts.
    let see1 = outcome1.baseline_run.elapsed.as_secs();
    let ours1 = pipeline::run_with_layout(
        &scenario,
        &olap1,
        rec1.final_layout(),
        &run_settings(config.seed),
    )
    .expect("validation run succeeds")
    .elapsed
    .as_secs();
    let aa1 = pipeline::run_with_layout(&scenario, &olap1, &aa_layout, &run_settings(config.seed))
        .expect("validation run succeeds")
        .elapsed
        .as_secs();
    rows.push(Row::new("OLAP1-63 SEE", vec![("elapsed_s", see1)]));
    rows.push(Row::new(
        "OLAP1-63 advisor",
        vec![("elapsed_s", ours1), ("speedup", see1 / ours1)],
    ));
    rows.push(Row::new(
        "OLAP1-63 autoadmin",
        vec![("elapsed_s", aa1), ("speedup", see1 / aa1)],
    ));

    // OLAP8-63: AutoAdmin reuses the same layout; the advisor re-fits.
    let olap8 = [SqlWorkload::olap8_63(config.seed)];
    let outcome8 = advise(config, &scenario, &olap8);
    let rec8 = &outcome8.recommendation;
    let see8 = outcome8.baseline_run.elapsed.as_secs();
    let ours8 = pipeline::run_with_layout(
        &scenario,
        &olap8,
        rec8.final_layout(),
        &run_settings(config.seed),
    )
    .expect("validation run succeeds")
    .elapsed
    .as_secs();
    let aa8 = pipeline::run_with_layout(&scenario, &olap8, &aa_layout, &run_settings(config.seed))
        .expect("validation run succeeds")
        .elapsed
        .as_secs();
    rows.push(Row::new("OLAP8-63 SEE", vec![("elapsed_s", see8)]));
    rows.push(Row::new(
        "OLAP8-63 advisor",
        vec![("elapsed_s", ours8), ("speedup", see8 / ours8)],
    ));
    rows.push(Row::new(
        "OLAP8-63 autoadmin (same layout as OLAP1-63)",
        vec![("elapsed_s", aa8), ("speedup", see8 / aa8)],
    ));

    // Tool runtimes (§6.6: AutoAdmin ≈ 2× faster than the NLP advisor).
    rows.push(Row::new(
        "tool runtime",
        vec![
            ("autoadmin_s", aa_time),
            ("nlp_advisor_s", rec1.timings.total_s()),
        ],
    ));

    ExperimentResult {
        id: "fig20".into(),
        title: "AutoAdmin comparison: layouts, execution times, tool runtimes".into(),
        rows,
        text,
    }
}
