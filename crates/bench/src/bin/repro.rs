//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale S] [--seed N] [--out DIR] <experiment>...
//! repro all                # every figure/table
//! repro ablations          # the DESIGN.md §5 ablations
//! repro fig11 fig17        # a subset
//! ```
//!
//! Experiments: fig1 fig8 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//! fig18 fig19 fig20, ablation-solver ablation-starts
//! ablation-costmodel ablation-regularization.

use std::io::Write as _;
use wasla_bench::common::{ExpConfig, ExperimentResult};
use wasla_bench::{ablations, autoadmin, future_work, layouts, models, runs, scaling, validation};

const FIGS: &[&str] = &[
    "fig1", "fig8", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "fig19", "fig20",
];
const ABLATIONS: &[&str] = &[
    "ablation-solver",
    "ablation-starts",
    "ablation-costmodel",
    "ablation-regularization",
    "ablation-contention",
    "validate-eq1",
    "estimator-input",
    "dynamic-growth",
    "config-sweep",
    "fig15-pagesize",
];

fn run_one(id: &str, config: &ExpConfig) -> ExperimentResult {
    match id {
        "fig1" => layouts::fig1(config),
        "fig8" => models::fig8(config),
        "fig11" => runs::fig11(config),
        "fig12" => layouts::fig12(config),
        "fig13" => models::fig13(config),
        "fig14" => layouts::fig14(config),
        "fig15" => runs::fig15(config),
        "fig16" => layouts::fig16(config),
        "fig17" => runs::fig17(config),
        "fig18" => runs::fig18(config),
        "fig19" => scaling::fig19(config),
        "fig20" => autoadmin::fig20(config),
        "ablation-solver" => ablations::ablation_solver(config),
        "ablation-starts" => ablations::ablation_starts(config),
        "ablation-costmodel" => ablations::ablation_costmodel(config),
        "ablation-regularization" => ablations::ablation_regularization(config),
        "ablation-contention" => ablations::ablation_contention(config),
        "validate-eq1" => validation::validate_eq1(config),
        "estimator-input" => validation::estimator_input(config),
        "dynamic-growth" => future_work::dynamic_growth(config),
        "config-sweep" => future_work::config_sweep(config),
        "fig15-pagesize" => validation::fig15_pagesize(config),
        other => {
            eprintln!("unknown experiment {other}; known: {FIGS:?} {ABLATIONS:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut config = ExpConfig::default();
    let mut out_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                config.scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number");
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--out" => {
                out_dir = Some(args.next().expect("--out takes a directory"));
            }
            "all" => ids.extend(FIGS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ABLATIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: repro [--scale S] [--seed N] [--out DIR] <experiment>|all|ablations ...");
        eprintln!("experiments: {FIGS:?} {ABLATIONS:?}");
        std::process::exit(2);
    }

    println!(
        "# WASLA experiment suite (scale {}, seed {})\n",
        config.scale, config.seed
    );
    let mut results = Vec::new();
    for id in &ids {
        let t0 = std::time::Instant::now();
        let result = run_one(id, &config);
        println!("{}", result.render());
        println!(
            "[{id} completed in {:.1}s wall]\n",
            t0.elapsed().as_secs_f64()
        );
        results.push(result);
    }
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create out dir");
        for result in &results {
            let path = format!("{dir}/{}.json", result.id);
            let mut f = std::fs::File::create(&path).expect("create result file");
            f.write_all(wasla::simlib::json::to_string_pretty(result).as_bytes())
                .expect("write result file");
        }
        println!("results written to {dir}/");
    }
}
