//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale S] [--seed N] [--out DIR] <experiment>...
//! repro all                # every figure/table
//! repro ablations          # the DESIGN.md §5 ablations
//! repro fig11 fig17        # a subset
//! repro bench-diff         # diff results/BENCH_*.json vs baselines
//! repro replay             # capture/replay predict-vs-observe loop
//! repro drift              # online control-loop soak (budget contract)
//! repro stress             # fleet-scale multi-tenant stress (1000 tenants)
//! ```
//!
//! Experiments: fig1 fig8 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//! fig18 fig19 fig20, ablation-solver ablation-starts
//! ablation-costmodel ablation-regularization, objectives (the
//! objective × target-mix sweep).
//!
//! Independent experiments run concurrently on the `wasla_simlib::par`
//! pool (width from `WASLA_THREADS`); each experiment's wall-clock is
//! measured inside its own task, so the reported per-experiment times
//! stay honest under parallelism. Output is printed in request order
//! once everything finishes.

use std::io::Write as _;
use std::path::Path;
use wasla::simlib::par;
use wasla_bench::common::{ExpConfig, ExperimentResult};
use wasla_bench::{
    ablations, autoadmin, diff, future_work, layouts, models, runs, scaling, validation,
};

const FIGS: &[&str] = &[
    "fig1", "fig8", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "fig19", "fig20",
];
const ABLATIONS: &[&str] = &[
    "ablation-solver",
    "ablation-starts",
    "ablation-costmodel",
    "ablation-regularization",
    "ablation-contention",
    "validate-eq1",
    "estimator-input",
    "dynamic-growth",
    "config-sweep",
    "fig15-pagesize",
    "objectives",
];

fn run_one(id: &str, config: &ExpConfig) -> ExperimentResult {
    match id {
        "fig1" => layouts::fig1(config),
        "fig8" => models::fig8(config),
        "fig11" => runs::fig11(config),
        "fig12" => layouts::fig12(config),
        "fig13" => models::fig13(config),
        "fig14" => layouts::fig14(config),
        "fig15" => runs::fig15(config),
        "fig16" => layouts::fig16(config),
        "fig17" => runs::fig17(config),
        "fig18" => runs::fig18(config),
        "fig19" => scaling::fig19(config),
        "fig20" => autoadmin::fig20(config),
        "ablation-solver" => ablations::ablation_solver(config),
        "ablation-starts" => ablations::ablation_starts(config),
        "ablation-costmodel" => ablations::ablation_costmodel(config),
        "ablation-regularization" => ablations::ablation_regularization(config),
        "ablation-contention" => ablations::ablation_contention(config),
        "validate-eq1" => validation::validate_eq1(config),
        "estimator-input" => validation::estimator_input(config),
        "dynamic-growth" => future_work::dynamic_growth(config),
        "config-sweep" => future_work::config_sweep(config),
        "fig15-pagesize" => validation::fig15_pagesize(config),
        "objectives" => ablations::ablation_objectives(config),
        other => unreachable!("experiment ids are validated in main: {other}"),
    }
}

fn is_known(id: &str) -> bool {
    FIGS.contains(&id) || ABLATIONS.contains(&id)
}

/// `repro bench-diff [--baseline DIR] [--current DIR] [--fail-over PCT]`
fn bench_diff(mut args: impl Iterator<Item = String>) -> ! {
    let results = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let mut baseline = format!("{results}/baselines");
    let mut current = results.to_string();
    let mut fail_over: Option<f64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next().expect("--baseline takes a directory"),
            "--current" => current = args.next().expect("--current takes a directory"),
            "--fail-over" => {
                fail_over = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--fail-over takes a percentage"),
                );
            }
            other => {
                eprintln!("bench-diff: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let diffs = match diff::diff_dirs(Path::new(&baseline), Path::new(&current)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(2);
        }
    };
    if diffs.is_empty() {
        println!("bench-diff: no BENCH_*.json reports in {current}");
        println!("run `cargo bench` first to generate them");
        std::process::exit(0);
    }
    print!("{}", diff::render(&diffs, fail_over));
    let worst = diff::worst_regression(&diffs);
    if worst.is_finite() {
        println!("worst regression vs baseline: {:+.1}%", worst * 100.0);
    }
    if let Some(limit) = fail_over {
        // Judge every bench, then fail once with the full list — the
        // table above already carries the per-bench verdicts.
        let over = diff::regressions_over(&diffs, limit);
        if !over.is_empty() {
            eprintln!(
                "bench-diff: {} bench(es) regressed beyond --fail-over {limit}%:",
                over.len()
            );
            for (suite, d) in &over {
                eprintln!("  {suite}/{} {:+.1}%", d.id, d.relative() * 100.0);
            }
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

/// `repro replay [--scale S] [--full]`
///
/// The capture/replay predict-vs-observe loop on both paper catalogs:
/// capture an op-log under the SEE baseline (TPC-H-like OLAP, then
/// TPC-C-like OLTP), advise from the streamed log, and replay the log
/// against the baseline and advised layouts, reporting predicted vs
/// observed per-target utilization and completion time. `--full` uses
/// the full-fidelity advise configuration instead of the coarse one.
fn replay_loop(mut args: impl Iterator<Item = String>) -> ! {
    use wasla::pipeline::{AdviseConfig, RunSettings, Scenario};
    use wasla::workload::SqlWorkload;
    let mut scale = 0.01f64;
    let mut full = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number");
            }
            "--full" => full = true,
            other => {
                eprintln!("replay: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let config = if full {
        AdviseConfig::full()
    } else {
        AdviseConfig::fast()
    };
    let oltp_settings = RunSettings {
        max_time: Some(60.0),
        ..RunSettings::default()
    };
    let cases: [(&str, Scenario, Vec<SqlWorkload>, RunSettings); 2] = [
        (
            "tpch-like",
            Scenario::homogeneous_disks(4, scale),
            vec![SqlWorkload::olap1_21(3)],
            RunSettings::default(),
        ),
        (
            "tpcc-like",
            Scenario::oltp_disks(scale),
            vec![SqlWorkload::oltp()],
            oltp_settings,
        ),
    ];
    for (name, scenario, workloads, settings) in cases {
        let captured = match wasla::replay::capture_oplog(&scenario, &workloads, &settings) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("replay: {name}: capture failed: {e}");
                std::process::exit(1);
            }
        };
        let mut session = wasla::AdvisorSession::new();
        let validation =
            match wasla::replay::replay_validate(&mut session, &captured.log, &scenario, &config) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("replay: {name}: validation failed: {e}");
                    std::process::exit(1);
                }
            };
        println!("## replay {name} (scale {scale})");
        print!(
            "{}",
            wasla::replay::render_validation(&validation, &scenario)
        );
        println!();
    }
    std::process::exit(0);
}

/// `repro stress [--tenants N] [--batch B] [--queue-cap N] ...`
///
/// The fleet-scale multi-tenant stress scenario: generate a synthetic
/// tenant population (`wasla::workload::synth`) and drive it through
/// `Service::advise_batch_with` in ticks under the flagged admission /
/// deadline / backoff policy. The deterministic report (tick stats +
/// per-slot decision log) goes to stdout — byte-identical at any
/// `WASLA_THREADS` and under any fault plan seed — and wall-clock
/// throughput goes to stderr. Exit codes follow `WaslaError` (usage
/// errors exit 2).
fn stress_loop(args: impl Iterator<Item = String>) -> ! {
    let argv: Vec<String> = args.collect();
    let opts = match wasla::StressOptions::from_args(&argv) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("stress: {e}");
            std::process::exit(e.exit_code());
        }
    };
    eprintln!(
        "stressing {} tenants on {} shared targets (batch {})...",
        opts.spec.tenants, opts.spec.targets, opts.batch
    );
    match wasla::stress::run_stress(&opts) {
        Ok(outcome) => {
            print!("{}", outcome.render_report());
            eprintln!("{}", outcome.render_timing());
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("stress: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

/// `repro drift [--scale S] [--full]`
///
/// The online control-loop soak: four drift shapes (rate ramp,
/// hotspot rotation, object growth, target failure mid-stream) on
/// both paper catalogs, each run checked against the daemon's
/// bounded-cost contract — cumulative voluntary migration bytes never
/// exceed the granted budget, and failed targets are fully evacuated.
fn drift_loop(mut args: impl Iterator<Item = String>) -> ! {
    let mut scale = 0.01f64;
    let mut full = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number");
            }
            "--full" => full = true,
            other => {
                eprintln!("drift: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    match wasla_bench::drift::drift_soak(scale, full) {
        Ok(report) => {
            print!("{report}");
            std::process::exit(0);
        }
        Err(violation) => {
            eprintln!("drift: {violation}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut config = ExpConfig::default();
    let mut out_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "bench-diff" => bench_diff(args),
            "replay" => replay_loop(args),
            "drift" => drift_loop(args),
            "stress" => stress_loop(args),
            "--scale" => {
                config.scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number");
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--out" => {
                out_dir = Some(args.next().expect("--out takes a directory"));
            }
            "all" => ids.extend(FIGS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ABLATIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: repro [--scale S] [--seed N] [--out DIR] <experiment>|all|ablations ...");
        eprintln!("       repro bench-diff [--baseline DIR] [--current DIR] [--fail-over PCT]");
        eprintln!("       repro replay [--scale S] [--full]");
        eprintln!("       repro drift [--scale S] [--full]");
        eprintln!(
            "       repro stress [--tenants N] [--batch B] [--queue-cap N] [--brownout N] ..."
        );
        eprintln!("experiments: {FIGS:?} {ABLATIONS:?}");
        std::process::exit(2);
    }
    for id in &ids {
        if !is_known(id) {
            eprintln!("unknown experiment {id}; known: {FIGS:?} {ABLATIONS:?}");
            std::process::exit(2);
        }
    }

    println!(
        "# WASLA experiment suite (scale {}, seed {}, {} threads)\n",
        config.scale,
        config.seed,
        par::threads()
    );
    // Experiments are independent: run them through the pool, timing
    // each inside its task (honest per-experiment wall-clock even when
    // several run at once), and print in request order afterwards.
    let results: Vec<(ExperimentResult, f64)> = par::par_map(&ids, |id| {
        let t0 = std::time::Instant::now();
        let result = run_one(id, &config);
        (result, t0.elapsed().as_secs_f64())
    });
    for ((result, wall_s), id) in results.iter().zip(&ids) {
        println!("{}", result.render());
        println!("[{id} completed in {wall_s:.1}s wall]\n");
    }
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create out dir");
        for (result, _) in &results {
            let path = format!("{dir}/{}.json", result.id);
            let mut f = std::fs::File::create(&path).expect("create result file");
            f.write_all(wasla::simlib::json::to_string_pretty(result).as_bytes())
                .expect("write result file");
        }
        println!("results written to {dir}/");
    }
}
