//! Bench-trajectory tracking: diff `results/BENCH_<suite>.json`
//! reports against checked-in per-PR baselines.
//!
//! The wall-clock harness ([`crate::harness`]) writes one JSON report
//! per suite. To make perf regressions diffable across PRs, a baseline
//! snapshot of those reports lives under `results/baselines/`; this
//! module loads both sides, matches benches by id, and renders
//! per-bench deltas. `repro bench-diff` is the CLI entry point and
//! `ci/bench_diff.sh` wires it into the offline gate.
//!
//! Wall-clock numbers are machine-dependent, so the diff is a
//! trajectory signal, not a pass/fail gate by default; `--fail-over`
//! turns large regressions into a non-zero exit for machines stable
//! enough to gate on.

use std::path::{Path, PathBuf};
use wasla::simlib::json::{FromJson, Json};

/// One bench present in both the baseline and the current report.
#[derive(Clone, Debug)]
pub struct BenchDelta {
    /// Bench id ("group/case").
    pub id: String,
    /// Baseline median per-iteration nanoseconds.
    pub baseline_ns: f64,
    /// Current median per-iteration nanoseconds.
    pub current_ns: f64,
}

impl BenchDelta {
    /// Relative change: +0.25 means 25% slower than the baseline.
    pub fn relative(&self) -> f64 {
        if self.baseline_ns <= 0.0 {
            return 0.0;
        }
        self.current_ns / self.baseline_ns - 1.0
    }
}

/// The comparison of one suite's report against its baseline.
#[derive(Clone, Debug, Default)]
pub struct SuiteDiff {
    /// Suite name (the `BENCH_<suite>.json` stem).
    pub suite: String,
    /// Benches present on both sides, in current-report order.
    pub deltas: Vec<BenchDelta>,
    /// Bench ids only in the baseline (removed or renamed).
    pub only_baseline: Vec<String>,
    /// Bench ids only in the current report (new benches).
    pub only_current: Vec<String>,
}

/// A parsed `BENCH_<suite>.json` report: suite name plus
/// `(bench id, median ns)` rows in file order.
fn load_report(path: &Path) -> Result<(String, Vec<(String, f64)>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let suite = value
        .field("suite")
        .and_then(|v| String::from_json(v).ok())
        .ok_or_else(|| format!("{}: missing suite field", path.display()))?;
    let mut rows = Vec::new();
    let benches = value
        .field("benches")
        .ok_or_else(|| format!("{}: missing benches field", path.display()))?;
    for bench in benches
        .items()
        .map_err(|e| format!("{}: {e}", path.display()))?
    {
        let id = bench
            .field("id")
            .and_then(|v| String::from_json(v).ok())
            .ok_or_else(|| format!("{}: bench without id", path.display()))?;
        let median = bench
            .field("median_ns")
            .and_then(|v| f64::from_json(v).ok())
            .ok_or_else(|| format!("{}: bench {id} without median_ns", path.display()))?;
        rows.push((id, median));
    }
    Ok((suite, rows))
}

/// The `BENCH_*.json` files directly inside `dir`, sorted by name.
fn report_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .map(|n| {
                        let n = n.to_string_lossy();
                        n.starts_with("BENCH_") && n.ends_with(".json")
                    })
                    .unwrap_or(false)
        })
        .collect();
    files.sort();
    files
}

/// Diffs every suite report in `current_dir` against `baseline_dir`.
///
/// Suites with no baseline yet are reported with every bench under
/// `only_current`; suites whose baseline lost its current report are
/// skipped (stale baselines are visible in `git status`, not here).
pub fn diff_dirs(baseline_dir: &Path, current_dir: &Path) -> Result<Vec<SuiteDiff>, String> {
    let mut diffs = Vec::new();
    for path in report_files(current_dir) {
        let (suite, current) = load_report(&path)?;
        let baseline_path = baseline_dir.join(format!("BENCH_{suite}.json"));
        let baseline = if baseline_path.is_file() {
            load_report(&baseline_path)?.1
        } else {
            Vec::new()
        };
        let mut diff = SuiteDiff {
            suite,
            ..SuiteDiff::default()
        };
        for (id, current_ns) in &current {
            match baseline.iter().find(|(bid, _)| bid == id) {
                Some((_, baseline_ns)) => diff.deltas.push(BenchDelta {
                    id: id.clone(),
                    baseline_ns: *baseline_ns,
                    current_ns: *current_ns,
                }),
                None => diff.only_current.push(id.clone()),
            }
        }
        for (id, _) in &baseline {
            if !current.iter().any(|(cid, _)| cid == id) {
                diff.only_baseline.push(id.clone());
            }
        }
        diffs.push(diff);
    }
    Ok(diffs)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Advisory threshold (percent) for the verdict column when no
/// `--fail-over` limit is in force.
pub const ADVISORY_PCT: f64 = 25.0;

/// One bench's verdict against the regression threshold. With a
/// `--fail-over` limit the slow side is a hard `FAIL`; without one the
/// verdicts are advisory (`slower`/`faster`), since wall-clock noise
/// alone shouldn't read as a gate.
pub fn verdict(d: &BenchDelta, fail_over_pct: Option<f64>) -> &'static str {
    let pct = d.relative() * 100.0;
    let limit = fail_over_pct.unwrap_or(ADVISORY_PCT);
    if pct > limit {
        if fail_over_pct.is_some() {
            "FAIL"
        } else {
            "slower"
        }
    } else if pct < -limit {
        "faster"
    } else {
        "ok"
    }
}

/// Renders the diffs as the per-bench verdict table `repro bench-diff`
/// prints: one line per bench, every bench judged (no bailing on the
/// first regression), verdicts in the last column.
pub fn render(diffs: &[SuiteDiff], fail_over_pct: Option<f64>) -> String {
    let mut out = String::new();
    for diff in diffs {
        out.push_str(&format!("== BENCH_{} ==\n", diff.suite));
        for d in &diff.deltas {
            out.push_str(&format!(
                "{:48} {:>14} -> {:>14}  {:>+8.1}%  {}\n",
                d.id,
                format_ns(d.baseline_ns),
                format_ns(d.current_ns),
                d.relative() * 100.0,
                verdict(d, fail_over_pct),
            ));
        }
        for id in &diff.only_current {
            out.push_str(&format!("{id:48} (new, no baseline)\n"));
        }
        for id in &diff.only_baseline {
            out.push_str(&format!("{id:48} (baseline only — removed?)\n"));
        }
        out.push('\n');
    }
    out
}

/// Every `(suite, bench)` regressed past the limit, across all suites.
pub fn regressions_over(diffs: &[SuiteDiff], limit_pct: f64) -> Vec<(String, BenchDelta)> {
    diffs
        .iter()
        .flat_map(|d| {
            d.deltas
                .iter()
                .filter(|x| x.relative() * 100.0 > limit_pct)
                .map(|x| (d.suite.clone(), x.clone()))
        })
        .collect()
}

/// The worst (most positive) relative regression across all suites.
pub fn worst_regression(diffs: &[SuiteDiff]) -> f64 {
    diffs
        .iter()
        .flat_map(|d| d.deltas.iter())
        .map(|d| d.relative())
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_report(dir: &Path, suite: &str, rows: &[(&str, f64)]) {
        let benches: Vec<String> = rows
            .iter()
            .map(|(id, ns)| format!(r#"{{"id":"{id}","median_ns":{ns}.0}}"#))
            .collect();
        let text = format!(r#"{{"suite":"{suite}","benches":[{}]}}"#, benches.join(","));
        std::fs::write(dir.join(format!("BENCH_{suite}.json")), text).unwrap();
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wasla-diff-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn matches_benches_and_flags_new_and_removed() {
        let base = temp_dir("base");
        let cur = temp_dir("cur");
        write_report(&base, "x", &[("a", 100.0), ("gone", 5.0)]);
        write_report(&cur, "x", &[("a", 150.0), ("fresh", 7.0)]);
        let diffs = diff_dirs(&base, &cur).unwrap();
        assert_eq!(diffs.len(), 1);
        let d = &diffs[0];
        assert_eq!(d.suite, "x");
        assert_eq!(d.deltas.len(), 1);
        assert!((d.deltas[0].relative() - 0.5).abs() < 1e-12);
        assert_eq!(d.only_current, vec!["fresh"]);
        assert_eq!(d.only_baseline, vec!["gone"]);
        assert!((worst_regression(&diffs) - 0.5).abs() < 1e-12);
        let table = render(&diffs, None);
        assert!(table.contains("+50.0%"), "{table}");
        assert!(table.contains("no baseline"));
        assert!(table.contains("slower"), "advisory verdict: {table}");
        let gated = render(&diffs, Some(25.0));
        assert!(gated.contains("FAIL"), "gated verdict: {gated}");
        let over = regressions_over(&diffs, 25.0);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].1.id, "a");
        assert!(regressions_over(&diffs, 60.0).is_empty());
        assert_eq!(
            verdict(
                &BenchDelta {
                    id: "fast".into(),
                    baseline_ns: 100.0,
                    current_ns: 50.0
                },
                Some(25.0)
            ),
            "faster"
        );
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&cur);
    }

    #[test]
    fn missing_baseline_dir_reports_all_as_new() {
        let cur = temp_dir("nobase");
        write_report(&cur, "y", &[("a", 1.0)]);
        let diffs = diff_dirs(Path::new("/nonexistent-wasla-baselines"), &cur).unwrap();
        assert_eq!(diffs[0].only_current, vec!["a"]);
        assert!(diffs[0].deltas.is_empty());
        let _ = std::fs::remove_dir_all(&cur);
    }
}
