//! Experiment harness for the WASLA paper reproduction.
//!
//! Every table and figure of the paper's evaluation (§2, §6) has a
//! regenerating experiment here, invoked by the `repro` binary:
//!
//! | id      | paper artifact | module |
//! |---------|----------------|--------|
//! | `fig1`  | Figure 1 + §2 narrative | [`layouts`] |
//! | `fig8`  | Figure 8 cost-model slice | [`models`] |
//! | `fig11` | Figure 11 homogeneous execution times | [`runs`] |
//! | `fig12` | Figure 12 OLAP8-63 layout | [`layouts`] |
//! | `fig13` | Figure 13 stage utilizations | [`models`] |
//! | `fig14` | Figure 14 solver (non-regular) layouts | [`layouts`] |
//! | `fig15` | Figure 15 consolidation performance | [`runs`] |
//! | `fig16` | Figure 16 consolidation layout | [`layouts`] |
//! | `fig17` | Figure 17 heterogeneous targets | [`runs`] |
//! | `fig18` | Figure 18 SSD capacities | [`runs`] |
//! | `fig19` | Figure 19 advisor timing scaling | [`scaling`] |
//! | `fig20` | Figure 20 + §6.6 AutoAdmin comparison | [`autoadmin`] |
//!
//! plus the DESIGN.md §5 ablations in [`ablations`].
//!
//! Experiments run at a configurable scale (default 5% of the paper's
//! data sizes — the simulated *shapes* are scale-invariant, wall-clock
//! isn't). Results print as text tables and are returned as
//! serializable records so `repro all` can archive them.

pub mod ablations;
pub mod autoadmin;
pub mod common;
pub mod diff;
pub mod drift;
pub mod future_work;
pub mod harness;
pub mod layouts;
pub mod models;
pub mod runs;
pub mod scaling;
pub mod validation;

pub use common::{ExpConfig, ExperimentResult, Row};
