//! Model-validation experiments (beyond the paper's figures).
//!
//! * [`validate_eq1`] — checks the utilization law the whole advisor
//!   rests on (paper Eq. 1: `µ = λ · Cost`): drive a simulated disk
//!   open-loop at known rates/run counts and compare the measured busy
//!   fraction against the calibrated model's prediction.
//! * [`estimator_input`] — compares the paper's two input paths
//!   (§5.1): trace-and-fit (Rubicon) vs. the analytic storage-workload
//!   estimator (their citation \[19\], "may be less accurate"), by
//!   advising from each and measuring both recommendations.

use crate::common::{advise, advise_config, run_settings, ExpConfig, ExperimentResult, Row};
use wasla::exec::{run_open_loop, OpenStream};
use wasla::model::{calibrate_device, CostModel};
use wasla::pipeline::{self, Scenario, DISK_BYTES};
use wasla::storage::{DeviceSpec, DiskParams, IoKind, StorageSystem, TargetConfig};
use wasla::workload::estimator::{estimate, EstimatorConfig};
use wasla::workload::{SqlWorkload, WorkloadSpec};

/// Eq. 1 validation: predicted vs measured utilization for a single
/// uncontended stream across a (rate, run-count) grid.
pub fn validate_eq1(config: &ExpConfig) -> ExperimentResult {
    let capacity = (DISK_BYTES * config.scale.max(0.05)) as u64;
    let spec = DeviceSpec::Disk(DiskParams::scsi_15k(capacity));
    let model = calibrate_device(&spec, &advise_config(config).grid, config.seed);
    let mut rows = Vec::new();
    let mut total_abs_err = 0.0;
    let mut points = 0usize;
    for &run in &[1.0f64, 8.0, 64.0] {
        for &rate in &[20.0f64, 60.0, 120.0] {
            let size = if run > 1.0 { 131072.0 } else { 8192.0 };
            let wspec = WorkloadSpec {
                read_size: size,
                write_size: size,
                read_rate: rate,
                write_rate: 0.0,
                run_count: run,
                overlaps: vec![],
            };
            let predicted = (rate * model.request_cost(IoKind::Read, size, run, 0.0)).min(1.0);
            let mut storage =
                StorageSystem::new(vec![TargetConfig::single("d0", spec.clone())], config.seed);
            let streams = [OpenStream {
                spec: wspec,
                target: 0,
                start: 0,
                span: capacity - capacity / 8,
                stream: 0,
            }];
            let report = run_open_loop(&mut storage, &streams, 120.0, config.seed);
            let measured = report.target_utilization[0].min(1.0);
            let err = (predicted - measured).abs();
            total_abs_err += err;
            points += 1;
            rows.push(Row::new(
                format!("run{run:.0} rate{rate:.0}"),
                vec![
                    ("predicted_util", predicted),
                    ("measured_util", measured),
                    ("abs_err", err),
                ],
            ));
        }
    }
    let text = format!(
        "mean absolute utilization error over {points} grid points: {:.3}\n",
        total_abs_err / points as f64
    );
    ExperimentResult {
        id: "validate-eq1".into(),
        title: "utilization law µ = λ·Cost vs open-loop measurement".into(),
        rows,
        text,
    }
}

/// Page-granular consolidation: re-runs the paper's §6.3 scenario with
/// every request capped at the 8 KiB page size the paper's PostgreSQL
/// actually issued (no OS merging). This isolates the root cause of
/// the fig15 deviation documented in EXPERIMENTS.md: with page-granular
/// accounting, scan request *rates* are high enough for the min-max
/// utilization objective to see the scan/OLTP interference, and the
/// advisor separates LINEITEM from the TPC-C traffic as the paper's
/// Figure 16 does.
pub fn fig15_pagesize(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::consolidation(config.scale);
    let workloads = [
        SqlWorkload::olap1_21(config.seed).with_request_sizes(|r| r.min(8192)),
        SqlWorkload::oltp()
            .with_prefix("C_")
            .with_request_sizes(|r| r.min(8192)),
    ];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;
    let optimized = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec.final_layout(),
        &run_settings(config.seed),
    )
    .expect("validation run succeeds");
    let see_s = outcome.baseline_run.elapsed.as_secs();
    let opt_s = optimized.elapsed.as_secs();
    // LINEITEM / C_STOCK separation metric.
    let p = &outcome.problem;
    let li = p
        .workloads
        .names
        .iter()
        .position(|n| n == "LINEITEM")
        .expect("LINEITEM");
    let st = p
        .workloads
        .names
        .iter()
        .position(|n| n == "C_STOCK")
        .expect("C_STOCK");
    let layout = rec.final_layout();
    let shared: f64 = (0..p.m())
        .map(|j| layout.get(li, j).min(layout.get(st, j)))
        .sum();
    let rows = vec![
        Row::new(
            "SEE",
            vec![
                ("olap_elapsed_s", see_s),
                ("oltp_tpm", outcome.baseline_run.tpm),
            ],
        ),
        Row::new(
            "optimized",
            vec![
                ("olap_elapsed_s", opt_s),
                ("oltp_tpm", optimized.tpm),
                ("olap_speedup", see_s / opt_s),
                (
                    "tpm_ratio",
                    optimized.tpm / outcome.baseline_run.tpm.max(1e-9),
                ),
                ("lineitem_stock_shared", shared),
                (
                    "fell_back_to_see",
                    f64::from(u8::from(rec.fell_back_to_see)),
                ),
            ],
        ),
    ];
    ExperimentResult {
        id: "fig15-pagesize".into(),
        title: "consolidation with page-granular (8 KiB) I/O accounting".into(),
        rows,
        text: wasla::core::report::render_layout(&outcome.problem, rec.final_layout(), 12),
    }
}

/// §5.1 input-path comparison: trace-fitted vs analytically-estimated
/// workload descriptions, advising from each.
pub fn estimator_input(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap1_63(config.seed)];

    // Path A: trace and fit (the paper's primary path).
    let outcome = advise(config, &scenario, &workloads);
    let rec_trace = &outcome.recommendation;
    let run_trace = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec_trace.final_layout(),
        &run_settings(config.seed),
    )
    .expect("validation run succeeds");

    // Path B: analytic estimation from the catalog + SQL workload,
    // without running anything (the paper's [19]).
    let est_cfg = EstimatorConfig {
        scale: config.scale,
        ..EstimatorConfig::default()
    };
    let estimated = estimate(&scenario.catalog, &workloads[0], &est_cfg);
    let problem_b = pipeline::build_problem(&scenario, estimated, &advise_config(config).grid)
        .expect("problem builds");
    let rec_est = wasla::core::recommend(
        &problem_b,
        &wasla::core::AdvisorOptions {
            regularize: true,
            ..wasla::core::AdvisorOptions::default()
        },
    )
    .expect("estimator path succeeds");
    let run_est = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec_est.final_layout(),
        &run_settings(config.seed),
    )
    .expect("validation run succeeds");

    let see_s = outcome.baseline_run.elapsed.as_secs();
    let rows = vec![
        Row::new("SEE", vec![("elapsed_s", see_s)]),
        Row::new(
            "trace-fitted input",
            vec![
                ("elapsed_s", run_trace.elapsed.as_secs()),
                ("speedup", see_s / run_trace.elapsed.as_secs()),
            ],
        ),
        Row::new(
            "estimator input",
            vec![
                ("elapsed_s", run_est.elapsed.as_secs()),
                ("speedup", see_s / run_est.elapsed.as_secs()),
            ],
        ),
    ];
    let text = String::from(
        "paper §5.1: estimator-derived descriptions avoid tracing but \
         \"may be less accurate\"; compare the two speedups.\n",
    );
    ExperimentResult {
        id: "estimator-input".into(),
        title: "trace-fitted vs analytically-estimated workload inputs".into(),
        rows,
        text,
    }
}
