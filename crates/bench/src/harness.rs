//! A minimal wall-clock micro-benchmark harness.
//!
//! The four `harness = false` bench targets used to run on criterion;
//! this module provides the small slice of that API they need, built
//! on `std::time::Instant` only. Each sample times a calibrated number
//! of iterations and the suite reports the median over all samples,
//! which is robust to scheduler noise without criterion's statistical
//! machinery.
//!
//! Results are printed as a table and, unless disabled, written as
//! JSON to `results/BENCH_<suite>.json` so successive runs can be
//! diffed or tracked by tooling.
//!
//! Environment knobs:
//!
//! * `WASLA_BENCH_SAMPLES` — samples per benchmark (default 11).
//! * `WASLA_BENCH_TARGET_MS` — target wall time per sample (default
//!   100 ms); iteration counts are calibrated to hit this.
//! * `WASLA_BENCH_OUT` — output directory for the JSON report
//!   (default `results/` at the workspace root).
//! * `WASLA_BENCH_NO_OUT` — set to skip writing the JSON report.

use std::time::Instant;
use wasla::simlib::json::{Json, ToJson};

/// How many units of work one benchmark iteration processes; reported
/// as a rate alongside the timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements (requests, rows, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The wall-clock
/// harness times every routine call individually, so the hint only
/// exists for criterion API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to set up; batch freely.
    SmallInput,
    /// Inputs are expensive; keep batches small.
    LargeInput,
}

#[derive(Clone, Copy, Debug)]
struct Config {
    samples: u32,
    target_ms: f64,
}

impl Config {
    fn from_env() -> Self {
        let samples = std::env::var("WASLA_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(11u32)
            .max(1);
        let target_ms = std::env::var("WASLA_BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100.0f64)
            .max(1.0);
        Config { samples, target_ms }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id ("group/case" for grouped benches).
    pub id: String,
    /// Per-iteration nanoseconds, one value per sample.
    pub samples_ns: Vec<f64>,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
    /// Optional units of work per iteration.
    pub throughput: Option<Throughput>,
    /// Named per-iteration work counters (e.g. the eval engine's
    /// `EvalStats` entries), reported alongside the timing.
    pub counters: Vec<(String, f64)>,
}

impl BenchResult {
    /// Median per-iteration time in nanoseconds.
    pub fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(f64::total_cmp);
        let n = s.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    }

    fn min_ns(&self) -> f64 {
        self.samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    fn max_ns(&self) -> f64 {
        self.samples_ns.iter().cloned().fold(0.0, f64::max)
    }

    fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), self.id.to_json()),
            ("median_ns".to_string(), self.median_ns().to_json()),
            ("mean_ns".to_string(), self.mean_ns().to_json()),
            ("min_ns".to_string(), self.min_ns().to_json()),
            ("max_ns".to_string(), self.max_ns().to_json()),
            (
                "samples".to_string(),
                (self.samples_ns.len() as u64).to_json(),
            ),
            (
                "iters_per_sample".to_string(),
                self.iters_per_sample.to_json(),
            ),
        ];
        if let Some(tp) = self.throughput {
            let (key, units) = match tp {
                Throughput::Elements(n) => ("elements_per_sec", n),
                Throughput::Bytes(n) => ("bytes_per_sec", n),
            };
            let per_sec = units as f64 / (self.median_ns() * 1e-9);
            fields.push((key.to_string(), per_sec.to_json()));
        }
        if !self.counters.is_empty() {
            fields.push((
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }
}

/// Runs timed closures and collects per-iteration samples.
pub struct Bencher<'a> {
    config: &'a Config,
    samples_ns: Vec<f64>,
    iters: u64,
    counters: Vec<(String, f64)>,
}

impl Bencher<'_> {
    /// Attaches a named per-iteration work counter to the result
    /// (e.g. cost-model lookups per gradient call). Typically recorded
    /// from one instrumented call before or after the timed loop.
    pub fn counter(&mut self, name: impl Into<String>, value: f64) {
        self.counters.push((name.into(), value));
    }

    /// Times `f` in a tight loop, calibrating the iteration count so
    /// each sample lasts roughly the target wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let iters = self.calibrate(|| {
            std::hint::black_box(f());
        });
        for _ in 0..self.config.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9;
            self.samples_ns.push(ns / iters as f64);
        }
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let iters = {
            let input = setup();
            self.calibrate_once(|| {
                std::hint::black_box(routine(input));
            })
        };
        for _ in 0..self.config.samples {
            let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9;
            self.samples_ns.push(ns / iters as f64);
        }
        self.iters = iters;
    }

    /// Warmup + calibration for re-runnable closures: estimates the
    /// per-call cost and picks an iteration count near the target.
    fn calibrate(&self, mut f: impl FnMut()) -> u64 {
        let t0 = Instant::now();
        let mut calls = 0u64;
        loop {
            f();
            calls += 1;
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed > 0.02 || calls >= 1_000 {
                let per_call = elapsed / calls as f64;
                return self.iters_for(per_call);
            }
        }
    }

    /// Calibration from a single call, for consume-once closures.
    fn calibrate_once(&self, f: impl FnOnce()) -> u64 {
        let t0 = Instant::now();
        f();
        self.iters_for(t0.elapsed().as_secs_f64().max(1e-9))
    }

    fn iters_for(&self, per_call_s: f64) -> u64 {
        let target_s = self.config.target_ms * 1e-3;
        ((target_s / per_call_s).ceil() as u64).clamp(1, 100_000_000)
    }
}

/// The benchmark registry for one suite (one bench target).
pub struct Harness {
    suite: String,
    config: Config,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates the harness for a named suite, reading configuration
    /// from the environment.
    pub fn new(suite: impl Into<String>) -> Self {
        Harness {
            suite: suite.into(),
            config: Config::from_env(),
            results: Vec::new(),
        }
    }

    /// Measures one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnOnce(&mut Bencher)) {
        self.bench_with_throughput(id, None, f);
    }

    /// Opens a named group; cases inside report as `group/case`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn bench_with_throughput(
        &mut self,
        id: impl Into<String>,
        throughput: Option<Throughput>,
        f: impl FnOnce(&mut Bencher),
    ) {
        let id = id.into();
        let mut bencher = Bencher {
            config: &self.config,
            samples_ns: Vec::new(),
            iters: 0,
            counters: Vec::new(),
        };
        f(&mut bencher);
        let result = BenchResult {
            id: id.clone(),
            samples_ns: bencher.samples_ns,
            iters_per_sample: bencher.iters,
            throughput,
            counters: bencher.counters,
        };
        println!(
            "{:48} {:>14} /iter  (median of {}, {} iters/sample)",
            result.id,
            format_ns(result.median_ns()),
            result.samples_ns.len(),
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// Prints the summary and writes the JSON report.
    pub fn finish(self) {
        if self.results.is_empty() {
            return;
        }
        if std::env::var_os("WASLA_BENCH_NO_OUT").is_some() {
            return;
        }
        let dir = std::env::var("WASLA_BENCH_OUT")
            .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
        let report = Json::Obj(vec![
            ("suite".to_string(), self.suite.to_json()),
            (
                "samples_per_bench".to_string(),
                self.config.samples.to_json(),
            ),
            ("target_ms".to_string(), self.config.target_ms.to_json()),
            (
                "benches".to_string(),
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ]);
        let path = format!("{dir}/BENCH_{}.json", self.suite);
        if std::fs::create_dir_all(&dir).is_ok()
            && std::fs::write(&path, report.to_string_pretty()).is_ok()
        {
            eprintln!("bench report written to {path}");
        } else {
            eprintln!("bench report could not be written to {path}");
        }
    }
}

/// A group of related cases sharing a name prefix and throughput.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Declares the units of work per iteration for following cases.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Measures one case in the group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        self.harness.bench_with_throughput(full, self.throughput, f);
    }

    /// Ends the group (kept for criterion API parity).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares the `main` for a bench target: runs each registered
/// function against one [`Harness`] and writes the suite report.
#[macro_export]
macro_rules! bench_main {
    ($suite:literal, $($func:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::harness::Harness::new($suite);
            $($func(&mut harness);)+
            harness.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> Config {
        Config {
            samples: 5,
            target_ms: 1.0,
        }
    }

    #[test]
    fn median_of_samples() {
        let r = BenchResult {
            id: "x".into(),
            samples_ns: vec![5.0, 1.0, 3.0],
            iters_per_sample: 1,
            throughput: None,
            counters: vec![],
        };
        assert_eq!(r.median_ns(), 3.0);
        let even = BenchResult {
            id: "y".into(),
            samples_ns: vec![1.0, 2.0, 3.0, 10.0],
            iters_per_sample: 1,
            throughput: None,
            counters: vec![],
        };
        assert_eq!(even.median_ns(), 2.5);
    }

    #[test]
    fn bencher_iter_collects_samples() {
        let config = quiet_config();
        let mut b = Bencher {
            config: &config,
            samples_ns: Vec::new(),
            iters: 0,
            counters: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.iters >= 1);
        assert!(b.samples_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn bencher_iter_batched_runs_setup_per_iteration() {
        let config = quiet_config();
        let mut b = Bencher {
            config: &config,
            samples_ns: Vec::new(),
            iters: 0,
            counters: Vec::new(),
        };
        b.iter_batched(
            || vec![1u64, 2, 3],
            |v| v.into_iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples_ns.len(), 5);
    }

    #[test]
    fn result_json_includes_throughput_rate() {
        let r = BenchResult {
            id: "g/x".into(),
            samples_ns: vec![1000.0],
            iters_per_sample: 10,
            throughput: Some(Throughput::Elements(100)),
            counters: vec![("cost_model_calls".to_string(), 42.0)],
        };
        let j = r.to_json();
        // 100 elements per 1000 ns = 1e8 per second.
        use wasla::simlib::json::FromJson;
        let rate = f64::from_json(j.field("elements_per_sec").unwrap()).unwrap();
        assert!((rate - 1e8).abs() / 1e8 < 1e-9);
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1500.0), "1.500 us");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(3.2e9), "3.200 s");
    }
}
