//! Shared experiment plumbing.

use wasla::pipeline::{self, AdviseConfig, AdviseOutcome, RunSettings, Scenario};
use wasla::simlib::impl_json_struct;
use wasla::workload::SqlWorkload;

/// Global experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Scale factor relative to the paper's data sizes (1.0 = the full
    /// TPC-H SF5 / TPC-C SF90 databases and 18.4 GB disks).
    pub scale: f64,
    /// Base RNG seed for workload mixes and the simulator.
    pub seed: u64,
}

impl_json_struct!(ExpConfig { scale, seed });

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.05,
            seed: 11,
        }
    }
}

impl ExpConfig {
    /// Tiny configuration for smoke tests.
    pub fn smoke() -> Self {
        ExpConfig {
            scale: 0.01,
            seed: 11,
        }
    }
}

/// One labelled row of a result table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label ("OLAP1-63 SEE", "3-1 optimized", ...).
    pub label: String,
    /// Named metric values.
    pub metrics: Vec<(String, f64)>,
}

impl_json_struct!(Row { label, metrics });

impl Row {
    /// Builds a row.
    pub fn new(label: impl Into<String>, metrics: Vec<(&str, f64)>) -> Self {
        Row {
            label: label.into(),
            metrics: metrics
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Fetches a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// A completed experiment: rows plus free-form rendered text (layout
/// tables etc.).
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id ("fig11", ...).
    pub id: String,
    /// What the experiment reproduces.
    pub title: String,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rendered text artifacts (layout tables, notes).
    pub text: String,
}

impl_json_struct!(ExperimentResult {
    id,
    title,
    rows,
    text
});

impl ExperimentResult {
    /// Renders the result as a text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for row in &self.rows {
            out.push_str(&format!("{:label_w$}", row.label));
            for (k, v) in &row.metrics {
                out.push_str(&format!("  {k}={v:.3}"));
            }
            out.push('\n');
        }
        if !self.text.is_empty() {
            out.push('\n');
            out.push_str(&self.text);
        }
        out
    }

    /// Fetches a row by label.
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

/// Runs the full advise pipeline for a scenario + workloads at this
/// configuration (paper methodology: trace under SEE, fit, calibrate,
/// advise).
pub fn advise(config: &ExpConfig, scenario: &Scenario, workloads: &[SqlWorkload]) -> AdviseOutcome {
    pipeline::advise(scenario, workloads, &advise_config(config))
        .expect("experiment advise pipeline succeeds")
}

/// The advise configuration used by all experiments: full calibration
/// grid at paper scale, coarse for smoke scale.
pub fn advise_config(config: &ExpConfig) -> AdviseConfig {
    if config.scale < 0.02 {
        AdviseConfig::fast()
    } else {
        AdviseConfig::full()
    }
}

/// Standard validation-run settings.
pub fn run_settings(seed: u64) -> RunSettings {
    RunSettings {
        seed,
        ..RunSettings::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let r = Row::new("x", vec![("elapsed", 1.5), ("speedup", 2.0)]);
        assert_eq!(r.metric("elapsed"), Some(1.5));
        assert_eq!(r.metric("speedup"), Some(2.0));
        assert_eq!(r.metric("nope"), None);
    }

    #[test]
    fn render_contains_rows() {
        let res = ExperimentResult {
            id: "figX".into(),
            title: "test".into(),
            rows: vec![Row::new("a", vec![("v", 1.0)])],
            text: "layout".into(),
        };
        let s = res.render();
        assert!(s.contains("figX"));
        assert!(s.contains("v=1.000"));
        assert!(s.contains("layout"));
        assert!(res.row("a").is_some());
    }
}
