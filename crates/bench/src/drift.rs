//! `repro drift` — the online control-loop soak.
//!
//! Sweeps the daemon across four drift shapes on both paper catalogs
//! and enforces the bounded-cost contract on every run:
//!
//! * **rate-ramp** — request rate quadruples over the stream;
//! * **hotspot-rotation** — the read hotspot rotates through the
//!   catalog, so the best layout keeps changing;
//! * **object-growth** — one object's traffic share and touched span
//!   grow until it dominates;
//! * **target-failure** — hotspot rotation plus a target failing
//!   mid-stream, forcing an evacuation.
//!
//! Contract checks (any violation is a soak failure):
//!
//! * cumulative *voluntary* migration bytes never exceed the granted
//!   budget, for every prefix of ticks (`Σ admitted ≤ ticks ·
//!   budget`; carry-forward makes per-tick checks wrong, prefix sums
//!   right);
//! * after a target failure the final deployed layout holds no mass
//!   on the dead target, and the failure surfaced as a typed
//!   [`DegradedNote::DeviceFailed`];
//! * every run terminates with a decision for every pane the stream
//!   covers.

use wasla::daemon::{DaemonConfig, TargetFailure};
use wasla::pipeline::{AdviseConfig, DegradedNote, Scenario};
use wasla::simlib::time::SimTime;
use wasla::storage::IoKind;
use wasla::trace::oplog::{OpLog, OpRecord, WindowPlan};
use wasla::Service;

/// Stream length in seconds; panes are 2 s, so 12 ticks per run.
const TOTAL_S: f64 = 24.0;

#[derive(Clone, Copy)]
enum Shape {
    RateRamp,
    HotspotRotation,
    ObjectGrowth,
    TargetFailure,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::RateRamp => "rate-ramp",
            Shape::HotspotRotation => "hotspot-rotation",
            Shape::ObjectGrowth => "object-growth",
            Shape::TargetFailure => "target-failure",
        }
    }

    const ALL: [Shape; 4] = [
        Shape::RateRamp,
        Shape::HotspotRotation,
        Shape::ObjectGrowth,
        Shape::TargetFailure,
    ];
}

fn push(log: &mut OpLog, k: u64, t: f64, stream: u32, size: u64, span: u64) {
    let len = if k % 5 == 0 { 8192 } else { 131072 };
    let span = span.min(size).saturating_sub(len).max(1);
    log.push(OpRecord {
        kind: if k % 5 == 0 {
            IoKind::Write
        } else {
            IoKind::Read
        },
        stream,
        offset: (k.wrapping_mul(131072)) % span,
        len,
        issue: SimTime::from_secs(t),
        complete: SimTime::from_secs(t + 0.004),
    });
}

/// A deterministic synthetic stream with the requested drift shape.
fn synth(shape: Shape, sizes: &[u64]) -> OpLog {
    let n = sizes.len() as u64;
    let mut log = OpLog::new();
    let mut t = 0.0f64;
    let mut k = 0u64;
    while t < TOTAL_S {
        let frac = t / TOTAL_S;
        let (stream, span_frac, dt) = match shape {
            // Fixed hotspot, interarrival shrinking 40 ms → 10 ms.
            Shape::RateRamp => {
                let s = if k % 4 == 0 { k % n } else { 0 };
                (s, 1.0, 0.040 - 0.030 * frac)
            }
            // Hotspot rotates every 6 s; steady 50 ops/s.
            Shape::HotspotRotation | Shape::TargetFailure => {
                let hot = ((t / 6.0) as u64) % n;
                let s = if k % 4 == 0 { k % n } else { hot };
                (s, 1.0, 0.020)
            }
            // Object 0 takes a growing share of a growing span:
            // 1-in-10 of the ops at the start, 9-in-10 at the end.
            Shape::ObjectGrowth => {
                let p10 = 1 + (8.0 * frac) as u64;
                let s = if k % 10 < p10 { 0 } else { k % n };
                (s, 0.2 + 0.8 * frac, 0.020)
            }
        };
        let size = sizes[stream as usize];
        push(
            &mut log,
            k,
            t,
            stream as u32,
            size,
            (size as f64 * span_frac) as u64,
        );
        t += dt;
        k += 1;
    }
    log
}

struct SoakRun {
    case: String,
    ticks: usize,
    replans: usize,
    admitted: u64,
    forced: u64,
    deferred: u64,
    worst_drift: f64,
}

/// Runs the full sweep; `Err` carries the first contract violation.
pub fn drift_soak(scale: f64, full: bool) -> Result<String, String> {
    let config = if full {
        AdviseConfig::full()
    } else {
        AdviseConfig::fast()
    };
    let catalogs: [(&str, Scenario); 2] = [
        ("tpch", Scenario::homogeneous_disks(4, scale)),
        ("tpcc", Scenario::oltp_disks(scale)),
    ];
    let mut rows: Vec<SoakRun> = Vec::new();
    for (catalog_name, scenario) in catalogs {
        let sizes = scenario.catalog.sizes();
        let total: u64 = sizes.iter().sum();
        // Tight enough that migrations actually defer, loose enough
        // that the loop converges within the stream.
        let budget = (total / 32).max(1 << 20);
        for shape in Shape::ALL {
            let failures = match shape {
                Shape::TargetFailure => vec![TargetFailure { tick: 2, target: 0 }],
                _ => Vec::new(),
            };
            let daemon = DaemonConfig {
                window: WindowPlan {
                    pane_s: 2.0,
                    panes_per_window: 2,
                },
                drift_threshold: 0.10,
                budget_bytes_per_tick: budget,
                alpha: 0.0,
                carry_cap_ticks: 8,
                target_failures: failures.clone(),
            };
            let case = format!("{}/{}", shape.name(), catalog_name);
            let log = synth(shape, &sizes);
            let mut service = Service::new(scenario.seed);
            let report = service
                .run_loop(&log, &scenario, &config, &daemon)
                .map_err(|e| format!("{case}: daemon run failed: {e}"))?;

            if report.decisions.is_empty() {
                return Err(format!("{case}: the stream produced no ticks"));
            }
            let mut admitted = 0u64;
            for (i, d) in report.decisions.iter().enumerate() {
                admitted += d.admitted_bytes;
                let granted = budget.saturating_mul(i as u64 + 1);
                if admitted > granted {
                    return Err(format!(
                        "{case}: tick {}: cumulative voluntary bytes {admitted} \
                         exceed granted budget {granted}",
                        d.tick
                    ));
                }
            }
            for failure in &failures {
                if report.state.next_tick <= failure.tick {
                    return Err(format!("{case}: stream ended before the failure tick"));
                }
                for i in 0..report.state.deployed.n_objects() {
                    let mass = report.state.deployed.row(i)[failure.target];
                    if mass > 1e-9 {
                        return Err(format!(
                            "{case}: object {i} still holds {mass} of its mass \
                             on failed target {}",
                            failure.target
                        ));
                    }
                }
                let noted = report
                    .degraded
                    .iter()
                    .any(|n| matches!(n, DegradedNote::DeviceFailed { .. }));
                if !noted {
                    return Err(format!("{case}: target failure left no DeviceFailed note"));
                }
            }
            rows.push(SoakRun {
                case,
                ticks: report.decisions.len(),
                replans: report.decisions.iter().filter(|d| d.resolved).count(),
                admitted: report.state.admitted_bytes_total,
                forced: report.state.forced_bytes_total,
                deferred: report.decisions.iter().map(|d| d.deferred_bytes).sum(),
                worst_drift: report
                    .decisions
                    .iter()
                    .map(|d| d.drift_score)
                    .fold(f64::NEG_INFINITY, f64::max),
            });
        }
    }
    let mut out = String::new();
    out.push_str(&format!("# drift soak (scale {scale})\n"));
    out.push_str(
        "case                      ticks  replans  admitted(B)   forced(B)  deferred(B)  worst drift\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<24}  {:>5}  {:>7}  {:>11}  {:>10}  {:>11}  {:>+11.4}\n",
            r.case, r.ticks, r.replans, r.admitted, r.forced, r.deferred, r.worst_drift
        ));
    }
    out.push_str("budget and evacuation contracts held on every run\n");
    Ok(out)
}
