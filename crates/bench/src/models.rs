//! Cost-model and estimator experiments (paper Figures 8 and 13).

use crate::common::{advise, ExpConfig, ExperimentResult, Row};
use wasla::model::{calibrate_device, CalibrationGrid, CostModel};
use wasla::pipeline::{Scenario, DISK_BYTES};
use wasla::storage::{DeviceSpec, DiskParams, IoKind};
use wasla::workload::SqlWorkload;

/// Figure 8: one slice of the calibrated read cost model for the SCSI
/// disk — 8 KB read request cost as a function of the contention
/// factor, one curve per run count. The paper's shape: sequential
/// requests are far cheaper at low contention, the advantage survives
/// small contention and collapses quickly, and the random (run 1)
/// curve *decreases* gently as deeper queues help head scheduling.
pub fn fig8(config: &ExpConfig) -> ExperimentResult {
    let spec = DeviceSpec::Disk(DiskParams::scsi_15k((DISK_BYTES * config.scale) as u64));
    let model = calibrate_device(&spec, &CalibrationGrid::default(), config.seed);
    let chis = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let runs = [1.0, 4.0, 16.0, 64.0, 256.0];
    let mut rows = Vec::new();
    let mut text = String::from("8 KB read request cost (ms) vs contention factor:\n");
    text.push_str("run\\chi ");
    for chi in chis {
        text.push_str(&format!("{chi:>8.1}"));
    }
    text.push('\n');
    for run in runs {
        text.push_str(&format!("{run:>7} "));
        let mut metrics = Vec::new();
        for chi in chis {
            let cost_ms = model.request_cost(IoKind::Read, 8192.0, run, chi) * 1e3;
            text.push_str(&format!("{cost_ms:>8.3}"));
            metrics.push((format!("chi{chi}"), cost_ms));
        }
        text.push('\n');
        rows.push(Row {
            label: format!("run{run}"),
            metrics,
        });
    }
    ExperimentResult {
        id: "fig8".into(),
        title: "calibrated cost-model slice: 8 KB reads vs contention".into(),
        rows,
        text,
    }
}

/// Figure 13: predicted target utilizations at the four advisor stages
/// (SEE baseline, greedy initial, NLP solver, regularized) for the
/// OLAP1-63 and OLAP8-63 workloads. The paper's shape: initial layouts
/// are unbalanced, solver layouts very balanced and lower than SEE,
/// regularization disturbs balance only slightly.
pub fn fig13(config: &ExpConfig) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut text = String::new();
    for (name, workload) in [
        ("OLAP1-63", SqlWorkload::olap1_63(config.seed)),
        ("OLAP8-63", SqlWorkload::olap8_63(config.seed)),
    ] {
        let scenario = Scenario::homogeneous_disks(4, config.scale);
        let workloads = [workload];
        let outcome = advise(config, &scenario, &workloads);
        let rec = &outcome.recommendation;
        for stage in &rec.stages {
            rows.push(Row {
                label: format!("{name} {}", stage.stage),
                metrics: stage
                    .utilizations
                    .iter()
                    .enumerate()
                    .map(|(j, &u)| (format!("target{j}"), u))
                    .chain(std::iter::once(("max".to_string(), stage.max_utilization)))
                    .collect(),
            });
        }
        text.push_str(&format!("--- {name} ---\n"));
        text.push_str(&wasla::core::report::render_stages(
            &outcome.problem,
            &rec.stages,
        ));
        text.push('\n');
    }
    ExperimentResult {
        id: "fig13".into(),
        title: "estimated utilizations at each advisor stage".into(),
        rows,
        text,
    }
}
