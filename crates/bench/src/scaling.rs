//! Advisor-cost scaling experiment (paper Figure 19).
//!
//! The paper times the advisor on growing problems: the 20-object
//! OLAP8-63 workload on 4 targets, the 40-object consolidation
//! workload on 4/10/20/40 targets, and synthetic 80/120/160-object
//! problems built by replicating the consolidation workload
//! descriptions, on 10 targets. The findings to reproduce: the solver
//! dominates the regularization post-processing, and total time stays
//! in the interactive-tool range (the paper's largest case: ~10 min).

use crate::common::{advise, advise_config, ExpConfig, ExperimentResult, Row};
use std::sync::Arc;
use wasla::core::{recommend, AdvisorOptions, LayoutProblem};
use wasla::model::TargetCostModel;
use wasla::pipeline::{Scenario, DISK_BYTES, LVM_STRIPE};
use wasla::storage::{DeviceSpec, DiskParams, TargetConfig};
use wasla::workload::{replicate_problem, ObjectKind, SqlWorkload, WorkloadSet};

/// Builds a problem from a (possibly replicated) workload set on `m`
/// scaled disks, reusing one calibrated model.
fn disk_problem(
    config: &ExpConfig,
    workloads: WorkloadSet,
    kinds: Vec<ObjectKind>,
    m: usize,
) -> LayoutProblem {
    let disk = DeviceSpec::Disk(DiskParams::scsi_15k((DISK_BYTES * config.scale) as u64));
    let targets: Vec<TargetConfig> = (0..m)
        .map(|j| TargetConfig::single(format!("disk{j}"), disk.clone()))
        .collect();
    let grid = advise_config(config).grid;
    let model = Arc::new(
        TargetCostModel::from_target(&targets[0], &grid, config.seed)
            .expect("homogeneous disk target calibrates"),
    );
    LayoutProblem {
        kinds,
        capacities: targets.iter().map(|t| t.capacity()).collect(),
        target_names: targets.iter().map(|t| t.name.clone()).collect(),
        models: (0..m)
            .map(|_| model.clone() as Arc<dyn wasla::model::CostModel>)
            .collect(),
        workloads,
        stripe_size: LVM_STRIPE as f64,
        constraints: vec![],
    }
}

/// Figure 19: advisor execution time across problem sizes.
pub fn fig19(config: &ExpConfig) -> ExperimentResult {
    let mut rows = Vec::new();
    let advisor_opts = AdvisorOptions {
        regularize: true,
        ..AdvisorOptions::default()
    };

    // Case 1: OLAP8-63, N=20, M=4 — fitted via the standard pipeline.
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let outcome = advise(config, &scenario, &[SqlWorkload::olap8_63(config.seed)]);
    {
        let rec = &outcome.recommendation;
        rows.push(Row::new(
            "OLAP8-63 N=20 M=4",
            vec![
                ("solver_s", rec.timings.solver_s),
                ("regularize_s", rec.timings.regularize_s),
                ("total_s", rec.timings.total_s()),
            ],
        ));
    }

    // Consolidation workload descriptions: fit once, reuse.
    let cons = Scenario::consolidation(config.scale);
    let cons_workloads = [
        SqlWorkload::olap1_21(config.seed),
        SqlWorkload::oltp().with_prefix("C_"),
    ];
    let cons_outcome = advise(config, &cons, &cons_workloads);
    let kinds: Vec<ObjectKind> = cons.catalog.objects().iter().map(|o| o.kind).collect();

    // Case 2: consolidation (N=40) on M ∈ {4, 10, 20, 40} targets.
    for m in [4usize, 10, 20, 40] {
        let problem = disk_problem(config, cons_outcome.fitted.clone(), kinds.clone(), m);
        let rec = recommend(&problem, &advisor_opts).expect("recommend succeeds");
        rows.push(Row::new(
            format!("consolidation N=40 M={m}"),
            vec![
                ("solver_s", rec.timings.solver_s),
                ("regularize_s", rec.timings.regularize_s),
                ("total_s", rec.timings.total_s()),
            ],
        ));
    }

    // Case 3: replicated consolidation (N=80/120/160) on 10 targets.
    for k in [2usize, 3, 4] {
        let workloads = replicate_problem(&cons_outcome.fitted, k);
        let kinds_k: Vec<ObjectKind> = (0..k).flat_map(|_| kinds.iter().copied()).collect();
        let problem = disk_problem(config, workloads, kinds_k, 10);
        let rec = recommend(&problem, &advisor_opts).expect("recommend succeeds");
        rows.push(Row::new(
            format!("{k}xconsolidation N={} M=10", 40 * k),
            vec![
                ("solver_s", rec.timings.solver_s),
                ("regularize_s", rec.timings.regularize_s),
                ("total_s", rec.timings.total_s()),
            ],
        ));
    }

    // The finding the paper highlights: solver time dominates
    // regularization time.
    let solver_total: f64 = rows.iter().filter_map(|r| r.metric("solver_s")).sum();
    let reg_total: f64 = rows.iter().filter_map(|r| r.metric("regularize_s")).sum();
    let text = format!(
        "solver time total {solver_total:.2}s vs regularization total {reg_total:.2}s \
         (paper: solver dominates)\n"
    );
    ExperimentResult {
        id: "fig19".into(),
        title: "advisor execution time vs problem size".into(),
        rows,
        text,
    }
}
