//! Layout-rendering experiments (paper Figures 1, 12, 14, 16).

use crate::common::{advise, run_settings, ExpConfig, ExperimentResult, Row};
use wasla::core::report::render_layout;
use wasla::pipeline::{self, Scenario};
use wasla::workload::SqlWorkload;

/// Figure 1 + §2: the SEE and optimized layouts of the TPC-H objects
/// for OLAP1-63 on four homogeneous disks, with measured execution
/// times (paper: 40927 s vs 31879 s, 1.28×). The optimized layout
/// should separate LINEITEM and ORDERS, keep I_L_ORDERKEY away from
/// both, and co-locate TEMP_SPACE with ORDERS (rarely co-accessed).
pub fn fig1(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap1_63(config.seed)];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;
    let optimized = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec.final_layout(),
        &run_settings(config.seed),
    )
    .expect("validation run succeeds");
    let see_s = outcome.baseline_run.elapsed.as_secs();
    let opt_s = optimized.elapsed.as_secs();
    let mut text = String::new();
    text.push_str("--- baseline: stripe-everything-everywhere ---\n");
    text.push_str(&render_layout(
        &outcome.problem,
        &wasla::core::Layout::see(outcome.problem.n(), outcome.problem.m()),
        8,
    ));
    text.push_str("\n--- advisor-recommended layout ---\n");
    text.push_str(&render_layout(&outcome.problem, rec.final_layout(), 8));
    // The §2 structural observations, checked programmatically.
    let p = &outcome.problem;
    let li = p
        .workloads
        .names
        .iter()
        .position(|n| n == "LINEITEM")
        .expect("LINEITEM");
    let or = p
        .workloads
        .names
        .iter()
        .position(|n| n == "ORDERS")
        .expect("ORDERS");
    let layout = rec.final_layout();
    let shared: f64 = (0..p.m())
        .map(|j| layout.get(li, j).min(layout.get(or, j)))
        .sum();
    text.push_str(&format!(
        "\nLINEITEM/ORDERS shared fraction: {shared:.2} (paper: 0 — isolated)\n"
    ));
    ExperimentResult {
        id: "fig1".into(),
        title: "SEE vs optimized layout for OLAP1-63 (+ §2 execution times)".into(),
        rows: vec![
            Row::new("SEE", vec![("elapsed_s", see_s)]),
            Row::new(
                "optimized",
                vec![("elapsed_s", opt_s), ("speedup", see_s / opt_s)],
            ),
        ],
        text,
    }
}

/// Figure 12: the optimized regular layout for OLAP8-63 (the paper
/// notes LINEITEM is *not* completely isolated at concurrency 8, and
/// I_L_ORDERKEY/TEMP spread wider for balance).
pub fn fig12(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap8_63(config.seed)];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;
    let text = render_layout(&outcome.problem, rec.final_layout(), 8);
    ExperimentResult {
        id: "fig12".into(),
        title: "optimized layout for the OLAP8-63 workload".into(),
        rows: vec![Row::new(
            "layout",
            vec![
                (
                    "regular",
                    f64::from(u8::from(rec.final_layout().is_regular())),
                ),
                (
                    "fell_back_to_see",
                    f64::from(u8::from(rec.fell_back_to_see)),
                ),
            ],
        )],
        text,
    }
}

/// Figure 14: the *non-regular* layouts produced by the NLP solver for
/// OLAP1-63 and OLAP8-63 (before regularization) — balanced fractional
/// rows.
pub fn fig14(config: &ExpConfig) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut text = String::new();
    for (name, workload) in [
        ("OLAP1-63", SqlWorkload::olap1_63(config.seed)),
        ("OLAP8-63", SqlWorkload::olap8_63(config.seed)),
    ] {
        let scenario = Scenario::homogeneous_disks(4, config.scale);
        let workloads = [workload];
        let outcome = advise(config, &scenario, &workloads);
        let rec = &outcome.recommendation;
        let solver_stage = rec.stage("solver").expect("solver stage");
        // Balance quality of the fractional solution: spread of
        // predicted utilizations.
        let min = solver_stage
            .utilizations
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        rows.push(Row::new(
            name,
            vec![
                ("max_util", solver_stage.max_utilization),
                ("min_util", min),
                ("imbalance", solver_stage.max_utilization - min),
            ],
        ));
        text.push_str(&format!("--- {name} solver (non-regular) layout ---\n"));
        text.push_str(&render_layout(&outcome.problem, &rec.solver_layout, 8));
        text.push('\n');
    }
    ExperimentResult {
        id: "fig14".into(),
        title: "NLP solver layouts before regularization (balanced fractions)".into(),
        rows,
        text,
    }
}

/// Figure 16: the optimized regular layout of the 40 consolidated
/// TPC-H + TPC-C objects (paper: separates LINEITEM from the
/// non-sequential STOCK/CUSTOMER).
pub fn fig16(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::consolidation(config.scale);
    let workloads = [
        SqlWorkload::olap1_21(config.seed),
        SqlWorkload::oltp().with_prefix("C_"),
    ];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;
    let text = render_layout(&outcome.problem, rec.final_layout(), 12);
    ExperimentResult {
        id: "fig16".into(),
        title: "optimized layout of the consolidated TPC-H + TPC-C objects".into(),
        rows: vec![Row::new(
            "layout",
            vec![
                ("objects", outcome.problem.n() as f64),
                (
                    "regular",
                    f64::from(u8::from(rec.final_layout().is_regular())),
                ),
                (
                    "fell_back_to_see",
                    f64::from(u8::from(rec.fell_back_to_see)),
                ),
            ],
        )],
        text,
    }
}
