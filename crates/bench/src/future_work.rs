//! Experiments for the paper's §8 future-work directions, implemented
//! in `wasla-core::{dynamic, configurator}`.

use crate::common::{advise, advise_config, run_settings, ExpConfig, ExperimentResult, Row};
use wasla::core::configurator::{configure, ResourcePool};
use wasla::core::dynamic::{readvise, DynamicOptions};
use wasla::core::AdvisorOptions;
use wasla::pipeline::{self, Scenario, DISK_BYTES, LVM_STRIPE};
use wasla::storage::{DeviceSpec, DiskParams};
use wasla::workload::{ObjectKind, SqlWorkload};

/// FlexVol-style dynamic allocation: objects grow over three steps;
/// the advisor re-optimizes warm-started from the deployed layout and
/// decides when migration pays (paper §8's "guide the storage system's
/// dynamic allocation decisions").
pub fn dynamic_growth(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap1_63(config.seed)];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;
    let mut problem = outcome.problem;
    let mut deployed = rec.final_layout().clone();
    let advisor_opts = AdvisorOptions {
        regularize: true,
        ..AdvisorOptions::default()
    };
    let mut rows = Vec::new();
    // Three growth steps: the two largest objects grow 40% per step —
    // eventually the deployed layout either becomes imbalanced or
    // stops fitting, and the advisor recommends a migration.
    for step in 1..=3 {
        let mut order: Vec<usize> = (0..problem.workloads.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(problem.workloads.sizes[i]));
        for &i in order.iter().take(2) {
            problem.workloads.sizes[i] = (problem.workloads.sizes[i] as f64 * 1.4) as u64;
            // Rates grow with the data too (more pages to scan).
            problem.workloads.specs[i].read_rate *= 1.4;
        }
        // A 5% predicted win justifies migration in this experiment
        // (the default 10% is deliberately conservative).
        let dyn_opts = DynamicOptions {
            migrate_threshold: 0.05,
        };
        let decision =
            readvise(&problem, &deployed, &advisor_opts, &dyn_opts).expect("readvise succeeds");
        rows.push(Row::new(
            format!("growth step {step}"),
            vec![
                ("migrate", f64::from(u8::from(decision.migrate))),
                ("migration_mb", decision.migration_bytes as f64 / 1e6),
                ("util_before", decision.current_max_utilization),
                ("util_after", decision.new_max_utilization),
            ],
        ));
        deployed = decision.layout;
    }
    ExperimentResult {
        id: "dynamic-growth".into(),
        title: "FlexVol-style incremental re-advising under data growth (§8)".into(),
        rows,
        text: String::new(),
    }
}

/// Configuration recommendation, validated: sweep the RAID groupings
/// of four disks for the OLAP8-63 workload, then *measure* the
/// advisor-predicted best and worst configurations in the simulator
/// (the step toward Minerva/DAD the paper sketches in §8).
pub fn config_sweep(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap8_63(config.seed)];
    let outcome = advise(config, &scenario, &workloads);
    let kinds: Vec<ObjectKind> = scenario.catalog.objects().iter().map(|o| o.kind).collect();
    let pool = ResourcePool {
        disks: vec![DeviceSpec::Disk(DiskParams::scsi_15k((DISK_BYTES * config.scale) as u64)); 4],
        standalone: vec![],
        stripe_unit: 256 * 1024,
    };
    let outcomes = configure(
        &outcome.fitted,
        &kinds,
        &pool,
        &advise_config(config).grid,
        LVM_STRIPE as f64,
        &AdvisorOptions {
            regularize: true,
            ..AdvisorOptions::default()
        },
        vec![],
        config.seed,
    );
    let mut rows = Vec::new();
    for (rank, o) in outcomes.iter().enumerate() {
        // Measure the first (predicted best) and last (predicted worst)
        // configurations; prediction-only for the middle ones.
        let measured = if rank == 0 || rank + 1 == outcomes.len() {
            let mut run_scenario = scenario.clone();
            run_scenario.targets = o.targets.clone();
            let report = pipeline::run_with_layout(
                &run_scenario,
                &workloads,
                o.recommendation.final_layout(),
                &run_settings(config.seed),
            )
            .expect("validation run succeeds");
            report.elapsed.as_secs()
        } else {
            f64::NAN
        };
        let mut metrics = vec![("predicted_max_util", o.predicted_max_utilization)];
        if measured.is_finite() {
            metrics.push(("measured_elapsed_s", measured));
        }
        rows.push(Row::new(format!("config {}", o.label), metrics));
    }
    let text = format!(
        "{} configurations evaluated; best and worst also measured by simulation.\n",
        outcomes.len()
    );
    ExperimentResult {
        id: "config-sweep".into(),
        title: "storage-configuration recommendation over RAID groupings (§8)".into(),
        rows,
        text,
    }
}
