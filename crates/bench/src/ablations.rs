//! Ablation experiments for the design choices DESIGN.md §5 calls out.

use crate::common::{advise, advise_config, run_settings, ExpConfig, ExperimentResult, Row};
use std::sync::Arc;
use std::time::Instant;
use wasla::core::{
    initial_layout, recommend, solve_nlp, weighted_max, AdvisorOptions, ObjectiveKind, SolveMethod,
    SolverOptions, UtilizationEstimator,
};
use wasla::model::AnalyticDiskModel;
use wasla::pipeline::{self, Scenario, DISK_BYTES, SSD_BYTES};
use wasla::storage::DiskParams;
use wasla::workload::SqlWorkload;

/// Ablation: projected-gradient NLP solve vs the DAD-style randomized
/// local search the paper's §7 mentions as the alternative — layout
/// quality (predicted max utilization) and solve time.
pub fn ablation_solver(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap1_63(config.seed)];
    let outcome = advise(config, &scenario, &workloads);
    let problem = &outcome.problem;
    let initial = initial_layout(problem).expect("initial layout");
    let mut rows = Vec::new();
    for (name, method) in [
        ("projected-gradient", SolveMethod::ProjectedGradient),
        ("simulated-annealing", SolveMethod::Anneal),
    ] {
        let opts = SolverOptions {
            method,
            ..SolverOptions::default()
        };
        let t0 = Instant::now();
        let out = solve_nlp(problem, &initial, &opts);
        let dt = t0.elapsed().as_secs_f64();
        rows.push(Row::new(
            name,
            vec![
                ("max_util", out.max_utilization),
                ("solve_s", dt),
                ("converged", f64::from(u8::from(out.converged))),
            ],
        ));
    }
    ExperimentResult {
        id: "ablation-solver".into(),
        title: "NLP solve vs randomized local search".into(),
        rows,
        text: String::new(),
    }
}

/// Ablation: the multi-start policy. The paper's §4.2 observes SEE is
/// a local minimum the solver struggles to escape and seeds with the
/// rate-greedy layout instead; §4.1 sanctions repeating from multiple
/// starts.
pub fn ablation_starts(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::consolidation(config.scale);
    let workloads = [
        SqlWorkload::olap1_21(config.seed),
        SqlWorkload::oltp().with_prefix("C_"),
    ];
    let outcome = advise(config, &scenario, &workloads);
    let problem = &outcome.problem;
    let mut rows = Vec::new();
    for (name, random_starts, see_start) in [
        ("rate-greedy only", 0usize, false),
        ("rate-greedy + SEE", 0, true),
        ("full multistart", 2, false),
    ] {
        let mut opts = AdvisorOptions {
            regularize: true,
            random_starts,
            ..AdvisorOptions::default()
        };
        if see_start {
            opts.extra_starts
                .push(wasla::core::Layout::see(problem.n(), problem.m()));
        }
        let t0 = Instant::now();
        let rec = recommend(problem, &opts).expect("recommend succeeds");
        let dt = t0.elapsed().as_secs_f64();
        let final_max = rec.stages.last().expect("stages").max_utilization;
        rows.push(Row::new(
            name,
            vec![
                ("final_max_util", final_max),
                ("advise_s", dt),
                (
                    "fell_back_to_see",
                    f64::from(u8::from(rec.fell_back_to_see)),
                ),
            ],
        ));
    }
    ExperimentResult {
        id: "ablation-starts".into(),
        title: "initial-layout / multistart policy".into(),
        rows,
        text: String::new(),
    }
}

/// Ablation: the pluggable layout objective × target mix. Sweeps every
/// [`ObjectiveKind`] over three target mixes (all-HDD, all-SSD, and the
/// paper's 4-disks-plus-SSD two-tier setup) on both paper catalogs.
/// Each (catalog, mix) pair is traced/fitted/calibrated once; the
/// objectives then re-solve the same [`LayoutProblem`], so the rows
/// isolate what the objective changes: the weighted score it optimizes,
/// the raw max utilization it accepts in exchange, and solve time.
pub fn ablation_objectives(config: &ExpConfig) -> ExperimentResult {
    // Target mixes are catalog-independent: build them once from the
    // TPC-H constructors and graft them onto the OLTP scenario.
    let mixes = [
        (
            "all-hdd",
            Scenario::homogeneous_disks(4, config.scale).targets,
        ),
        (
            "all-ssd",
            Scenario::homogeneous_ssds(4, config.scale).targets,
        ),
        (
            "2-tier",
            Scenario::disks_plus_ssd(config.scale, SSD_BYTES).targets,
        ),
    ];
    let mut rows = Vec::new();
    for catalog in ["tpch", "tpcc"] {
        for (mix, targets) in &mixes {
            let (mut scenario, workloads) = match catalog {
                "tpch" => (
                    Scenario::homogeneous_disks(4, config.scale),
                    vec![SqlWorkload::olap1_21(config.seed)],
                ),
                _ => (
                    Scenario::oltp_disks(config.scale),
                    vec![SqlWorkload::oltp()],
                ),
            };
            scenario.targets = targets.clone();
            let mut cfg = advise_config(config);
            if catalog == "tpcc" {
                cfg.trace_run.max_time = Some(60.0);
            }
            let outcome = pipeline::advise(&scenario, &workloads, &cfg)
                .expect("experiment advise pipeline succeeds");
            let problem = &outcome.problem;
            let est = UtilizationEstimator::new(problem);
            for kind in ObjectiveKind::ALL {
                let opts = AdvisorOptions {
                    regularize: true,
                    solver: SolverOptions {
                        objective: kind,
                        ..SolverOptions::default()
                    },
                    ..AdvisorOptions::default()
                };
                let t0 = Instant::now();
                let rec = recommend(problem, &opts).expect("recommend succeeds");
                let dt = t0.elapsed().as_secs_f64();
                let layout = rec.final_layout();
                let utils = est.utilizations(layout);
                let weights = kind.weights(problem);
                rows.push(Row::new(
                    format!("{catalog}/{mix}/{}", kind.name()),
                    vec![
                        ("score", weighted_max(&utils, &weights)),
                        ("max_util", est.max_utilization(layout)),
                        ("solve_s", dt),
                        (
                            "fell_back_to_see",
                            f64::from(u8::from(rec.fell_back_to_see)),
                        ),
                    ],
                ));
            }
        }
    }
    ExperimentResult {
        id: "objectives".into(),
        title: "layout objective × target mix (both catalogs)".into(),
        rows,
        text: String::new(),
    }
}

/// Ablation: tabulated (calibrated) cost model vs the closed-form
/// analytic disk model — how well each predicts the utilizations the
/// simulator actually measures, under SEE and under the optimized
/// layout. The paper argues tabulation captures device behaviour that
/// analytic models miss (§5.2.2).
pub fn ablation_costmodel(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap1_63(config.seed)];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;

    // Analytic-model twin of the problem.
    let mut analytic = wasla::core::LayoutProblem {
        workloads: outcome.problem.workloads.clone(),
        kinds: outcome.problem.kinds.clone(),
        capacities: outcome.problem.capacities.clone(),
        target_names: outcome.problem.target_names.clone(),
        models: vec![],
        stripe_size: outcome.problem.stripe_size,
        constraints: vec![],
    };
    let disk = AnalyticDiskModel::new(DiskParams::scsi_15k((DISK_BYTES * config.scale) as u64));
    analytic.models = (0..4)
        .map(|_| Arc::new(disk.clone()) as Arc<dyn wasla::model::CostModel>)
        .collect();

    let mut rows = Vec::new();
    let see = wasla::core::Layout::see(outcome.problem.n(), 4);
    for (label, layout) in [("SEE", &see), ("optimized", rec.final_layout())] {
        let run =
            pipeline::run_with_layout(&scenario, &workloads, layout, &run_settings(config.seed))
                .expect("validation run succeeds");
        let measured = run.max_utilization();
        let tab = UtilizationEstimator::new(&outcome.problem).max_utilization(layout);
        let ana = UtilizationEstimator::new(&analytic).max_utilization(layout);
        rows.push(Row::new(
            label,
            vec![
                ("measured_max_util", measured),
                ("tabulated_pred", tab),
                ("analytic_pred", ana),
                ("tabulated_abs_err", (tab - measured).abs()),
                ("analytic_abs_err", (ana - measured).abs()),
            ],
        ));
    }
    ExperimentResult {
        id: "ablation-costmodel".into(),
        title: "tabulated vs analytic cost model: prediction accuracy".into(),
        rows,
        text: String::new(),
    }
}

/// Ablation: the Eq. 2 contention simplification — average-rate vs
/// busy-period-rate contention factors. The paper computes χ from
/// whole-trace average rates; for bursty workloads (an OLAP query mix
/// whose objects are idle most of the time) that misprices
/// interference. Rome's full language models burstiness; we fit duty
/// cycles from the trace and compare both χ variants for the hottest
/// co-located pairs under SEE in the consolidation scenario.
pub fn ablation_contention(config: &ExpConfig) -> ExperimentResult {
    use wasla::core::Layout;
    use wasla::trace::fit_duty_cycles;

    let scenario = Scenario::consolidation(config.scale);
    let workloads = [
        SqlWorkload::olap1_21(config.seed),
        SqlWorkload::oltp().with_prefix("C_"),
    ];
    // Re-run SEE with tracing to get both the fitted set and the trace.
    let mut settings = run_settings(config.seed);
    settings.capture_trace = true;
    let rows_see = wasla::exec::see_rows(scenario.catalog.len(), scenario.targets.len());
    let report = pipeline::run_layout(&scenario, &workloads, &rows_see, &settings)
        .expect("validation run succeeds");
    let trace = report.trace.as_ref().expect("trace requested");
    let fitted = wasla::trace::fit_workloads(
        trace,
        &scenario.catalog.names(),
        &scenario.catalog.sizes(),
        &wasla::trace::FitConfig::default(),
    )
    .expect("fit succeeds");
    let duty = fit_duty_cycles(trace, scenario.catalog.len(), 5.0).expect("duty cycles fit");
    let problem = pipeline::build_problem(
        &scenario,
        fitted,
        &crate::common::advise_config(config).grid,
    )
    .expect("problem builds");
    let est = UtilizationEstimator::new(&problem);
    let see = Layout::see(problem.n(), problem.m());

    let mut rows = Vec::new();
    for name in ["LINEITEM", "ORDERS", "TEMP_SPACE", "C_STOCK", "C_CUSTOMER"] {
        let i = problem
            .workloads
            .names
            .iter()
            .position(|n| n == name)
            .expect("object exists");
        let spec = &problem.workloads.specs[i];
        let own = spec.total_rate() / problem.m() as f64;
        if own <= 0.0 {
            continue;
        }
        let avg = est.contention(&see, i, 0, own);
        let busy = est.contention_with_duty(&see, i, 0, own, &duty);
        rows.push(Row::new(
            name,
            vec![
                ("chi_avg_rates", avg),
                ("chi_busy_rates", busy),
                ("duty_cycle", duty[i]),
            ],
        ));
    }
    let text = String::from(
        "bursty OLAP objects (low duty) see *lower* busy-rate χ against          continuous OLTP traffic, and vice versa — the average-rate          simplification (paper Eq. 2) overweights rare co-activity.
",
    );
    ExperimentResult {
        id: "ablation-contention".into(),
        title: "Eq. 2 contention: average rates vs busy-period rates".into(),
        rows,
        text,
    }
}

/// Ablation: what regularization costs — predicted objective of the
/// solver's fractional layout vs the regularized layout, and the
/// measured execution time of both (non-regular layouts are
/// implementable by mechanisms that support arbitrary fractions,
/// paper §4.3).
pub fn ablation_regularization(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap1_63(config.seed)];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;
    let est = UtilizationEstimator::new(&outcome.problem);
    let mut rows = Vec::new();
    for (label, layout) in [
        ("solver (non-regular)", &rec.solver_layout),
        ("regularized", rec.final_layout()),
    ] {
        let run =
            pipeline::run_with_layout(&scenario, &workloads, layout, &run_settings(config.seed))
                .expect("validation run succeeds");
        rows.push(Row::new(
            label,
            vec![
                ("predicted_max_util", est.max_utilization(layout)),
                ("elapsed_s", run.elapsed.as_secs()),
                ("regular", f64::from(u8::from(layout.is_regular()))),
            ],
        ));
    }
    ExperimentResult {
        id: "ablation-regularization".into(),
        title: "cost of regularizing the solver's fractional layout".into(),
        rows,
        text: String::new(),
    }
}
