//! Execution-time experiments (paper Figures 11, 15, 17, 18).

use crate::common::{advise, run_settings, ExpConfig, ExperimentResult, Row};
use wasla::core::baselines;
use wasla::pipeline::{self, RunSettings, Scenario};
use wasla::workload::SqlWorkload;

/// Figure 11: OLAP1-63 and OLAP8-63 execution times under SEE and the
/// optimized layout on four homogeneous disks (paper: 40927→31879 s =
/// 1.28×, 16201→13608 s = 1.19×).
pub fn fig11(config: &ExpConfig) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut text = String::new();
    for (name, workload) in [
        ("OLAP1-63", SqlWorkload::olap1_63(config.seed)),
        ("OLAP8-63", SqlWorkload::olap8_63(config.seed)),
    ] {
        let scenario = Scenario::homogeneous_disks(4, config.scale);
        let workloads = [workload];
        let outcome = advise(config, &scenario, &workloads);
        let rec = &outcome.recommendation;
        let optimized = pipeline::run_with_layout(
            &scenario,
            &workloads,
            rec.final_layout(),
            &run_settings(config.seed),
        )
        .expect("validation run succeeds");
        let see_s = outcome.baseline_run.elapsed.as_secs();
        let opt_s = optimized.elapsed.as_secs();
        rows.push(Row::new(format!("{name} SEE"), vec![("elapsed_s", see_s)]));
        rows.push(Row::new(
            format!("{name} optimized"),
            vec![("elapsed_s", opt_s), ("speedup", see_s / opt_s)],
        ));
        if rec.fell_back_to_see {
            text.push_str(&format!(
                "note: {name}: the advisor's model rates SEE as the best \
                 achievable layout for this workload (see EXPERIMENTS.md)\n"
            ));
        }
    }
    ExperimentResult {
        id: "fig11".into(),
        title: "homogeneous targets: workload execution times (SEE vs optimized)".into(),
        rows,
        text,
    }
}

/// Figure 15: the consolidation scenario — TPC-H OLAP1-21 and TPC-C
/// OLTP run together; measure OLAP wall-clock and OLTP tpm under SEE
/// and optimized (paper: 24416→17005 s = 1.43×; 304→360 tpmC = 1.18×).
pub fn fig15(config: &ExpConfig) -> ExperimentResult {
    let scenario = Scenario::consolidation(config.scale);
    let workloads = [
        SqlWorkload::olap1_21(config.seed),
        SqlWorkload::oltp().with_prefix("C_"),
    ];
    let outcome = advise(config, &scenario, &workloads);
    let rec = &outcome.recommendation;
    let optimized = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec.final_layout(),
        &run_settings(config.seed),
    )
    .expect("validation run succeeds");
    let see_s = outcome.baseline_run.elapsed.as_secs();
    let opt_s = optimized.elapsed.as_secs();
    let rows = vec![
        Row::new(
            "SEE",
            vec![
                ("olap_elapsed_s", see_s),
                ("oltp_tpm", outcome.baseline_run.tpm),
            ],
        ),
        Row::new(
            "optimized",
            vec![
                ("olap_elapsed_s", opt_s),
                ("oltp_tpm", optimized.tpm),
                ("olap_speedup", see_s / opt_s),
                (
                    "tpm_ratio",
                    optimized.tpm / outcome.baseline_run.tpm.max(1e-9),
                ),
            ],
        ),
    ];
    ExperimentResult {
        id: "fig15".into(),
        title: "consolidation scenario: OLAP time and OLTP throughput".into(),
        rows,
        text: wasla::core::report::render_layout(&outcome.problem, rec.final_layout(), 12),
    }
}

/// Figure 17: heterogeneous disk-only targets (3-1, 2-1-1, 1-1-1-1)
/// under OLAP8-63, with the administrator baselines of §6.4.
pub fn fig17(config: &ExpConfig) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut text = String::new();
    let scenarios: Vec<(&str, Scenario)> = vec![
        ("3-1", Scenario::config_3_1(config.scale)),
        ("2-1-1", Scenario::config_2_1_1(config.scale)),
        ("1-1-1-1", Scenario::homogeneous_disks(4, config.scale)),
    ];
    for (label, scenario) in scenarios {
        let workloads = [SqlWorkload::olap8_63(config.seed)];
        let outcome = advise(config, &scenario, &workloads);
        let rec = &outcome.recommendation;
        let see_s = outcome.baseline_run.elapsed.as_secs();
        rows.push(Row::new(format!("{label} SEE"), vec![("elapsed_s", see_s)]));
        // Administrator heuristics per §6.4: isolate tables on the big
        // target for 3-1; tables/indexes/temp three ways for 2-1-1.
        match label {
            "3-1" => {
                let l = baselines::isolate_tables(&outcome.problem, 0);
                if l.is_valid(
                    &outcome.problem.workloads.sizes,
                    &outcome.problem.capacities,
                ) {
                    let r = pipeline::run_with_layout(
                        &scenario,
                        &workloads,
                        &l,
                        &run_settings(config.seed),
                    )
                    .expect("validation run succeeds");
                    rows.push(Row::new(
                        "3-1 isolate-tables",
                        vec![("elapsed_s", r.elapsed.as_secs())],
                    ));
                }
            }
            "2-1-1" => {
                let l = baselines::isolate_tables_and_indexes(&outcome.problem, 0, 1, 2);
                if l.is_valid(
                    &outcome.problem.workloads.sizes,
                    &outcome.problem.capacities,
                ) {
                    let r = pipeline::run_with_layout(
                        &scenario,
                        &workloads,
                        &l,
                        &run_settings(config.seed),
                    )
                    .expect("validation run succeeds");
                    rows.push(Row::new(
                        "2-1-1 isolate-tables-and-indexes",
                        vec![("elapsed_s", r.elapsed.as_secs())],
                    ));
                }
            }
            _ => {}
        }
        let optimized = pipeline::run_with_layout(
            &scenario,
            &workloads,
            rec.final_layout(),
            &run_settings(config.seed),
        )
        .expect("validation run succeeds");
        let opt_s = optimized.elapsed.as_secs();
        rows.push(Row::new(
            format!("{label} optimized"),
            vec![("elapsed_s", opt_s), ("speedup_vs_see", see_s / opt_s)],
        ));
        text.push_str(&format!("--- {label} optimized layout ---\n"));
        text.push_str(&wasla::core::report::render_layout(
            &outcome.problem,
            rec.final_layout(),
            8,
        ));
    }
    ExperimentResult {
        id: "fig17".into(),
        title: "heterogeneous targets (OLAP8-63): baselines vs optimized".into(),
        rows,
        text,
    }
}

/// Figure 18: four disks plus an SSD of varying capacity (32/10/6/4 GB
/// at paper scale) under OLAP8-63: SEE, all-on-SSD where it fits, and
/// the optimized layout.
pub fn fig18(config: &ExpConfig) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut text = String::new();
    for ssd_gb in [32.0, 10.0, 6.0, 4.0] {
        let scenario = Scenario::disks_plus_ssd(config.scale, ssd_gb * 1e9);
        let workloads = [SqlWorkload::olap8_63(config.seed)];
        let outcome = advise(config, &scenario, &workloads);
        let rec = &outcome.recommendation;
        let see_s = outcome.baseline_run.elapsed.as_secs();
        rows.push(Row::new(
            format!("ssd{ssd_gb:.0}GB SEE"),
            vec![("elapsed_s", see_s)],
        ));
        let all_ssd = baselines::all_on_target(&outcome.problem, 4);
        if all_ssd.is_valid(
            &outcome.problem.workloads.sizes,
            &outcome.problem.capacities,
        ) {
            let r = pipeline::run_with_layout(
                &scenario,
                &workloads,
                &all_ssd,
                &run_settings(config.seed),
            )
            .expect("validation run succeeds");
            rows.push(Row::new(
                format!("ssd{ssd_gb:.0}GB all-on-ssd"),
                vec![("elapsed_s", r.elapsed.as_secs())],
            ));
        }
        let optimized = pipeline::run_with_layout(
            &scenario,
            &workloads,
            rec.final_layout(),
            &run_settings(config.seed),
        )
        .expect("validation run succeeds");
        let opt_s = optimized.elapsed.as_secs();
        rows.push(Row::new(
            format!("ssd{ssd_gb:.0}GB optimized"),
            vec![("elapsed_s", opt_s), ("speedup_vs_see", see_s / opt_s)],
        ));
        if (ssd_gb - 32.0).abs() < 1e-9 {
            text.push_str("--- 32 GB SSD optimized layout ---\n");
            text.push_str(&wasla::core::report::render_layout(
                &outcome.problem,
                rec.final_layout(),
                8,
            ));
        }
    }
    // Context row: the disk-only SEE number the paper compares the
    // 4 GB-SSD result against.
    let disk_only = Scenario::homogeneous_disks(4, config.scale);
    let workloads = [SqlWorkload::olap8_63(config.seed)];
    let see = pipeline::run_layout(
        &disk_only,
        &workloads,
        &wasla::exec::see_rows(disk_only.catalog.len(), 4),
        &RunSettings {
            seed: config.seed,
            ..RunSettings::default()
        },
    )
    .expect("validation run succeeds");
    rows.push(Row::new(
        "disk-only SEE (reference)",
        vec![("elapsed_s", see.elapsed.as_secs())],
    ));
    ExperimentResult {
        id: "fig18".into(),
        title: "SSD capacities (OLAP8-63): SEE vs all-on-SSD vs optimized".into(),
        rows,
        text,
    }
}
