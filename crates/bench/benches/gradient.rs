//! Analytic-vs-FD gradient micro-benchmarks (DESIGN.md §15).
//!
//! Three ways to compute the solver's LSE gradient on the same
//! block-sparse problems as the `solver` suite's `nlp_gradient` sweep:
//!
//! * `gradient_analytic` — one `EvalEngine::grad_at` pass (chain rule
//!   through `cost_with_grad`, zero objective probes);
//! * `gradient_fd_delta` — the incremental engine's structured finite
//!   differences (`lse_score_gradient`, the pre-§15 hot path);
//! * `gradient_fd_scratch` — from-scratch finite differences
//!   (`ScratchEval::lse_score_gradient`, the reference oracle).
//!
//! `ci/bench_diff.sh` gates `gradient_analytic` at ≥ 5× faster than
//! `gradient_fd_delta` on the gradient-heavy N=128, M=16 point — the
//! headline number for retiring FD from the hot path. The
//! `gradient_solve` group times complete `solve_nlp` runs under each
//! `GradPath` so the end-to-end improvement shows up in the same
//! report.

use std::hint::black_box;
use std::sync::Arc;
use wasla::core::{
    initial_layout, solve_nlp, EvalEngine, GradPath, LayoutProblem, ScratchEval, SolverOptions,
};
use wasla::model::{CostGrad, CostModel};
use wasla::storage::IoKind;
use wasla::workload::{ObjectKind, WorkloadSet, WorkloadSpec};
use wasla_bench::harness::Harness;

/// The `solver` suite's sweep model, plus an exact `cost_with_grad`:
/// contention-sensitive and cheap, so the benchmark measures the
/// gradient machinery (and the probe counts it saves) rather than
/// model arithmetic. Without the override the default FD fallback
/// would charge the analytic path six probes per cell and bury the
/// effect being measured.
struct SweepModel;

impl SweepModel {
    fn base(kind: IoKind) -> f64 {
        match kind {
            IoKind::Read => 0.004,
            IoKind::Write => 0.003,
        }
    }
}

impl CostModel for SweepModel {
    fn request_cost(&self, kind: IoKind, size: f64, run: f64, chi: f64) -> f64 {
        Self::base(kind) / run.max(1.0) + 0.002 * chi + size / 60e6 + 0.0002
    }

    fn cost_with_grad(&self, kind: IoKind, size: f64, run: f64, chi: f64) -> CostGrad {
        let base = Self::base(kind);
        CostGrad {
            value: self.request_cost(kind, size, run, chi),
            d_size: 1.0 / 60e6,
            // The run clamp pins the subgradient at the kink: open on
            // the differentiable side only (strictly above 1.0).
            d_run: if run > 1.0 { -base / (run * run) } else { 0.0 },
            d_contention: 0.002,
        }
    }
}

/// Block-sparse overlap structure, identical to the `solver` suite:
/// objects contend only within groups of 8, so cross-workload
/// contention terms are sparse the way traced catalogs are.
fn sweep_problem(n: usize, m: usize) -> LayoutProblem {
    const GROUP: usize = 8;
    let specs = (0..n)
        .map(|i| WorkloadSpec {
            read_size: 65536.0,
            write_size: 8192.0,
            read_rate: 20.0 + i as f64,
            write_rate: 2.0,
            run_count: 1.0 + (i % 7) as f64 * 9.0,
            overlaps: (0..n)
                .map(|k| {
                    if i != k && i / GROUP == k / GROUP {
                        0.5
                    } else {
                        0.0
                    }
                })
                .collect(),
        })
        .collect();
    LayoutProblem {
        workloads: WorkloadSet {
            names: (0..n).map(|i| format!("o{i}")).collect(),
            sizes: (0..n).map(|i| 1000 + 37 * i as u64).collect(),
            specs,
        },
        kinds: vec![ObjectKind::Table; n],
        capacities: vec![1 << 24; m],
        target_names: (0..m).map(|j| format!("t{j}")).collect(),
        models: (0..m).map(|_| Arc::new(SweepModel) as _).collect(),
        stripe_size: 1024.0 * 1024.0,
        constraints: vec![],
    }
}

const SWEEP_SIZES: [(usize, usize); 6] = [(8, 4), (8, 16), (32, 4), (32, 16), (128, 4), (128, 16)];
const SWEEP_TEMP: f64 = 0.05;
const SWEEP_FD: f64 = 1e-4;

/// One full objective gradient per iteration, three ways. Each bench
/// attaches the `EvalStats` delta of one instrumented call, so the
/// report shows *why* the analytic path wins: zero `grad_fd_probes`
/// against thousands.
fn bench_gradient_sweep(c: &mut Harness) {
    {
        let mut group = c.benchmark_group("gradient_analytic");
        for (n, m) in SWEEP_SIZES {
            let problem = sweep_problem(n, m);
            let x = vec![1.0 / m as f64; n * m];
            let mut engine = EvalEngine::new(&problem);
            engine.set_point(&x);
            let mut g = vec![0.0; n * m];
            let before = engine.stats;
            engine.grad_at(&x, SWEEP_TEMP, &mut g);
            let per_call = engine.stats.since(&before);
            group.bench_function(format!("n{n}_m{m}"), |b| {
                for (name, value) in per_call.entries() {
                    b.counter(name, value as f64);
                }
                b.iter(|| {
                    engine.grad_at(black_box(&x), SWEEP_TEMP, &mut g);
                    black_box(g[0])
                })
            });
        }
        group.finish();
    }
    {
        let mut group = c.benchmark_group("gradient_fd_delta");
        for (n, m) in SWEEP_SIZES {
            let problem = sweep_problem(n, m);
            let x = vec![1.0 / m as f64; n * m];
            let mut engine = EvalEngine::new(&problem);
            engine.set_point(&x);
            let mut g = vec![0.0; n * m];
            let before = engine.stats;
            engine.lse_score_gradient(&x, SWEEP_TEMP, SWEEP_FD, &mut g);
            let per_call = engine.stats.since(&before);
            group.bench_function(format!("n{n}_m{m}"), |b| {
                for (name, value) in per_call.entries() {
                    b.counter(name, value as f64);
                }
                b.iter(|| {
                    engine.lse_score_gradient(black_box(&x), SWEEP_TEMP, SWEEP_FD, &mut g);
                    black_box(g[0])
                })
            });
        }
        group.finish();
    }
    {
        let mut group = c.benchmark_group("gradient_fd_scratch");
        for (n, m) in SWEEP_SIZES {
            let problem = sweep_problem(n, m);
            let x = vec![1.0 / m as f64; n * m];
            let mut scratch = ScratchEval::new(&problem);
            let mut g = vec![0.0; n * m];
            let before = scratch.stats;
            scratch.lse_score_gradient(&x, SWEEP_TEMP, SWEEP_FD, &mut g);
            let per_call = scratch.stats.since(&before);
            group.bench_function(format!("n{n}_m{m}"), |b| {
                for (name, value) in per_call.entries() {
                    b.counter(name, value as f64);
                }
                b.iter(|| {
                    scratch.lse_score_gradient(black_box(&x), SWEEP_TEMP, SWEEP_FD, &mut g);
                    black_box(g[0])
                })
            });
        }
        group.finish();
    }
}

/// End-to-end: a complete default solve under each gradient path on
/// the mid-size sweep problem. The per-gradient win above must
/// translate into wall-clock solve time, or the optimisation is
/// theater; `ci/bench_diff.sh` reports this ratio in its verdict.
fn bench_solve_paths(c: &mut Harness) {
    let mut group = c.benchmark_group("gradient_solve");
    for (n, m) in [(32usize, 4usize), (128, 16)] {
        let problem = sweep_problem(n, m);
        let init = initial_layout(&problem).expect("sweep problem has ample capacity");
        for grad in GradPath::ALL {
            let opts = SolverOptions {
                grad,
                ..SolverOptions::default()
            };
            let stats = solve_nlp(&problem, &init, &opts).stats;
            group.bench_function(format!("{}_n{n}_m{m}", grad.name()), |b| {
                for (name, value) in stats.entries() {
                    b.counter(name, value as f64);
                }
                b.iter(|| black_box(solve_nlp(&problem, &init, &opts).score))
            });
        }
    }
    group.finish();
}

wasla_bench::bench_main!("gradient", bench_gradient_sweep, bench_solve_paths);
