//! Micro-benchmarks for the pluggable layout objective.
//!
//! The refactor routed the solver's hot loop through
//! `LayoutObjective` weights; the pre-refactor raw min-max entry
//! points (`lse_objective`/`lse_gradient`) are still exported, so
//! every run measures both paths on the same problems and
//! `ci/bench_diff.sh` gates the MinMax trait path at ≤ 1.05× raw
//! in-run (immune to machine drift, like the engine-vs-scratch gate).

use std::hint::black_box;
use std::sync::Arc;
use wasla::core::{
    initial_layout, solve_nlp, EvalEngine, LayoutProblem, ObjectiveKind, SolverOptions,
};
use wasla::model::CostModel;
use wasla::storage::{IoKind, Tier};
use wasla::workload::{ObjectKind, WorkloadSet, WorkloadSpec};
use wasla_bench::harness::Harness;

/// Analytic, contention-sensitive cost model carrying an explicit
/// tier, so the tier-weighted objectives see heterogeneous weights
/// while the arithmetic stays cheap enough to measure the evaluation
/// machinery rather than the model.
struct TieredSweepModel(Tier);
impl CostModel for TieredSweepModel {
    fn request_cost(&self, kind: IoKind, size: f64, run: f64, chi: f64) -> f64 {
        let base = match kind {
            IoKind::Read => 0.004,
            IoKind::Write => 0.003,
        };
        base / run.max(1.0) + 0.002 * chi + size / 60e6 + 0.0002
    }

    fn tier(&self) -> Tier {
        self.0.clone()
    }
}

/// Block-sparse overlap structure (groups of 8) on alternating
/// HDD/SSD targets — the same shape as the solver suite's sweep, with
/// tiers added so provision-cost and wear-blend weights differ per
/// target.
fn tiered_problem(n: usize, m: usize) -> LayoutProblem {
    const GROUP: usize = 8;
    let specs = (0..n)
        .map(|i| WorkloadSpec {
            read_size: 65536.0,
            write_size: 8192.0,
            read_rate: 20.0 + i as f64,
            write_rate: 2.0,
            run_count: 1.0 + (i % 7) as f64 * 9.0,
            overlaps: (0..n)
                .map(|k| {
                    if i != k && i / GROUP == k / GROUP {
                        0.5
                    } else {
                        0.0
                    }
                })
                .collect(),
        })
        .collect();
    LayoutProblem {
        workloads: WorkloadSet {
            names: (0..n).map(|i| format!("o{i}")).collect(),
            sizes: (0..n).map(|i| 1000 + 37 * i as u64).collect(),
            specs,
        },
        kinds: vec![ObjectKind::Table; n],
        capacities: vec![1 << 24; m],
        target_names: (0..m).map(|j| format!("t{j}")).collect(),
        models: (0..m)
            .map(|j| {
                let tier = if j % 2 == 0 { Tier::hdd() } else { Tier::ssd() };
                Arc::new(TieredSweepModel(tier)) as _
            })
            .collect(),
        stripe_size: 1024.0 * 1024.0,
        constraints: vec![],
    }
}

const SIZES: [(usize, usize); 2] = [(32, 4), (128, 4)];
const TEMP: f64 = 0.05;
const FD: f64 = 1e-4;

/// The solver's hot loop: the raw min-max LSE gradient vs the
/// weighted trait-path gradient under every objective, same problem,
/// same run. `objective_gradient/minmax_*` vs `objective_gradient/raw_*`
/// is the ≤ 1.05× refactor gate.
fn bench_objective_gradient(c: &mut Harness) {
    let mut group = c.benchmark_group("objective_gradient");
    for (n, m) in SIZES {
        let problem = tiered_problem(n, m);
        let x = vec![1.0 / m as f64; n * m];
        let mut g = vec![0.0; n * m];
        {
            let mut engine = EvalEngine::new(&problem);
            engine.set_point(&x);
            group.bench_function(format!("raw_n{n}_m{m}"), |b| {
                b.iter(|| {
                    engine.lse_gradient(black_box(&x), TEMP, FD, &mut g);
                    black_box(g[0])
                })
            });
        }
        for kind in ObjectiveKind::ALL {
            let mut engine = EvalEngine::with_objective(&problem, kind);
            engine.set_point(&x);
            group.bench_function(format!("{}_n{n}_m{m}", kind.name()), |b| {
                b.iter(|| {
                    engine.lse_score_gradient(black_box(&x), TEMP, FD, &mut g);
                    black_box(g[0])
                })
            });
        }
    }
    group.finish();
}

/// Full NLP solves from the rate-greedy start under each objective —
/// the end-to-end cost an advisor run pays for picking a non-default
/// objective.
fn bench_objective_solve(c: &mut Harness) {
    let (n, m) = (32, 4);
    let problem = tiered_problem(n, m);
    let init = initial_layout(&problem).expect("initial layout");
    let mut group = c.benchmark_group("objective_solve");
    for kind in ObjectiveKind::ALL {
        let opts = SolverOptions {
            objective: kind,
            ..SolverOptions::default()
        };
        group.bench_function(format!("{}_n{n}_m{m}", kind.name()), |b| {
            b.iter(|| black_box(solve_nlp(&problem, black_box(&init), &opts)))
        });
    }
    group.finish();
}

wasla_bench::bench_main!(
    "objectives",
    bench_objective_gradient,
    bench_objective_solve
);
