//! Benchmarks for the advisor pipeline itself — the paper's Figure 19
//! measures exactly this (solver vs regularization cost as the problem
//! grows); `repro fig19` reports wall-clock numbers, while this bench
//! gives statistically robust per-phase measurements on a fixed
//! problem.

use std::hint::black_box;
use std::sync::Arc;
use wasla::core::{
    initial_layout, recommend, regularize, solve_nlp, AdvisorOptions, LayoutProblem, SolverOptions,
    UtilizationEstimator,
};
use wasla::model::{calibrate_device, CalibrationGrid, CostModel, TableModel};
use wasla::simlib::SimRng;
use wasla::storage::{DeviceSpec, DiskParams, GIB};
use wasla::workload::{WorkloadSet, WorkloadSpec};
use wasla_bench::harness::Harness;

/// A synthetic layout problem with `n` objects on `m` disk targets,
/// deterministic but irregular (mixed rates, run counts, overlaps).
fn synthetic_problem(n: usize, m: usize, model: Arc<TableModel>) -> LayoutProblem {
    let mut rng = SimRng::new(42);
    let mut specs = Vec::with_capacity(n);
    for _ in 0..n {
        let seq = rng.chance(0.5);
        specs.push(WorkloadSpec {
            read_size: if seq { 131072.0 } else { 8192.0 },
            write_size: 8192.0,
            read_rate: rng.uniform_range(1.0, 120.0),
            write_rate: rng.uniform_range(0.0, 15.0),
            run_count: if seq {
                rng.uniform_range(16.0, 256.0)
            } else {
                1.0
            },
            overlaps: (0..n).map(|_| rng.uniform_range(0.0, 1.0)).collect(),
        });
    }
    LayoutProblem {
        workloads: WorkloadSet {
            names: (0..n).map(|i| format!("obj{i}")).collect(),
            sizes: (0..n).map(|_| rng.uniform_range(1e7, 4e8) as u64).collect(),
            specs,
        },
        kinds: (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    wasla::workload::ObjectKind::Index
                } else {
                    wasla::workload::ObjectKind::Table
                }
            })
            .collect(),
        capacities: vec![4 * GIB; m],
        target_names: (0..m).map(|j| format!("t{j}")).collect(),
        models: (0..m)
            .map(|_| model.clone() as Arc<dyn CostModel>)
            .collect(),
        stripe_size: 1024.0 * 1024.0,
        constraints: vec![],
    }
}

fn disk_model() -> Arc<TableModel> {
    Arc::new(calibrate_device(
        &DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
        &CalibrationGrid::coarse(),
        7,
    ))
}

fn bench_utilization_estimation(c: &mut Harness) {
    let model = disk_model();
    let problem = synthetic_problem(40, 4, model);
    let est = UtilizationEstimator::new(&problem);
    let layout = wasla::core::Layout::see(40, 4);
    c.bench_function("estimate_utilizations_n40_m4", |b| {
        b.iter(|| black_box(est.utilizations(black_box(&layout))))
    });
}

fn bench_solver_phase(c: &mut Harness) {
    let model = disk_model();
    let problem = synthetic_problem(20, 4, model);
    let initial = initial_layout(&problem).expect("initial");
    let opts = SolverOptions::default();
    c.bench_function("solve_nlp_n20_m4", |b| {
        b.iter(|| black_box(solve_nlp(&problem, &initial, &opts)))
    });
}

fn bench_regularization_phase(c: &mut Harness) {
    let model = disk_model();
    let problem = synthetic_problem(20, 4, model);
    let initial = initial_layout(&problem).expect("initial");
    let solved = solve_nlp(&problem, &initial, &SolverOptions::default());
    c.bench_function("regularize_n20_m4", |b| {
        b.iter(|| black_box(regularize(&problem, &solved.layout).expect("regularize")))
    });
}

fn bench_full_recommendation(c: &mut Harness) {
    let model = disk_model();
    let problem = synthetic_problem(20, 4, model);
    let opts = AdvisorOptions {
        regularize: true,
        ..AdvisorOptions::default()
    };
    c.bench_function("recommend_n20_m4", |b| {
        b.iter(|| black_box(recommend(&problem, &opts).expect("recommend")))
    });
}

wasla_bench::bench_main!(
    "advisor",
    bench_utilization_estimation,
    bench_solver_phase,
    bench_regularization_phase,
    bench_full_recommendation
);
