//! Daemon tick-cost benchmarks: what a no-drift tick costs versus a
//! full re-solve, plus the per-tick windowed-ingestion overhead.
//!
//! The control loop's economics rest on drift detection being cheap:
//! a quiet tick runs one `EvalEngine` pass over the deployed layout
//! (`detect_drift`), while a drifted tick pays for a warm-started
//! solve. `ci/bench_diff.sh` gates on the no-drift tick staying ≥50×
//! cheaper than the full re-solve (`results/BENCH_daemon.json`).

use std::hint::black_box;
use wasla::core::dynamic::detect_drift;
use wasla::core::recommend;
use wasla::pipeline::{assemble_problem, AdviseConfig, Scenario};
use wasla::simlib::SimTime;
use wasla::storage::IoKind;
use wasla::trace::oplog::{fit_oplog_streamed, OpLog, OpRecord, WindowPlan, DEFAULT_CHUNK};
use wasla_bench::harness::Harness;

/// A drifting synthetic stream, sized like one daemon observation
/// window's worth of history (24 s at 50 ops/s).
fn sample_log(sizes: &[u64]) -> OpLog {
    let n = sizes.len() as u64;
    let mut log = OpLog::new();
    for k in 0..1200u64 {
        let t = k as f64 * 0.02;
        let hot = ((t / 8.0) as u64) % n;
        let stream = if k % 4 == 0 { k % n } else { hot } as u32;
        let len = if k % 5 == 0 { 8192 } else { 131072 };
        let size = sizes[stream as usize];
        log.push(OpRecord {
            kind: if k % 5 == 0 {
                IoKind::Write
            } else {
                IoKind::Read
            },
            stream,
            offset: (k.wrapping_mul(131072)) % size.saturating_sub(len).max(1),
            len,
            issue: SimTime::from_secs(t),
            complete: SimTime::from_secs(t + 0.004),
        });
    }
    log
}

fn bench_daemon(c: &mut Harness) {
    let scenario = Scenario::homogeneous_disks(4, 0.01);
    let config = AdviseConfig::fast();
    let names = scenario.catalog.names();
    let sizes = scenario.catalog.sizes();
    let log = sample_log(&sizes);
    let fitted = fit_oplog_streamed(&log, &names, &sizes, &config.fit, DEFAULT_CHUNK)
        .expect("synthetic log fits");
    let mut session = wasla::AdvisorSession::new();
    let models = session
        .models_for(&scenario.targets, &config.grid, scenario.seed)
        .expect("targets calibrate");
    let problem = assemble_problem(&scenario, fitted, models, vec![]);
    let advisor = config.advisor.clone();
    let rec = recommend(&problem, &advisor).expect("baseline solve");
    let deployed = rec.final_layout().clone();
    // Score the deployed layout once to anchor the drift baseline.
    let baseline = detect_drift(&problem, &deployed, 1.0, 0.10).current_max_utilization;

    let mut group = c.benchmark_group("daemon");
    group.bench_function("no_drift_tick", |b| {
        b.iter(|| black_box(detect_drift(&problem, &deployed, baseline, 0.10)))
    });
    group.bench_function("full_resolve", |b| {
        b.iter(|| black_box(recommend(&problem, &advisor).expect("solve")))
    });
    let plan = WindowPlan {
        pane_s: 2.0,
        panes_per_window: 2,
    };
    group.bench_function("windowed_ingest", |b| {
        b.iter(|| {
            black_box(
                wasla::trace::oplog::windowed_workloads(&log, &names, &sizes, &config.fit, &plan)
                    .expect("windows fit"),
            )
        })
    });
    group.finish();
}

wasla_bench::bench_main!("daemon", bench_daemon);
