//! Benchmarks for the sessioned advise pipeline: what does a warm
//! [`AdvisorSession`] actually buy over a cold one?
//!
//! The session memoizes calibration tables and workload fits (see
//! DESIGN.md §Staged advisor pipeline). On a scenario whose device
//! types are already calibrated, a warm advise skips the dominant
//! cost of the cold path entirely, so `advise_warm` should beat
//! `advise_cold` by well over 2×; the cold/warm pair here makes that
//! claim a measured number in `results/BENCH_pipeline.json`.

use std::hint::black_box;
use wasla::model::CalibrationGrid;
use wasla::pipeline::{AdviseConfig, Scenario};
use wasla::workload::SqlWorkload;
use wasla::{AdviseRequest, AdvisorSession, Service};
use wasla_bench::harness::Harness;

/// Small scenario, cheap solver, high-fidelity calibration grid:
/// calibration dominates the cold path, which is exactly the regime a
/// long-lived advising service lives in (measure devices carefully
/// once, then advise many scenarios against the cached tables).
fn config() -> AdviseConfig {
    let mut config = AdviseConfig::fast();
    config.grid = CalibrationGrid {
        samples: 640,
        warmup: 48,
        ..CalibrationGrid::default()
    };
    config
}

fn scenario() -> Scenario {
    Scenario::homogeneous_disks(4, 0.01)
}

fn workloads() -> [SqlWorkload; 1] {
    [SqlWorkload::olap1_21(3)]
}

fn bench_cold_advise(c: &mut Harness) {
    let scenario = scenario();
    let workloads = workloads();
    let config = config();
    c.bench_function("advise_cold_n4", |b| {
        b.iter(|| {
            let mut session = AdvisorSession::new();
            black_box(
                session
                    .advise(&scenario, &workloads, &config)
                    .expect("cold advise succeeds"),
            )
        })
    });
}

fn bench_warm_advise(c: &mut Harness) {
    let scenario = scenario();
    let workloads = workloads();
    let config = config();
    let mut session = AdvisorSession::new();
    session
        .advise(&scenario, &workloads, &config)
        .expect("prewarm advise succeeds");
    c.bench_function("advise_warm_n4", |b| {
        b.iter(|| {
            black_box(
                session
                    .advise(&scenario, &workloads, &config)
                    .expect("warm advise succeeds"),
            )
        })
    });
}

fn bench_warm_batch(c: &mut Harness) {
    let requests: Vec<AdviseRequest> = vec![
        AdviseRequest::new(scenario(), vec![SqlWorkload::olap1_21(3)], config()),
        AdviseRequest::new(scenario(), vec![SqlWorkload::olap8_63(5)], config()),
    ];
    let mut service = Service::new(0xBE7C4);
    for outcome in service.advise_batch(&requests) {
        outcome.expect("prewarm batch succeeds");
    }
    c.bench_function("advise_batch_warm_2req", |b| {
        b.iter(|| {
            for outcome in black_box(service.advise_batch(&requests)) {
                outcome.expect("warm batch succeeds");
            }
        })
    });
}

wasla_bench::bench_main!(
    "pipeline",
    bench_cold_advise,
    bench_warm_advise,
    bench_warm_batch
);
