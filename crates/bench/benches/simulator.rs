//! Micro-benchmarks for the storage simulator substrate.

use std::hint::black_box;
use wasla::simlib::{SimRng, SimTime};
use wasla::storage::{
    device::DeviceModel, disk::Disk, DeviceSpec, DiskParams, StorageSystem, TargetConfig, TargetIo,
    GIB,
};
use wasla_bench::harness::{Harness, Throughput};

fn bench_disk_service_time(c: &mut Harness) {
    let mut group = c.benchmark_group("disk_service_time");
    group.bench_function("sequential", |b| {
        let mut disk = Disk::new(DiskParams::scsi_15k(18 * GIB));
        let mut rng = SimRng::new(1);
        let mut off = 0u64;
        b.iter(|| {
            let req = wasla::storage::request::DeviceIo {
                kind: wasla::storage::IoKind::Read,
                offset: off,
                len: 131072,
                stream: 0,
            };
            off = (off + 131072) % (17 * GIB);
            black_box(disk.service_time(&req, &mut rng))
        })
    });
    group.bench_function("random", |b| {
        let mut disk = Disk::new(DiskParams::scsi_15k(18 * GIB));
        let mut rng = SimRng::new(1);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let req = wasla::storage::request::DeviceIo {
                kind: wasla::storage::IoKind::Read,
                offset: (k * 7_919_999_983) % (17 * GIB),
                len: 8192,
                stream: 0,
            };
            black_box(disk.service_time(&req, &mut rng))
        })
    });
    group.finish();
}

fn bench_storage_system_throughput(c: &mut Harness) {
    let mut group = c.benchmark_group("storage_system");
    let batch = 10_000u64;
    group.throughput(Throughput::Elements(batch));
    group.bench_function("submit_drain_10k_requests_4_disks", |b| {
        b.iter(|| {
            let mut sys = StorageSystem::new(
                (0..4)
                    .map(|i| {
                        TargetConfig::single(
                            format!("d{i}"),
                            DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
                        )
                    })
                    .collect(),
                7,
            );
            for k in 0..batch {
                sys.submit(
                    SimTime::ZERO,
                    (k % 4) as usize,
                    TargetIo::read((k * 1_000_003) % (17 * GIB), 8192, 0),
                    k,
                );
            }
            black_box(sys.drain(SimTime::ZERO))
        })
    });
    group.finish();
}

fn bench_raid_translation(c: &mut Harness) {
    let target = TargetConfig::raid0(
        "r4",
        vec![DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)); 4],
        256 * 1024,
    );
    let io = TargetIo::read(1_000_000, 1_048_576, 3);
    c.bench_function("raid0_translate_1MiB", |b| {
        b.iter(|| black_box(target.translate(black_box(&io))))
    });
}

wasla_bench::bench_main!(
    "simulator",
    bench_disk_service_time,
    bench_storage_system_throughput,
    bench_raid_translation
);
