//! Op-log ingestion benchmarks: the streamed chunked reader vs the
//! materialize-then-fit path, at 1/2/4/8 threads.
//!
//! The streaming contract (DESIGN.md §12) says chunked ingestion
//! through `fit_oplog_streamed` is bit-identical to materializing the
//! trace and running `fit_workloads` — so the only thing allowed to
//! differ is wall-clock, and this suite records it
//! (`results/BENCH_ingest.json`). The parse benches time the strict
//! TSV reader, whose chunk fan-out also scales with the pool.
//!
//! Thread counts are pinned by setting `WASLA_THREADS` around each
//! case (the bench main is single-threaded, so the writes cannot race
//! a reader), same as the `par` suite.

use std::hint::black_box;
use wasla::simlib::SimTime;
use wasla::storage::{IoKind, GIB};
use wasla::trace::oplog::{fit_oplog_streamed, OpLog, OpRecord, DEFAULT_CHUNK};
use wasla::trace::{fit_workloads, FitConfig};
use wasla_bench::harness::Harness;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RECORDS: u64 = 40_000;
const OBJECTS: usize = 20;

fn with_threads(t: usize, f: impl FnOnce()) {
    std::env::set_var("WASLA_THREADS", t.to_string());
    f();
    std::env::remove_var("WASLA_THREADS");
}

/// A deterministic synthetic log: every object alternates sequential
/// runs with strided jumps, so the fitter's run detection and window
/// bookkeeping both do real work.
fn sample_log() -> OpLog {
    let mut log = OpLog::new();
    let mut offsets = vec![0u64; OBJECTS];
    for k in 0..RECORDS {
        let stream = (k % OBJECTS as u64) as u32;
        let o = &mut offsets[stream as usize];
        *o = if k % 7 == 0 {
            (*o + 48 * 1024 * 1024) % (2 * GIB)
        } else {
            (*o + 65536) % (2 * GIB)
        };
        let issue = SimTime::from_secs(k as f64 * 0.001);
        log.push(OpRecord {
            kind: if k % 5 == 0 {
                IoKind::Write
            } else {
                IoKind::Read
            },
            stream,
            offset: *o,
            len: 65536,
            issue,
            complete: SimTime::from_secs(k as f64 * 0.001 + 0.004),
        });
    }
    log
}

fn catalog() -> (Vec<String>, Vec<u64>) {
    (
        (0..OBJECTS).map(|i| format!("obj{i}")).collect(),
        vec![2 * GIB; OBJECTS],
    )
}

fn bench_streamed(c: &mut Harness) {
    let log = sample_log();
    let (names, sizes) = catalog();
    let config = FitConfig::default();
    let mut group = c.benchmark_group("oplog_ingest_streamed");
    for t in THREAD_COUNTS {
        with_threads(t, || {
            group.bench_function(format!("threads{t}"), |b| {
                b.iter(|| {
                    black_box(
                        fit_oplog_streamed(&log, &names, &sizes, &config, DEFAULT_CHUNK)
                            .expect("streamed fit succeeds"),
                    )
                })
            });
        });
    }
    group.finish();
}

fn bench_materialized(c: &mut Harness) {
    let log = sample_log();
    let (names, sizes) = catalog();
    let config = FitConfig::default();
    let mut group = c.benchmark_group("oplog_ingest_materialized");
    for t in THREAD_COUNTS {
        with_threads(t, || {
            group.bench_function(format!("threads{t}"), |b| {
                b.iter(|| {
                    black_box(
                        fit_workloads(&log.to_trace(), &names, &sizes, &config)
                            .expect("materialized fit succeeds"),
                    )
                })
            });
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Harness) {
    let text = sample_log().to_tsv();
    let mut group = c.benchmark_group("oplog_parse_strict");
    for t in THREAD_COUNTS {
        with_threads(t, || {
            group.bench_function(format!("threads{t}"), |b| {
                b.iter(|| black_box(OpLog::parse_tsv(&text).expect("log parses")))
            });
        });
    }
    group.finish();
}

wasla_bench::bench_main!("ingest", bench_streamed, bench_materialized, bench_parse);
