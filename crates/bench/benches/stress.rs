//! Fleet-scale stress benchmarks: synthetic tenant generation
//! throughput, the cost of one warm advise tick, and the price of an
//! admission rejection.
//!
//! The rejected-vs-served ratio is gated in `ci/bench_diff.sh`:
//! admission control must stay nearly free (a shed request does no
//! calibration, no trace run, no solve), which is what makes
//! load-shedding a defense rather than another source of load.

use std::hint::black_box;
use wasla::stress::{self, StressOptions};
use wasla::workload::synth::{self, SynthSpec};
use wasla::{BatchPolicy, Service};
use wasla_bench::harness::{Harness, Throughput};

const TICK: usize = 8;

fn tick_requests(spec: &SynthSpec) -> Vec<wasla::AdviseRequest> {
    let targets = stress::fleet(spec);
    (0..TICK as u64)
        .map(|i| stress::tenant_request(spec, &targets, i))
        .collect()
}

fn bench_generate(c: &mut Harness) {
    let spec = SynthSpec {
        tenants: 256,
        ..SynthSpec::default()
    };
    let mut group = c.benchmark_group("stress");
    group.throughput(Throughput::Elements(spec.tenants as u64));
    group.bench_function("generate_256", |b| {
        b.iter(|| black_box(synth::generate(black_box(&spec)).expect("valid spec")))
    });
    group.finish();
}

fn bench_served_tick(c: &mut Harness) {
    let opts = StressOptions::default();
    let requests = tick_requests(&opts.spec);
    let mut service = Service::new(opts.service_seed);
    // Warm the calibration and fit caches once; the steady-state tick
    // is the quantity a capacity planner budgets against.
    service.advise_batch_with(&requests, &opts.policy);
    let mut group = c.benchmark_group("stress");
    group.throughput(Throughput::Elements(TICK as u64));
    group.bench_function("tick_served_b8", |b| {
        b.iter(|| black_box(service.advise_batch_with(&requests, &opts.policy)))
    });
    group.finish();
}

fn bench_rejected_tick(c: &mut Harness) {
    let opts = StressOptions::default();
    let requests = tick_requests(&opts.spec);
    let policy = BatchPolicy {
        queue_capacity: Some(0),
        ..BatchPolicy::default()
    };
    let mut service = Service::new(opts.service_seed);
    let mut group = c.benchmark_group("stress");
    group.throughput(Throughput::Elements(TICK as u64));
    group.bench_function("tick_rejected_b8", |b| {
        b.iter(|| black_box(service.advise_batch_with(&requests, &policy)))
    });
    group.finish();
}

wasla_bench::bench_main!(
    "stress",
    bench_generate,
    bench_served_tick,
    bench_rejected_tick
);
