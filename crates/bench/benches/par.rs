//! Micro-benchmarks for the deterministic parallelism layer: the same
//! multistart solve and device calibration at 1/2/4/8 threads, so the
//! recorded trajectory (`results/BENCH_par.json`) shows the speedup
//! the pool buys on the current machine.
//!
//! Thread counts are pinned by setting `WASLA_THREADS` around each
//! case; the bench main is single-threaded, so the writes cannot race
//! a concurrent reader. Results at every width are bit-identical by
//! the concurrency policy — only the wall-clock should move.

use std::hint::black_box;
use wasla::core::{solve_multistart, Layout, LayoutProblem, SolverOptions};
use wasla::model::{calibrate_device, CalibrationGrid, CostModel};
use wasla::simlib::par;
use wasla::storage::{DeviceSpec, DiskParams, IoKind, GIB};
use wasla::workload::{ObjectKind, WorkloadSet, WorkloadSpec};
use wasla_bench::harness::Harness;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn with_threads(t: usize, f: impl FnOnce()) {
    std::env::set_var("WASLA_THREADS", t.to_string());
    f();
    std::env::remove_var("WASLA_THREADS");
}

/// Contention-sensitive analytic model (same shape as the advisor unit
/// tests): cheap to evaluate, so the bench times the solver itself.
struct ContentionModel;
impl CostModel for ContentionModel {
    fn request_cost(&self, _: IoKind, _: f64, run: f64, chi: f64) -> f64 {
        0.004 / run.max(1.0) + 0.003 * chi + 0.004
    }
}

fn synthetic_problem(n: usize, m: usize) -> LayoutProblem {
    let spec = |i: usize| WorkloadSpec {
        read_size: 65536.0,
        write_size: 8192.0,
        read_rate: 20.0 + 5.0 * (i as f64),
        write_rate: 2.0,
        run_count: if i % 2 == 0 { 32.0 } else { 4.0 },
        overlaps: (0..n).map(|k| if k == i { 0.0 } else { 0.6 }).collect(),
    };
    LayoutProblem {
        workloads: WorkloadSet {
            names: (0..n).map(|i| format!("o{i}")).collect(),
            sizes: vec![1 << 28; n],
            specs: (0..n).map(spec).collect(),
        },
        kinds: vec![ObjectKind::Table; n],
        capacities: vec![2 << 30; m],
        target_names: (0..m).map(|j| format!("t{j}")).collect(),
        models: (0..m)
            .map(|_| std::sync::Arc::new(ContentionModel) as _)
            .collect(),
        stripe_size: 1024.0 * 1024.0,
        constraints: vec![],
    }
}

/// Eight single-assignment starts, rotated so each explores a
/// different basin.
fn starts(n: usize, m: usize) -> Vec<Layout> {
    (0..8)
        .map(|s| {
            let mut layout = Layout::zero(n, m);
            for i in 0..n {
                layout.set(i, (i + s) % m, 1.0);
            }
            layout
        })
        .collect()
}

fn bench_multistart(c: &mut Harness) {
    let problem = synthetic_problem(8, 4);
    let starts = starts(8, 4);
    let opts = SolverOptions::default();
    let mut group = c.benchmark_group("multistart_8_starts");
    for t in THREAD_COUNTS {
        with_threads(t, || {
            group.bench_function(format!("threads{t}"), |b| {
                b.iter(|| black_box(solve_multistart(&problem, &starts, &opts)))
            });
        });
    }
    group.finish();
}

fn bench_calibration(c: &mut Harness) {
    let spec = DeviceSpec::Disk(DiskParams::scsi_15k(4 * GIB));
    let grid = CalibrationGrid::coarse();
    let mut group = c.benchmark_group("calibrate_coarse_disk");
    for t in THREAD_COUNTS {
        with_threads(t, || {
            group.bench_function(format!("threads{t}"), |b| {
                b.iter(|| black_box(calibrate_device(&spec, &grid, 7)))
            });
        });
    }
    group.finish();
}

fn bench_par_map_overhead(c: &mut Harness) {
    // The pool's fixed cost on trivial tasks: what routing a layer
    // through par costs when there is nothing to win.
    let items: Vec<u64> = (0..64).collect();
    let mut group = c.benchmark_group("par_map_64_trivial_tasks");
    for t in THREAD_COUNTS {
        group.bench_function(format!("threads{t}"), |b| {
            b.iter(|| black_box(par::par_map_with(t, &items, |&x| x.wrapping_mul(x))))
        });
    }
    group.finish();
}

wasla_bench::bench_main!(
    "par",
    bench_multistart,
    bench_calibration,
    bench_par_map_overhead
);
