//! Micro-benchmarks for the NLP toolkit.

use std::hint::black_box;
use wasla::simlib::SimRng;
use wasla::solver::{anneal, lse_max, minimize, project_simplex, AnnealOptions, PgOptions};
use wasla_bench::harness::{BatchSize, Harness};

fn bench_simplex_projection(c: &mut Harness) {
    let mut group = c.benchmark_group("simplex_projection");
    for m in [4usize, 10, 40] {
        let mut rng = SimRng::new(7);
        let base: Vec<f64> = (0..m).map(|_| rng.uniform_range(-1.0, 2.0)).collect();
        group.bench_function(format!("m{m}"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut row| {
                    project_simplex(&mut row);
                    black_box(row)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_lse(c: &mut Harness) {
    let values: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin().abs()).collect();
    c.bench_function("lse_max_40", |b| {
        b.iter(|| black_box(lse_max(black_box(&values), 0.05)))
    });
}

fn bench_projected_gradient(c: &mut Harness) {
    // A simplex-constrained quadratic comparable to one solver stage of
    // a small layout problem.
    let n = 20;
    let target: Vec<f64> = (0..n).map(|i| ((i * 7) % n) as f64 / n as f64).collect();
    let f = move |x: &[f64]| -> f64 { x.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum() };
    let target2: Vec<f64> = (0..n).map(|i| ((i * 7) % n) as f64 / n as f64).collect();
    let grad = move |x: &[f64], g: &mut [f64]| {
        for i in 0..x.len() {
            g[i] = 2.0 * (x[i] - target2[i]);
        }
    };
    let x0 = vec![1.0 / n as f64; n];
    c.bench_function("pg_quadratic_n20", |b| {
        b.iter(|| {
            black_box(minimize(
                &f,
                &grad,
                |x: &mut [f64]| project_simplex(x),
                black_box(&x0),
                &PgOptions::default(),
            ))
        })
    });
}

fn bench_anneal(c: &mut Harness) {
    let f = |x: &[f64]| {
        x.iter()
            .enumerate()
            .map(|(i, v)| v * (i as f64))
            .sum::<f64>()
    };
    let x0 = vec![0.25; 4];
    let opts = AnnealOptions {
        steps: 1_000,
        ..AnnealOptions::default()
    };
    c.bench_function("anneal_1000_steps", |b| {
        b.iter(|| {
            black_box(anneal(
                f,
                |x: &mut [f64]| project_simplex(x),
                black_box(&x0),
                &opts,
            ))
        })
    });
}

wasla_bench::bench_main!(
    "solver",
    bench_simplex_projection,
    bench_lse,
    bench_projected_gradient,
    bench_anneal
);
