//! Micro-benchmarks for the NLP toolkit.

use std::hint::black_box;
use std::sync::Arc;
use wasla::core::{EvalEngine, LayoutProblem, ScratchEval};
use wasla::model::CostModel;
use wasla::simlib::SimRng;
use wasla::solver::{anneal, lse_max, minimize, project_simplex, AnnealOptions, PgOptions};
use wasla::storage::IoKind;
use wasla::workload::{ObjectKind, WorkloadSet, WorkloadSpec};
use wasla_bench::harness::{BatchSize, Harness};

fn bench_simplex_projection(c: &mut Harness) {
    let mut group = c.benchmark_group("simplex_projection");
    for m in [4usize, 10, 40] {
        let mut rng = SimRng::new(7);
        let base: Vec<f64> = (0..m).map(|_| rng.uniform_range(-1.0, 2.0)).collect();
        group.bench_function(format!("m{m}"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut row| {
                    project_simplex(&mut row);
                    black_box(row)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_lse(c: &mut Harness) {
    let values: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin().abs()).collect();
    c.bench_function("lse_max_40", |b| {
        b.iter(|| black_box(lse_max(black_box(&values), 0.05)))
    });
}

fn bench_projected_gradient(c: &mut Harness) {
    // A simplex-constrained quadratic comparable to one solver stage of
    // a small layout problem.
    let n = 20;
    let target: Vec<f64> = (0..n).map(|i| ((i * 7) % n) as f64 / n as f64).collect();
    let f = move |x: &[f64]| -> f64 { x.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum() };
    let target2: Vec<f64> = (0..n).map(|i| ((i * 7) % n) as f64 / n as f64).collect();
    let grad = move |x: &[f64], g: &mut [f64]| {
        for i in 0..x.len() {
            g[i] = 2.0 * (x[i] - target2[i]);
        }
    };
    let x0 = vec![1.0 / n as f64; n];
    c.bench_function("pg_quadratic_n20", |b| {
        b.iter(|| {
            black_box(minimize(
                &f,
                &grad,
                |x: &mut [f64]| project_simplex(x),
                black_box(&x0),
                &PgOptions::default(),
            ))
        })
    });
}

fn bench_anneal(c: &mut Harness) {
    let f = |x: &[f64]| {
        x.iter()
            .enumerate()
            .map(|(i, v)| v * (i as f64))
            .sum::<f64>()
    };
    let x0 = vec![0.25; 4];
    let opts = AnnealOptions {
        steps: 1_000,
        ..AnnealOptions::default()
    };
    c.bench_function("anneal_1000_steps", |b| {
        b.iter(|| {
            black_box(anneal(
                f,
                |x: &mut [f64]| project_simplex(x),
                black_box(&x0),
                &opts,
            ))
        })
    });
}

/// Analytic cost model for the gradient sweep: contention-sensitive
/// and cheap, so the benchmark measures evaluation machinery rather
/// than model arithmetic.
struct SweepModel;
impl CostModel for SweepModel {
    fn request_cost(&self, kind: IoKind, size: f64, run: f64, chi: f64) -> f64 {
        let base = match kind {
            IoKind::Read => 0.004,
            IoKind::Write => 0.003,
        };
        base / run.max(1.0) + 0.002 * chi + size / 60e6 + 0.0002
    }
}

/// Block-sparse overlap structure: objects contend only within groups
/// of 8, the regime where the incremental engine's cached-µ reuse pays
/// off (each FD partial touches O(group) cells, not O(N)).
fn sweep_problem(n: usize, m: usize) -> LayoutProblem {
    const GROUP: usize = 8;
    let specs = (0..n)
        .map(|i| WorkloadSpec {
            read_size: 65536.0,
            write_size: 8192.0,
            read_rate: 20.0 + i as f64,
            write_rate: 2.0,
            run_count: 1.0 + (i % 7) as f64 * 9.0,
            overlaps: (0..n)
                .map(|k| {
                    if i != k && i / GROUP == k / GROUP {
                        0.5
                    } else {
                        0.0
                    }
                })
                .collect(),
        })
        .collect();
    LayoutProblem {
        workloads: WorkloadSet {
            names: (0..n).map(|i| format!("o{i}")).collect(),
            sizes: (0..n).map(|i| 1000 + 37 * i as u64).collect(),
            specs,
        },
        kinds: vec![ObjectKind::Table; n],
        capacities: vec![1 << 24; m],
        target_names: (0..m).map(|j| format!("t{j}")).collect(),
        models: (0..m).map(|_| Arc::new(SweepModel) as _).collect(),
        stripe_size: 1024.0 * 1024.0,
        constraints: vec![],
    }
}

const SWEEP_SIZES: [(usize, usize); 6] = [(8, 4), (8, 16), (32, 4), (32, 16), (128, 4), (128, 16)];
const SWEEP_TEMP: f64 = 0.05;
const SWEEP_FD: f64 = 1e-4;

/// N×M scaling sweep over the full LSE gradient (the solver's hot
/// loop): the incremental `EvalEngine` vs the from-scratch
/// `ScratchEval` path on the same problems, with `EvalStats` work
/// counters from one instrumented call attached to each result.
fn bench_nlp_gradient_sweep(c: &mut Harness) {
    {
        let mut group = c.benchmark_group("nlp_gradient_engine");
        for (n, m) in SWEEP_SIZES {
            let problem = sweep_problem(n, m);
            let x = vec![1.0 / m as f64; n * m];
            let mut engine = EvalEngine::new(&problem);
            engine.set_point(&x);
            let mut g = vec![0.0; n * m];
            let before = engine.stats;
            engine.lse_gradient(&x, SWEEP_TEMP, SWEEP_FD, &mut g);
            let per_call = engine.stats.since(&before);
            group.bench_function(format!("n{n}_m{m}"), |b| {
                for (name, value) in per_call.entries() {
                    b.counter(name, value as f64);
                }
                b.iter(|| {
                    engine.lse_gradient(black_box(&x), SWEEP_TEMP, SWEEP_FD, &mut g);
                    black_box(g[0])
                })
            });
        }
        group.finish();
    }
    {
        let mut group = c.benchmark_group("nlp_gradient_scratch");
        for (n, m) in SWEEP_SIZES {
            let problem = sweep_problem(n, m);
            let x = vec![1.0 / m as f64; n * m];
            let mut scratch = ScratchEval::new(&problem);
            let mut g = vec![0.0; n * m];
            let before = scratch.stats;
            scratch.lse_gradient(&x, SWEEP_TEMP, SWEEP_FD, &mut g);
            let per_call = scratch.stats.since(&before);
            group.bench_function(format!("n{n}_m{m}"), |b| {
                for (name, value) in per_call.entries() {
                    b.counter(name, value as f64);
                }
                b.iter(|| {
                    scratch.lse_gradient(black_box(&x), SWEEP_TEMP, SWEEP_FD, &mut g);
                    black_box(g[0])
                })
            });
        }
        group.finish();
    }
}

wasla_bench::bench_main!(
    "solver",
    bench_simplex_projection,
    bench_lse,
    bench_projected_gradient,
    bench_anneal,
    bench_nlp_gradient_sweep
);
