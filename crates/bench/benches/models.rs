//! Micro-benchmarks for cost-model calibration and lookup.

use std::hint::black_box;
use wasla::model::{calibrate_device, CalibrationGrid, CostModel};
use wasla::storage::{DeviceSpec, DiskParams, IoKind, GIB};
use wasla_bench::harness::Harness;

fn bench_calibration(c: &mut Harness) {
    let spec = DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB));
    let grid = CalibrationGrid::coarse();
    c.bench_function("calibrate_disk_coarse_grid", |b| {
        b.iter(|| black_box(calibrate_device(black_box(&spec), &grid, 7)))
    });
}

fn bench_lookup(c: &mut Harness) {
    let spec = DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB));
    let model = calibrate_device(&spec, &CalibrationGrid::default(), 7);
    c.bench_function("table_model_interpolated_lookup", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let size = 4096.0 + (k % 64) as f64 * 4096.0;
            let run = 1.0 + (k % 200) as f64;
            let chi = (k % 16) as f64 * 0.5;
            black_box(model.request_cost(IoKind::Read, size, run, chi))
        })
    });
}

fn bench_model_serialization(c: &mut Harness) {
    let spec = DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB));
    let model = calibrate_device(&spec, &CalibrationGrid::default(), 7);
    c.bench_function("table_model_json_roundtrip", |b| {
        b.iter(|| {
            let json = model.to_json();
            black_box(wasla::model::TableModel::from_json(&json).expect("round trip"))
        })
    });
}

wasla_bench::bench_main!(
    "models",
    bench_calibration,
    bench_lookup,
    bench_model_serialization
);
