//! Golden tests pinning the in-tree JSON codec to the exact bytes the
//! seed repository produced with serde_json.
//!
//! Every checked-in experiment result under `results/` was written by
//! `serde_json::to_string_pretty`. Re-encoding the parsed value with
//! the in-tree writer must reproduce the file byte for byte — this is
//! what lets result trajectories stay diffable across the dependency
//! swap.

use std::path::PathBuf;
use wasla::simlib::json::{self, Json};
use wasla_bench::ExperimentResult;

fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

/// The checked-in experiment results (`BENCH_*.json` files are
/// wall-clock bench reports, regenerated locally, and not golden).
fn golden_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(results_dir())
        .expect("results/ exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap_or_default().to_string_lossy();
            name.ends_with(".json") && !name.starts_with("BENCH_")
        })
        .collect();
    files.sort();
    files
}

#[test]
fn seed_results_reencode_byte_identical_as_json_values() {
    let files = golden_files();
    assert!(!files.is_empty(), "no seed result files found");
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read result");
        let value =
            Json::parse(&text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        assert_eq!(
            value.to_string_pretty(),
            text,
            "{}: pretty re-encoding differs from the serde_json bytes",
            path.display()
        );
    }
}

#[test]
fn seed_results_round_trip_through_experiment_result() {
    for path in &golden_files() {
        let text = std::fs::read_to_string(path).expect("read result");
        let result: ExperimentResult = json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", path.display()));
        assert_eq!(
            json::to_string_pretty(&result),
            text,
            "{}: ExperimentResult re-encoding differs from the seed bytes",
            path.display()
        );
        assert!(!result.id.is_empty());
    }
}

#[test]
fn compact_encoding_matches_serde_json_conventions() {
    // A spot check of serde_json's compact conventions the writer must
    // keep: no spaces, struct field order, tuples as arrays, u64
    // integers unsuffixed, floats with minimal round-trip digits.
    let row = wasla_bench::Row::new("SEE", vec![("elapsed", 12.5), ("tpm", 3.0)]);
    assert_eq!(
        json::to_string(&row),
        r#"{"label":"SEE","metrics":[["elapsed",12.5],["tpm",3.0]]}"#
    );
}
