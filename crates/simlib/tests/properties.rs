//! Property tests for the simulation kernel.

use wasla_simlib::proptest::prelude::*;
use wasla_simlib::{EventQueue, SimRng, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of
    /// the schedule order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-time events preserve insertion order (FIFO tie-break).
    #[test]
    fn event_queue_fifo_at_equal_times(n in 1usize..100, t in 0.0f64..1e3) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_secs(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// `below(n)` is always within range and `uniform` within [0, 1).
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Exponential samples are non-negative and finite.
    #[test]
    fn exponential_non_negative(seed in any::<u64>(), rate in 0.001f64..1e4) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let x = rng.exponential(rate);
            prop_assert!(x.is_finite());
            prop_assert!(x >= 0.0);
        }
    }

    /// Shuffle is a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), n in 0usize..100) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
