//! Property tests for the simulation kernel.

use wasla_simlib::par;
use wasla_simlib::proptest::prelude::*;
use wasla_simlib::{EventQueue, SimRng, SimTime};

proptest! {
    /// `par_map` is the identity refactor: same results, same order as
    /// the serial map, at every pool width (including widths larger
    /// than the input and the empty input).
    #[test]
    fn par_map_equals_serial_map(
        items in proptest::collection::vec(any::<u64>(), 0..120),
        threads in 1usize..12,
    ) {
        let serial: Vec<u64> = items
            .iter()
            .map(|&x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x >> 7))
            .collect();
        let parallel = par::par_map_with(threads, &items, |&x| {
            x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x >> 7)
        });
        prop_assert_eq!(parallel, serial);
    }

    /// Tasks that derive their RNG from `task_seed` produce identical
    /// streams no matter how the pool schedules them.
    #[test]
    fn par_map_task_seeds_are_schedule_independent(
        base in any::<u64>(),
        n in 0usize..60,
        threads in 1usize..9,
    ) {
        let indices: Vec<u64> = (0..n as u64).collect();
        let draw = |&i: &u64| SimRng::new(par::task_seed(base, i)).next_u64();
        let serial: Vec<u64> = indices.iter().map(draw).collect();
        let parallel = par::par_map_with(threads, &indices, draw);
        prop_assert_eq!(parallel, serial);
    }

    /// A panicking task panics the caller at every pool width, and the
    /// smallest-index payload is the one propagated.
    #[test]
    fn par_map_propagates_panics(
        n in 1usize..50,
        bad in 0usize..50,
        threads in 1usize..9,
    ) {
        prop_assume!(bad < n);
        let items: Vec<usize> = (0..n).collect();
        let caught = std::panic::catch_unwind(|| {
            par::par_map_with(threads, &items, |&i| {
                if i >= bad {
                    panic!("task {i} failed");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        prop_assert!(msg.starts_with("task "), "payload {:?}", msg);
        // Workers race past `bad`, but no propagated index can precede
        // it, and under one thread it is exactly the serial panic.
        let idx: usize = msg["task ".len()..msg.len() - " failed".len()]
            .parse()
            .unwrap();
        prop_assert!(idx >= bad);
        if threads == 1 {
            prop_assert_eq!(idx, bad);
        }
    }

    /// Events always pop in non-decreasing time order, regardless of
    /// the schedule order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-time events preserve insertion order (FIFO tie-break).
    #[test]
    fn event_queue_fifo_at_equal_times(n in 1usize..100, t in 0.0f64..1e3) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_secs(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// `below(n)` is always within range and `uniform` within [0, 1).
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Exponential samples are non-negative and finite.
    #[test]
    fn exponential_non_negative(seed in any::<u64>(), rate in 0.001f64..1e4) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let x = rng.exponential(rate);
            prop_assert!(x.is_finite());
            prop_assert!(x >= 0.0);
        }
    }

    /// Shuffle is a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), n in 0usize..100) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
