//! Adversarial property tests for the JSON parser.
//!
//! The persistence layer feeds the parser bytes read back from disk,
//! which after a crash can be truncated, bit-flipped, or garbage. The
//! contract is that [`Json::parse`] is total over `&str`: every input
//! yields either a value or a typed [`JsonError`] — never a panic and
//! never unbounded recursion (see the depth guard in `json.rs`).

use wasla_simlib::json::Json;
use wasla_simlib::proptest::prelude::*;

/// A seed corpus shaped like the documents the repo actually writes:
/// cache files, bench reports, experiment rows.
const CORPUS: &[&str] = &[
    r#"{"version":1,"kind":"calibrations","checksum":12345,"entries":[[42,{"reads":[0.001,0.002],"writes":[0.003]}]]}"#,
    r#"{"elapsed":12.5,"target_utilization":[0.91,0.18,0.2],"objects":[{"logical_reads":100,"bytes_read":819200}]}"#,
    r#"[["LINEITEM",1073741824],["ORDERS",268435456],["PART",-7]]"#,
    r#"{"name":"x","count":3,"ratio":1.5e-7,"tags":["a","b"],"extra":null,"deep":{"a":{"b":{"c":[true,false]}}}}"#,
    r#""plain \"string\" with A escapes and 𝄞 pairs""#,
    r#"-123.456e-2"#,
];

/// Largest char-boundary position `<= want` in `text`.
fn boundary(text: &str, want: usize) -> usize {
    let mut cut = want.min(text.len());
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    cut
}

proptest! {
    /// Every truncation of a valid document parses or fails with a
    /// typed error — the torn-write shape a crashed writer leaves.
    #[test]
    fn truncated_documents_yield_typed_errors(
        doc in 0usize..6,
        cut in any::<u64>(),
    ) {
        let text = CORPUS[doc % CORPUS.len()];
        let cut = boundary(text, cut as usize % (text.len() + 1));
        match Json::parse(&text[..cut]) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                e.to_string().starts_with("json error:"),
                "untyped error {:?}", e.to_string()
            ),
        }
    }

    /// Every single-byte mutation of a valid document (that is still
    /// UTF-8) parses or fails with a typed error, and whatever parses
    /// round-trips through the printer.
    #[test]
    fn mutated_documents_yield_typed_errors(
        doc in 0usize..6,
        idx in any::<u64>(),
        byte in 0u64..256,
    ) {
        let text = CORPUS[doc % CORPUS.len()];
        let mut bytes = text.as_bytes().to_vec();
        let at = idx as usize % bytes.len();
        bytes[at] = byte as u8;
        let Ok(mutated) = String::from_utf8(bytes) else {
            // parse() takes &str; invalid UTF-8 can't reach it.
            return Ok(());
        };
        match Json::parse(&mutated) {
            Ok(v) => {
                let printed = v.to_string_compact();
                prop_assert_eq!(Json::parse(&printed).unwrap(), v);
            }
            Err(e) => prop_assert!(
                e.to_string().starts_with("json error:"),
                "untyped error {:?}", e.to_string()
            ),
        }
    }

    /// Container nesting beyond the guard depth errors instead of
    /// overflowing the stack; nesting at or under it parses.
    #[test]
    fn nesting_depth_guard_holds(depth in 1usize..400, brace in 0usize..2) {
        let (open, close) = if brace == 0 { ("[", "]") } else { ("{\"k\":", "}") };
        let doc = format!("{}1{}", open.repeat(depth), close.repeat(depth));
        let parsed = Json::parse(&doc);
        if depth <= 128 {
            prop_assert!(parsed.is_ok(), "depth {} should parse", depth);
        } else {
            let err = parsed.expect_err("depth beyond the guard must error");
            prop_assert!(err.to_string().contains("nesting"), "{}", err);
        }
    }

    /// Raw random ASCII never panics the parser.
    #[test]
    fn random_ascii_never_panics(bytes in proptest::collection::vec(any::<u64>(), 0..200)) {
        let text: String = bytes
            .iter()
            .map(|&b| char::from((b % 95) as u8 + 32))
            .collect();
        let _ = Json::parse(&text);
    }
}
