//! Deterministic in-tree parallelism.
//!
//! The advisor's hot paths — multi-start NLP solving, cost-model
//! calibration, configuration sweeps, the experiment suite — are
//! embarrassingly parallel: independent tasks whose results are
//! combined by an order-sensitive reduction. The build is hermetic by
//! policy (no rayon), so this module provides the one primitive those
//! layers need: [`par_map`], an *ordered* parallel map over a slice
//! built on [`std::thread::scope`].
//!
//! # Determinism contract
//!
//! `par_map(items, f)` returns exactly what `items.iter().map(f)`
//! would return, in the same order, at **any** thread count — workers
//! claim items from a shared index counter but results are reassembled
//! by item index before returning. Callers keep determinism by never
//! sharing mutable state across tasks: any randomness a task needs
//! must come from a [`SimRng`](crate::SimRng) derived from a fixed
//! per-task seed (see [`task_seed`]), never from a generator threaded
//! sequentially through the loop.
//!
//! Panics inside `f` are propagated to the caller: the pool stops
//! claiming new items and re-raises the panic payload of the
//! smallest-index failed item, matching what the serial loop would
//! have raised when every panicking item is preceded only by
//! non-panicking ones.
//!
//! # Thread-count knob
//!
//! The pool size comes from the `WASLA_THREADS` environment variable;
//! unset, empty, `0`, or unparsable values fall back to
//! [`std::thread::available_parallelism`]. A thread count of 1 (or a
//! single-item input) short-circuits to the plain serial map with no
//! threads spawned, which is also the path the discrete-event
//! simulators must stay on: they are inherently sequential and are
//! never routed through this module.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The pool size [`par_map`] uses: `WASLA_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
///
/// Read from the environment on every call (it is a handful of
/// nanoseconds next to any task worth parallelizing), so tests and
/// long-lived processes can re-tune it between calls.
pub fn threads() -> usize {
    std::env::var("WASLA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Derives the seed for an independent task from a base seed and the
/// task's index, by mixing both through SplitMix64-style finalizers.
///
/// This is the seed-derivation scheme of the concurrency policy:
/// parallel layers give every task its own generator seeded by
/// `(base, index)` so measurements are bit-identical whether tasks run
/// serially or concurrently, in any interleaving.
pub fn task_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on the [`threads`]-sized pool, returning the
/// results in item order. Equivalent to `items.iter().map(f).collect()`
/// at every thread count; see the module docs for the full contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(threads(), items, f)
}

/// [`par_map`] with an explicit thread count (tests and benches use
/// this to pin the pool size without touching the environment).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        // The serial path: same iteration order, no threads, and the
        // reference behaviour the parallel path must reproduce.
        return items.iter().map(f).collect();
    }

    // Work-stealing by shared index counter: each worker claims the
    // next unclaimed item and records (index, outcome) locally, so the
    // only cross-thread traffic is the counter and the poison flag.
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    type Caught = Box<dyn std::any::Any + Send + 'static>;
    let parts: Vec<Vec<(usize, Result<R, Caught>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    while !poisoned.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                            Ok(r) => out.push((i, Ok(r))),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                out.push((i, Err(payload)));
                                break;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map workers never panic directly"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut panic: Option<(usize, Caught)> = None;
    for (i, outcome) in parts.into_iter().flatten() {
        match outcome {
            Ok(r) => slots[i] = Some(r),
            Err(payload) => {
                if panic.as_ref().map(|(pi, _)| i < *pi).unwrap_or(true) {
                    panic = Some((i, payload));
                }
            }
        }
    }
    if let Some((_, payload)) = panic {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_with(threads, &items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = par_map_with(8, &[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_with(64, &[1u64, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn panic_propagates_with_payload() {
        let items: Vec<u64> = (0..100).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_with(4, &items, |&x| {
                if x == 17 {
                    panic!("boom at {x}");
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 17"), "payload {msg:?}");
    }

    #[test]
    fn task_seed_mixes_base_and_index() {
        // Distinct (base, index) pairs must give distinct streams; in
        // particular index 0 must not pass the base seed through.
        assert_ne!(task_seed(7, 0), 7);
        let seeds: Vec<u64> = (0..1000).map(|i| task_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
        assert_ne!(task_seed(1, 5), task_seed(2, 5));
    }

    #[test]
    fn threads_reads_env_knob() {
        // Only asserts the fallback shape: the suite must not mutate
        // process-global env from a unit test (other tests read it).
        assert!(threads() >= 1);
    }
}
