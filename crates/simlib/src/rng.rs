//! Deterministic pseudo-random number generation.
//!
//! The simulator needs reproducible randomness: every experiment is
//! parameterized by a seed and must replay identically. We implement
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, which is
//! the standard, well-tested construction, rather than depending on an
//! external RNG crate whose stream could change across versions.

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; used to give each
    /// simulated component its own stream so adding a component does not
    /// perturb the randomness seen by others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base = self.next_u64() ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
        SimRng::new(base)
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire's unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// True with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// An exponentially distributed sample with the given rate
    /// (mean `1/rate`). Used for Poisson inter-arrival times.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // 1 - uniform() is in (0, 1], so ln() is finite.
        -(1.0 - self.uniform()).ln() / rate
    }

    /// A standard-normal sample (Box–Muller, one value per call).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// A geometrically distributed run length with the given mean
    /// (support `1, 2, 3, ...`). Used to sample sequential run counts.
    pub fn geometric_mean(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean; // success probability → mean 1/p
        let u = 1.0 - self.uniform();
        let val = (u.ln() / (1.0 - p).ln()).ceil();
        val.max(1.0) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Samples an index in `[0, weights.len())` proportionally to the
    /// (non-negative) weights. Panics if all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index with zero total weight");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// A Zipf-distributed index in `[0, n)` with skew `theta`
    /// (`theta = 0` is uniform). Rejection-inversion is unnecessary at
    /// our scales; we use the classic cumulative method with a cached
    /// normalization valid for a single call pattern, so this is O(n)
    /// only on first use per (n, theta) via [`ZipfSampler`].
    pub fn zipf(&mut self, sampler: &ZipfSampler) -> usize {
        sampler.sample(self)
    }
}

/// Precomputed Zipf sampler over `[0, n)` (hot-spot index access in the
/// OLTP workload model).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler for `n` items with skew `theta >= 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (n > 0 is enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(11);
        let rate = 4.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn geometric_mean_run_length() {
        let mut rng = SimRng::new(13);
        let target = 8.0;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| rng.geometric_mean(target)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - target).abs() < 0.3, "mean {mean}");
        assert_eq!(rng.geometric_mean(1.0), 1);
        assert_eq!(rng.geometric_mean(0.5), 1);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SimRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(23);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn zipf_skew_orders_frequencies() {
        let mut rng = SimRng::new(29);
        let sampler = ZipfSampler::new(100, 1.0);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_zero_theta_is_uniformish() {
        let mut rng = SimRng::new(31);
        let sampler = ZipfSampler::new(10, 0.0);
        let mut counts = vec![0u32; 10];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "count {c}");
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::new(5);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
