//! Deterministic fault injection.
//!
//! Robustness code is only trustworthy if its failure paths run under
//! test, and failure tests are only trustworthy if they are
//! reproducible. This module derives every injected fault from one
//! process-wide seed (the `WASLA_FAULTS` environment variable) the same
//! way [`crate::par::task_seed`] derives per-task RNG seeds: a
//! SplitMix64-style mix of `(seed, domain, key)` where `key` is
//! *content-derived* (a trace hash, a device-spec hash, a request
//! index) — never schedule-derived. The answer to "does this fault
//! fire?" is therefore a pure function of the seed and the thing being
//! faulted, bit-identical at any `WASLA_THREADS` setting and in any
//! interleaving.
//!
//! # Discipline
//!
//! * The environment variable is read **only here** (CI greps for
//!   that); consumers call [`plan`] and query the returned
//!   [`FaultPlan`].
//! * `WASLA_FAULTS` unset, empty, `0`, or unparsable means *no faults*:
//!   [`plan`] returns `None` and every production path stays
//!   bit-identical to the fault-free build.
//! * Tests that need a fault to fire (or not fire) search candidate
//!   seeds through [`FaultPlan::from_seed`] before setting the
//!   environment variable, instead of hard-coding magic seeds that
//!   would silently rot if the mixing constants changed.
//!
//! # Fault taxonomy
//!
//! | query | consumer | effect |
//! |---|---|---|
//! | [`FaultPlan::trace_fault`] | trace fitting | corrupt the tail of a captured block trace |
//! | [`FaultPlan::device_fault`] | calibration + replay | latency-degrade or fail a storage target |
//! | [`FaultPlan::solver_budget`] | NLP solve | exhaust the iteration budget / force a fallback rung |
//! | [`FaultPlan::request_fault`] | batch service | fail one advise attempt (retryable) |

use crate::par::task_seed;

/// The environment variable holding the fault seed. Read only by
/// [`plan`]; everything else queries the returned plan.
pub const ENV_VAR: &str = "WASLA_FAULTS";

/// Domain tags keep the query families statistically independent: the
/// same key rolled in two domains yields unrelated answers.
const DOMAIN_TRACE: u64 = 0x7472_6163_65f0_0001;
const DOMAIN_TRACE_SHAPE: u64 = 0x7472_6163_65f0_0002;
const DOMAIN_DEVICE: u64 = 0x6465_7669_63f0_0001;
const DOMAIN_DEVICE_KIND: u64 = 0x6465_7669_63f0_0002;
const DOMAIN_SOLVER: u64 = 0x736f_6c76_65f0_0001;
const DOMAIN_SOLVER_KIND: u64 = 0x736f_6c76_65f0_0002;
const DOMAIN_REQUEST: u64 = 0x7265_7175_65f0_0001;

/// Salts for the key-derivation helpers, so e.g. calibration and
/// replay probes of the same device draw independent faults.
const SALT_DEVICE: u64 = 0xd_e5a_17;
const SALT_CALIBRATION: u64 = 0xca_11b_5a1;

/// A seed-derived fault plan: a pure function from content keys to
/// injected faults. `Copy` and stateless so consumers can re-query it
/// (e.g. to record a degradation note for a fault another layer
/// applied) without threading state around.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

/// An injected trace fault: records at index `>= keep_fraction * len`
/// are corrupted (their stream id driven out of range), so a fitter
/// must salvage the valid prefix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceFault {
    /// Fraction of the trace left intact, in `[0.5, 0.9]` — the damage
    /// never swallows the whole trace, matching real-world torn tails.
    pub keep_fraction: f64,
}

/// An injected device fault, applied to calibration probes and replay
/// service times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeviceFault {
    /// The device answers, slower: service times scale by this factor
    /// (in `[1.5, 8.0]`).
    Degraded {
        /// Multiplier on every service time.
        latency_factor: f64,
    },
    /// The device has effectively failed; consumers model it as
    /// pathologically slow so layout advice steers load away.
    Failed,
}

/// The service-time multiplier a [`DeviceFault::Failed`] device is
/// modeled with: slow enough that the advisor steers essentially all
/// load away, finite so replay and calibration still terminate.
pub const FAILED_LATENCY_FACTOR: f64 = 50.0;

impl DeviceFault {
    /// The service-time multiplier this fault applies — the one policy
    /// both calibration and replay use, so "how bad is a failed
    /// device" is decided in exactly one place.
    pub fn latency_factor(self) -> f64 {
        match self {
            DeviceFault::Degraded { latency_factor } => latency_factor,
            DeviceFault::Failed => FAILED_LATENCY_FACTOR,
        }
    }
}

/// An injected solver-budget exhaustion: which rung of the fallback
/// chain (auglag → pg → rate-greedy seed) the solve is forced down to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverBudget {
    /// Keep the configured engine but cut its iteration budget; the
    /// anytime best-so-far iterate is returned.
    Tight,
    /// Skip the augmented-Lagrangian outer loop: one projected-gradient
    /// pass only.
    PgOnly,
    /// No solve at all: fall back to the rate-greedy seed layout.
    GreedyOnly,
}

/// Reads `WASLA_FAULTS` and returns the active fault plan, or `None`
/// when fault injection is off. Like [`crate::par::threads`], the
/// environment is consulted on every call so tests and long-lived
/// processes can re-tune it between operations.
pub fn plan() -> Option<FaultPlan> {
    FaultPlan::from_seed(parse_spec(&std::env::var(ENV_VAR).ok()?)?)
}

/// Parses a `WASLA_FAULTS` value: a decimal or `0x`-prefixed
/// hexadecimal u64. Empty, zero, or unparsable specs yield `None`.
fn parse_spec(raw: &str) -> Option<u64> {
    let t = raw.trim();
    let seed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok()?,
        None => t.parse::<u64>().ok()?,
    };
    (seed != 0).then_some(seed)
}

/// The content key for a *replay* device fault: `seed` is the run's
/// RNG seed, `target` the target index.
pub fn device_key(seed: u64, target: u64) -> u64 {
    task_seed(seed ^ SALT_DEVICE, target)
}

/// The content key for a *calibration* device fault: `seed` is the
/// calibration seed, `spec_hash` a content hash of the device spec.
pub fn calibration_key(seed: u64, spec_hash: u64) -> u64 {
    task_seed(seed ^ SALT_CALIBRATION, spec_hash)
}

/// The content key for a batch request fault: the same `(base, index)`
/// derivation the batch layer uses for per-request seeds, so the
/// faulted slot is a function of the request's position, not of which
/// worker happened to claim it.
pub fn request_key(base_seed: u64, index: u64) -> u64 {
    task_seed(base_seed, index)
}

impl FaultPlan {
    /// Builds a plan directly from a seed (`None` for the reserved
    /// seed 0, which means "off"). Tests use this to search for
    /// exhibit seeds before setting [`ENV_VAR`].
    pub fn from_seed(seed: u64) -> Option<FaultPlan> {
        (seed != 0).then_some(FaultPlan { seed })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One deterministic roll in a query domain.
    fn roll(&self, domain: u64, key: u64) -> u64 {
        task_seed(self.seed ^ domain, key)
    }

    /// Maps a roll to a uniform float in `[0, 1)`.
    fn unit(r: u64) -> f64 {
        (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should the trace identified by `content_key` (its content hash)
    /// arrive damaged? Fires for roughly a quarter of keys.
    pub fn trace_fault(&self, content_key: u64) -> Option<TraceFault> {
        if self.roll(DOMAIN_TRACE, content_key) % 4 != 0 {
            return None;
        }
        let keep = 0.5 + 0.4 * Self::unit(self.roll(DOMAIN_TRACE_SHAPE, content_key));
        Some(TraceFault {
            keep_fraction: keep,
        })
    }

    /// Does the device identified by `key` (see [`device_key`] /
    /// [`calibration_key`]) misbehave? Fires for roughly an eighth of
    /// keys; a quarter of those are hard failures.
    pub fn device_fault(&self, key: u64) -> Option<DeviceFault> {
        if self.roll(DOMAIN_DEVICE, key) % 8 != 0 {
            return None;
        }
        let kind = self.roll(DOMAIN_DEVICE_KIND, key);
        if kind % 4 == 0 {
            Some(DeviceFault::Failed)
        } else {
            Some(DeviceFault::Degraded {
                latency_factor: 1.5 + 6.5 * Self::unit(kind),
            })
        }
    }

    /// Is the solve identified by `key` (the advisor seed) budget-
    /// exhausted, and down to which fallback rung? Fires for roughly a
    /// quarter of keys.
    pub fn solver_budget(&self, key: u64) -> Option<SolverBudget> {
        if self.roll(DOMAIN_SOLVER, key) % 4 != 0 {
            return None;
        }
        Some(match self.roll(DOMAIN_SOLVER_KIND, key) % 3 {
            0 => SolverBudget::Tight,
            1 => SolverBudget::PgOnly,
            _ => SolverBudget::GreedyOnly,
        })
    }

    /// Does attempt number `attempt` of the batch request identified
    /// by `key` (see [`request_key`]) fail? Each attempt rolls
    /// independently, so retries can deterministically succeed — or
    /// deterministically keep failing.
    pub fn request_fault(&self, key: u64, attempt: u32) -> bool {
        self.roll(DOMAIN_REQUEST.wrapping_add(attempt as u64), key) % 8 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_accepts_decimal_and_hex_and_rejects_noise() {
        assert_eq!(parse_spec("42"), Some(42));
        assert_eq!(parse_spec(" 0x5eed \n"), Some(0x5eed));
        assert_eq!(parse_spec("0XFF"), Some(0xff));
        assert_eq!(parse_spec("0"), None);
        assert_eq!(parse_spec("0x0"), None);
        assert_eq!(parse_spec(""), None);
        assert_eq!(parse_spec("nope"), None);
        assert_eq!(parse_spec("-3"), None);
    }

    #[test]
    fn zero_seed_means_off() {
        assert!(FaultPlan::from_seed(0).is_none());
        assert!(FaultPlan::from_seed(1).is_some());
    }

    #[test]
    fn queries_are_pure_functions_of_seed_and_key() {
        let p = FaultPlan::from_seed(0xfa_017).unwrap();
        for key in 0..200u64 {
            assert_eq!(p.trace_fault(key), p.trace_fault(key));
            assert_eq!(p.device_fault(key), p.device_fault(key));
            assert_eq!(p.solver_budget(key), p.solver_budget(key));
            assert_eq!(p.request_fault(key, 0), p.request_fault(key, 0));
        }
    }

    #[test]
    fn domains_are_independent_and_all_variants_reachable() {
        let p = FaultPlan::from_seed(7).unwrap();
        let mut traces = 0;
        let mut degraded = 0;
        let mut failed = 0;
        let mut tight = 0;
        let mut pg_only = 0;
        let mut greedy = 0;
        let mut requests = 0;
        let n = 4000u64;
        for key in 0..n {
            if let Some(t) = p.trace_fault(key) {
                traces += 1;
                assert!((0.5..=0.9).contains(&t.keep_fraction), "{t:?}");
            }
            match p.device_fault(key) {
                Some(DeviceFault::Degraded { latency_factor }) => {
                    degraded += 1;
                    assert!((1.5..=8.0).contains(&latency_factor));
                }
                Some(DeviceFault::Failed) => failed += 1,
                None => {}
            }
            match p.solver_budget(key) {
                Some(SolverBudget::Tight) => tight += 1,
                Some(SolverBudget::PgOnly) => pg_only += 1,
                Some(SolverBudget::GreedyOnly) => greedy += 1,
                None => {}
            }
            if p.request_fault(key, 0) {
                requests += 1;
            }
        }
        // Every fault kind is reachable, and none fires for every key.
        for (name, count) in [
            ("trace", traces),
            ("degraded", degraded),
            ("failed", failed),
            ("tight", tight),
            ("pg-only", pg_only),
            ("greedy", greedy),
            ("request", requests),
        ] {
            assert!(count > 0, "{name} never fired over {n} keys");
            assert!((count as u64) < n, "{name} fired for every key");
        }
    }

    #[test]
    fn retry_attempts_roll_independently() {
        let p = FaultPlan::from_seed(11).unwrap();
        // Some key must fail on attempt 0 and pass on attempt 1 (a
        // retryable transient), and some key must fail on both (a
        // persistent fault).
        let transient = (0..4000u64)
            .map(|i| request_key(42, i))
            .any(|k| p.request_fault(k, 0) && !p.request_fault(k, 1));
        let persistent = (0..4000u64)
            .map(|i| request_key(42, i))
            .any(|k| p.request_fault(k, 0) && p.request_fault(k, 1));
        assert!(transient, "no transient request fault found");
        assert!(persistent, "no persistent request fault found");
    }

    #[test]
    fn failed_devices_share_one_latency_policy() {
        assert_eq!(DeviceFault::Failed.latency_factor(), FAILED_LATENCY_FACTOR);
        let degraded = DeviceFault::Degraded {
            latency_factor: 2.5,
        };
        assert_eq!(degraded.latency_factor(), 2.5);
    }

    #[test]
    fn key_helpers_separate_domains() {
        // Calibration and replay probes of the same (seed, id) must
        // draw independent faults.
        assert_ne!(device_key(42, 3), calibration_key(42, 3));
        assert_ne!(device_key(42, 3), device_key(42, 4));
        assert_ne!(request_key(42, 3), request_key(43, 3));
    }
}
