//! Online statistics accumulators.

use crate::impl_json_struct;
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::time::SimTime;

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

// Manual impl rather than `impl_json_struct!`: an empty accumulator
// holds `min = +inf` / `max = -inf`, which JSON can only write as
// `null`, so decoding restores the infinities instead of NaN.
impl ToJson for OnlineStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_string(), self.count.to_json()),
            ("mean".to_string(), self.mean.to_json()),
            ("m2".to_string(), self.m2.to_json()),
            ("min".to_string(), self.min.to_json()),
            ("max".to_string(), self.max.to_json()),
            ("sum".to_string(), self.sum.to_json()),
        ])
    }
}

impl FromJson for OnlineStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let get = |name: &str| v.field(name).ok_or_else(|| JsonError::missing_field(name));
        let bound = |name: &str, empty: f64| -> Result<f64, JsonError> {
            match get(name)? {
                Json::Null => Ok(empty),
                other => f64::from_json(other),
            }
        };
        Ok(OnlineStats {
            count: u64::from_json(get("count")?)?,
            mean: f64::from_json(get("mean")?)?,
            m2: f64::from_json(get("m2")?)?,
            min: bound("min", f64::INFINITY)?,
            max: bound("max", f64::NEG_INFINITY)?,
            sum: f64::from_json(get("sum")?)?,
        })
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue
/// depth or busy/idle state. Utilization is the time-weighted mean of a
/// 0/1 busy indicator.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A fresh accumulator; the first `set` fixes the observation start.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            start: SimTime::ZERO,
            started: false,
        }
    }

    /// Records that the signal takes value `value` from time `now` on.
    pub fn set(&mut self, now: SimTime, value: f64) {
        if !self.started {
            self.started = true;
            self.start = now;
        } else {
            debug_assert!(now >= self.last_time);
            self.weighted_sum += self.last_value * (now - self.last_time).as_secs();
        }
        self.last_time = now;
        self.last_value = value;
    }

    /// The time-weighted mean over `[start, now]`.
    pub fn mean_until(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let span = (now - self.start).as_secs();
        if span <= 0.0 {
            return self.last_value;
        }
        let tail = self.last_value * (now - self.last_time).as_secs();
        (self.weighted_sum + tail) / span
    }

    /// Total accumulated value·time up to `now` (e.g. busy seconds).
    pub fn integral_until(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        self.weighted_sum + self.last_value * (now - self.last_time).as_secs()
    }
}

impl_json_struct!(TimeWeighted {
    last_time,
    last_value,
    weighted_sum,
    start,
    started
});

/// A latency histogram with logarithmic buckets, from 1 µs to ~1000 s.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bucket k counts values in [base * 2^k, base * 2^(k+1)).
    counts: Vec<u64>,
    base: f64,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    const BUCKETS: usize = 30;

    /// A histogram with base bucket 1 µs.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; Self::BUCKETS],
            base: 1e-6,
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records a value (seconds).
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value < self.base {
            self.underflow += 1;
            return;
        }
        let k = (value / self.base).log2() as usize;
        if k >= Self::BUCKETS {
            self.overflow += 1;
        } else {
            self.counts[k] += 1;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q in \[0,1\]` (bucket upper bound), or None
    /// if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.base);
        }
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.base * 2f64.powi(k as i32 + 1));
            }
        }
        Some(f64::INFINITY)
    }

    /// Merges another histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

impl_json_struct!(Histogram {
    counts,
    base,
    underflow,
    overflow,
    total
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_utilization() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(0.0), 1.0); // busy
        tw.set(SimTime::from_secs(3.0), 0.0); // idle
        tw.set(SimTime::from_secs(4.0), 1.0); // busy
        let u = tw.mean_until(SimTime::from_secs(10.0));
        // busy 0-3 and 4-10 => 9 of 10 seconds
        assert!((u - 0.9).abs() < 1e-12);
        assert!((tw.integral_until(SimTime::from_secs(10.0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_starts_at_first_set() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(5.0), 2.0);
        let m = tw.mean_until(SimTime::from_secs(7.0));
        assert!((m - 2.0).abs() < 1e-12);
        assert_eq!(TimeWeighted::new().mean_until(SimTime::from_secs(1.0)), 0.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1e-3); // 1 ms
        }
        for _ in 0..10 {
            h.record(1.0); // 1 s
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 < 1e-2, "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 0.5, "p99 {p99}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1e-3);
        b.record(1e-3);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }
}
