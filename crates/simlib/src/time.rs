//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in seconds from the start of the
/// simulation.
///
/// `SimTime` wraps an `f64` but provides a total order (the simulator
/// never produces NaN times; constructing one panics in debug builds).
/// Durations are also represented as `SimTime` — the simulator has no
/// need to distinguish instants from durations at the type level, and
/// keeping one type makes the arithmetic in device models direct.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

// Serialized as a bare number of seconds, matching the transparent
// newtype encoding the serde derive produced.
impl crate::json::ToJson for SimTime {
    fn to_json(&self) -> crate::json::Json {
        crate::json::ToJson::to_json(&self.0)
    }
}

impl crate::json::FromJson for SimTime {
    fn from_json(v: &crate::json::Json) -> Result<Self, crate::json::JsonError> {
        <f64 as crate::json::FromJson>::from_json(v).map(SimTime)
    }
}

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than any event the simulator will schedule.
    pub const FAR_FUTURE: SimTime = SimTime(f64::MAX / 4.0);

    /// Creates a time from seconds. Panics (debug) on NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this time is non-negative and finite.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // The simulator never stores NaN; total_cmp keeps this a total
        // order even if one slips through in release builds.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1}us", self.0 * 1e6)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(250.0).as_secs(), 0.00025);
        assert_eq!(SimTime::from_secs(2.0).as_millis(), 2000.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::ZERO < SimTime::FAR_FUTURE);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(0.25);
        assert_eq!((a + b).as_secs(), 1.25);
        assert_eq!((a - b).as_secs(), 0.75);
        assert_eq!((a * 3.0).as_secs(), 3.0);
        assert_eq!((a / 4.0).as_secs(), 0.25);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 1.25);
        c -= b;
        assert_eq!(c.as_secs(), 1.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimTime::from_secs(0.0015)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_secs(0.0000015)), "1.5us");
    }

    #[test]
    fn validity() {
        assert!(SimTime::from_secs(0.0).is_valid());
        assert!(!SimTime::from_secs(-1.0).is_valid());
        assert!(!SimTime::from_secs(f64::INFINITY).is_valid());
    }
}
