//! Deterministic future-event list.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue: a scheduled time, an insertion sequence
/// number for FIFO tie-breaking, and the payload.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and for
        // equal times, the lowest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list for discrete-event simulation.
///
/// Events are popped in non-decreasing time order. Events scheduled for
/// the same instant pop in the order they were pushed, which makes
/// simulations deterministic regardless of heap internals.
///
/// The queue also tracks the current simulation clock: popping an event
/// advances the clock to that event's time, and scheduling in the past
/// is a logic error (panics in debug builds, clamps in release).
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time (the time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events currently scheduled.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// `time` must not precede the current clock; scheduling in the past
    /// panics in debug builds and is clamped to `now` in release builds.
    pub fn schedule_at(&mut self, time: SimTime, payload: T) {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time:?} before current time {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` at `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimTime, payload: T) {
        debug_assert!(delay >= SimTime::ZERO, "negative delay {delay:?}");
        self.schedule_at(self.now + delay.max(SimTime::ZERO), payload);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.payload))
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drops all scheduled events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3.0), "c");
        q.schedule_at(SimTime::from_secs(1.0), "a");
        q.schedule_at(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_secs(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2.0), 0u32);
        q.pop();
        q.schedule_in(SimTime::from_secs(3.0), 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5.0));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(SimTime::from_secs(1.0), ());
        q.schedule_at(SimTime::from_secs(0.5), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(0.5)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1.0), 1);
        q.schedule_at(SimTime::from_secs(10.0), 10);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_secs(), v), (1.0, 1));
        q.schedule_in(SimTime::from_secs(2.0), 3);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_secs(), v), (3.0, 3));
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_secs(), v), (10.0, 10));
    }
}
