//! Discrete-event simulation kernel used by the WASLA storage simulator.
//!
//! This crate is intentionally small and dependency-light. It provides:
//!
//! * [`SimTime`] — a totally-ordered simulated-time type (seconds, `f64`).
//! * [`EventQueue`] — a deterministic future-event list with FIFO
//!   tie-breaking for events scheduled at the same instant.
//! * [`SimRng`] — a seedable, reproducible pseudo-random generator
//!   (xoshiro256++) with the sampling helpers the simulator needs
//!   (exponential inter-arrivals, bounded integers, shuffles, Zipf).
//! * [`par`] — a deterministic scoped-thread pool with an ordered
//!   [`par::par_map`]; the advisor's embarrassingly-parallel layers
//!   (multi-start solving, calibration, sweeps) all route through it.
//! * [`stats`] — online statistics accumulators (mean/variance,
//!   time-weighted averages for utilization, latency histograms).
//!
//! Determinism is a hard requirement: every experiment in the paper
//! reproduction must be re-runnable bit-for-bit from a seed, so all
//! randomness flows through [`SimRng`] and the event queue breaks ties
//! by insertion order rather than by heap internals.

pub mod events;
pub mod fault;
pub mod hash;
pub mod json;
pub mod par;
pub mod proptest;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use time::SimTime;
