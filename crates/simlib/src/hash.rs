//! Content hashing for stage-cache keys.
//!
//! The staged advisor pipeline memoizes expensive stage outputs
//! (calibration tables, workload fits) keyed by the *content* of their
//! inputs, so a batch of advise requests over shared hardware reuses
//! work instead of recomputing it. Keys must be stable across runs and
//! processes — `std::collections::hash_map::DefaultHasher` is
//! explicitly randomized, so this module provides a fixed FNV-1a
//! 64-bit hasher instead.
//!
//! Floating-point values are hashed by their IEEE-754 bit patterns
//! (`f64::to_bits`), which is exactly the identity the determinism
//! contract cares about: two inputs hash equal iff a bit-identical
//! computation would consume them identically.

use crate::json::{Json, ToJson};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit content hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a string, length-prefixed so concatenations can't
    /// collide with shifted field boundaries.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes any JSON-serializable value by its canonical rendering.
///
/// `ToJson` renderings are deterministic (ordered object fields, fixed
/// float formatting), so this gives every serializable input a stable
/// content key with no per-type hashing code. Fine for cache keys built
/// once per request; hot loops should feed [`Fnv64`] directly.
pub fn hash_json<T: ToJson + ?Sized>(value: &T) -> u64 {
    hash_json_value(&value.to_json())
}

fn hash_json_value(v: &Json) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&v.to_string_compact());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_known_value() {
        // FNV-1a of the empty input is the offset basis itself; a fixed
        // input must hash the same across runs and platforms.
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
        let a = *Fnv64::new().write_str("wasla");
        let b = *Fnv64::new().write_str("wasla");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), FNV_OFFSET);
    }

    #[test]
    fn field_boundaries_matter() {
        let ab = *Fnv64::new().write_str("ab").write_str("c");
        let a_bc = *Fnv64::new().write_str("a").write_str("bc");
        assert_ne!(ab.finish(), a_bc.finish());
    }

    #[test]
    fn f64_hashed_by_bits() {
        let a = *Fnv64::new().write_f64(1.0);
        let b = *Fnv64::new().write_f64(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
        // -0.0 and 0.0 are distinct bit patterns, hence distinct keys:
        // the cache may conservatively miss, never wrongly hit.
        let z = *Fnv64::new().write_f64(0.0);
        let nz = *Fnv64::new().write_f64(-0.0);
        assert_ne!(z.finish(), nz.finish());
    }

    #[test]
    fn hash_json_distinguishes_values() {
        assert_eq!(hash_json("x"), hash_json("x"));
        assert_ne!(hash_json("x"), hash_json("y"));
        assert_ne!(hash_json(&1.0f64), hash_json(&2.0f64));
    }
}
