//! A deterministic, in-tree property-testing harness.
//!
//! This module replaces the external `proptest` crate for the
//! workspace's `tests/properties.rs` suites. It deliberately mirrors
//! the subset of proptest's API those suites use — `proptest!`,
//! range/tuple strategies, `collection::vec`, `prop_map` /
//! `prop_flat_map` / `prop_filter_map`, `prop_oneof!`, `Just`,
//! `any::<T>()`, and the `prop_assert*` macros — so the test sources
//! read identically, while the engine underneath is the repo's own
//! [`SimRng`] (xoshiro256++).
//!
//! # Determinism and replay
//!
//! Every case seed is derived from `(base seed, fnv1a(test name), case
//! index)`, so runs are bit-for-bit reproducible and independent of
//! test execution order. The base seed defaults to a fixed constant
//! and can be overridden with the `WASLA_PROPTEST_SEED` environment
//! variable to explore a different deterministic stream.
//!
//! When a property fails, the harness shrinks the input (halving
//! numeric values toward their range minimum and truncating
//! collections) and reports the minimal failing input together with a
//! `cc <hex>` seed line. Appending that line to the crate's
//! `tests/properties.proptest-regressions` file makes every future run
//! replay the failing case first — the same file format proptest used,
//! and the seeds already present in the repo are replayed through the
//! same fold.

use crate::rng::SimRng;
use std::cell::Cell;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

/// Default base seed ("WASLA" in ASCII, zero-padded).
const DEFAULT_BASE_SEED: u64 = 0x5741_534C_4100_0001;

/// Marker returned by `prop_assume!` when a generated input does not
/// satisfy a test's precondition; the case is skipped, not failed.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Per-suite configuration (mirrors `proptest::ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values with an attached shrinker.
///
/// Unlike proptest's trait-based strategies, this is a concrete type
/// holding boxed closures; all combinators return `Strategy<U>`, which
/// keeps `prop_oneof!` and recursive composition simple.
pub struct Strategy<T> {
    gen: Rc<dyn Fn(&mut SimRng) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Strategy<T> {
    fn clone(&self) -> Self {
        Strategy {
            gen: Rc::clone(&self.gen),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Strategy<T> {
    /// Builds a strategy from a generator and a shrinker.
    pub fn new(
        gen: impl Fn(&mut SimRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Strategy {
            gen: Rc::new(gen),
            shrink: Rc::new(shrink),
        }
    }

    /// Builds a strategy with no shrinking.
    pub fn from_fn(gen: impl Fn(&mut SimRng) -> T + 'static) -> Self {
        Strategy::new(gen, |_| Vec::new())
    }

    /// Draws one value.
    pub fn generate(&self, rng: &mut SimRng) -> T {
        (self.gen)(rng)
    }

    /// Proposes smaller candidates for a failing value.
    pub fn shrink_value(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

/// Conversion into a [`Strategy`]. Implemented for strategies
/// themselves, numeric ranges, [`Just`], and tuples of strategies, so
/// plain range syntax (`0u64..100`) works wherever proptest accepted
/// it.
pub trait IntoStrategy {
    /// The generated value type.
    type Value: Clone + Debug + 'static;
    /// Performs the conversion.
    fn into_strategy(self) -> Strategy<Self::Value>;
}

impl<T: Clone + Debug + 'static> IntoStrategy for Strategy<T> {
    type Value = T;
    fn into_strategy(self) -> Strategy<T> {
        self
    }
}

/// A strategy that always yields the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> IntoStrategy for Just<T> {
    type Value = T;
    fn into_strategy(self) -> Strategy<T> {
        let value = self.0;
        Strategy::from_fn(move |_| value.clone())
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),+) => {$(
        impl IntoStrategy for Range<$t> {
            type Value = $t;
            fn into_strategy(self) -> Strategy<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start, self.end);
                Strategy::new(
                    move |rng| lo + rng.below((hi - lo) as u64) as $t,
                    move |&v: &$t| {
                        let mut out = Vec::new();
                        if v > lo {
                            out.push(lo);
                            let mid = lo + (v - lo) / 2;
                            if mid != lo && mid != v {
                                out.push(mid);
                            }
                            if v - 1 != lo && (v == lo || v - 1 != lo + (v - lo) / 2) {
                                out.push(v - 1);
                            }
                        }
                        out
                    },
                )
            }
        }
    )+};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

impl IntoStrategy for Range<f64> {
    type Value = f64;
    fn into_strategy(self) -> Strategy<f64> {
        assert!(self.start < self.end, "empty range strategy");
        let (lo, hi) = (self.start, self.end);
        Strategy::new(
            move |rng| rng.uniform_range(lo, hi),
            move |&v: &f64| {
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2.0;
                    if mid > lo && mid < v {
                        out.push(mid);
                    }
                }
                out
            },
        )
    }
}

/// Types with a canonical whole-domain strategy (the subset of
/// proptest's `Arbitrary` the suites use).
pub trait Arbitrary: Clone + Debug + Sized + 'static {
    /// The whole-domain strategy.
    fn arbitrary() -> Strategy<Self>;
}

/// A strategy over all values of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Strategy<T> {
    T::arbitrary()
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> Strategy<$t> {
                Strategy::new(
                    |rng| rng.next_u64() as $t,
                    |&v: &$t| {
                        let mut out = Vec::new();
                        if v > 0 {
                            out.push(0);
                            if v / 2 != 0 {
                                out.push(v / 2);
                            }
                        }
                        out
                    },
                )
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary() -> Strategy<bool> {
        Strategy::new(
            |rng| rng.chance(0.5),
            |&v: &bool| if v { vec![false] } else { Vec::new() },
        )
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> Strategy<f64> {
        // Finite doubles spanning a wide dynamic range.
        Strategy::new(
            |rng| {
                let magnitude = rng.uniform_range(-300.0, 300.0);
                let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
                sign * rng.uniform() * 10f64.powf(magnitude / 10.0)
            },
            |&v: &f64| {
                if v != 0.0 {
                    vec![0.0, v / 2.0]
                } else {
                    Vec::new()
                }
            },
        )
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: IntoStrategy),+> IntoStrategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn into_strategy(self) -> Strategy<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $(
                    #[allow(non_snake_case)]
                    let $name = $name.into_strategy();
                )+
                let shrinkers = ($($name.clone(),)+);
                Strategy::new(
                    move |rng: &mut SimRng| ($($name.generate(rng),)+),
                    move |val: &($($name::Value,)+)| {
                        let mut out: Vec<($($name::Value,)+)> = Vec::new();
                        $(
                            for cand in shrinkers.$idx.shrink_value(&val.$idx) {
                                let mut copy = val.clone();
                                copy.$idx = cand;
                                out.push(copy);
                            }
                        )+
                        out
                    },
                )
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Combinators available on anything convertible to a strategy
/// (mirrors proptest's `Strategy` extension methods).
pub trait StrategyExt: IntoStrategy + Sized {
    /// Maps generated values through `f`. Mapped strategies do not
    /// shrink (the mapping is not invertible).
    fn prop_map<U, F>(self, f: F) -> Strategy<U>
    where
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self.into_strategy();
        Strategy::from_fn(move |rng| f(inner.generate(rng)))
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> Strategy<S2::Value>
    where
        S2: IntoStrategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let inner = self.into_strategy();
        Strategy::from_fn(move |rng| f(inner.generate(rng)).into_strategy().generate(rng))
    }

    /// Keeps only values `f` maps to `Some`, regenerating otherwise.
    /// Panics (with `reason`) if 1000 consecutive draws are filtered
    /// out.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> Strategy<U>
    where
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> Option<U> + 'static,
    {
        let inner = self.into_strategy();
        Strategy::from_fn(move |rng| {
            for _ in 0..1000 {
                if let Some(u) = f(inner.generate(rng)) {
                    return u;
                }
            }
            panic!("prop_filter_map gave up after 1000 draws: {reason}");
        })
    }
}

impl<S: IntoStrategy> StrategyExt for S {}

/// Picks uniformly among the given strategies (backs `prop_oneof!`).
pub fn one_of<T: Clone + Debug + 'static>(arms: Vec<Strategy<T>>) -> Strategy<T> {
    assert!(!arms.is_empty(), "one_of with no arms");
    let shrink_arms = arms.clone();
    Strategy::new(
        move |rng| {
            let i = rng.index(arms.len());
            arms[i].generate(rng)
        },
        move |value| {
            // The producing arm is unknown; offer candidates from every
            // arm — the runner re-checks that candidates still fail.
            shrink_arms
                .iter()
                .flat_map(|arm| arm.shrink_value(value))
                .collect()
        },
    )
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// Length specification for [`vec`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// `(inclusive lower, exclusive upper)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end)
        }
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `elem`. Shrinks by truncating toward the minimum
    /// length, then element-wise.
    pub fn vec<S: IntoStrategy>(elem: S, len: impl SizeRange) -> Strategy<Vec<S::Value>> {
        let (lo, hi) = len.bounds();
        let elem = elem.into_strategy();
        let shrink_elem = elem.clone();
        Strategy::new(
            move |rng| {
                let n = lo + rng.below((hi - lo) as u64) as usize;
                (0..n).map(|_| elem.generate(rng)).collect()
            },
            move |v: &Vec<S::Value>| {
                let mut out = Vec::new();
                if v.len() > lo {
                    let half = (lo + v.len()) / 2;
                    if half < v.len() {
                        out.push(v[..half].to_vec());
                    }
                    if v.len() - 1 != half {
                        out.push(v[..v.len() - 1].to_vec());
                    }
                }
                'elements: for i in 0..v.len() {
                    for cand in shrink_elem.shrink_value(&v[i]).into_iter().take(2) {
                        let mut copy = v.clone();
                        copy[i] = cand;
                        out.push(copy);
                        if out.len() >= 64 {
                            break 'elements;
                        }
                    }
                }
                out
            },
        )
    }
}

// --- Runner ------------------------------------------------------------

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static PANIC_HOOK: Once = Once::new();

/// Installs a process-wide panic hook that suppresses printing for
/// panics the harness catches (each shrink candidate is probed by
/// panicking); other threads' panics still print normally.
fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

enum CaseOutcome {
    Pass,
    Reject,
    Fail(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_case<T, F>(test: &F, value: T) -> CaseOutcome
where
    F: Fn(T) -> Result<(), Rejected>,
{
    QUIET_PANICS.with(|q| q.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| test(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match result {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(Rejected)) => CaseOutcome::Reject,
        Err(payload) => CaseOutcome::Fail(panic_message(payload)),
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn case_seed(base: u64, stream: u64, case: u64) -> u64 {
    let mut x = base
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ case.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn base_seed() -> u64 {
    match std::env::var("WASLA_PROPTEST_SEED") {
        Ok(text) => text
            .trim()
            .parse::<u64>()
            .or_else(|_| u64::from_str_radix(text.trim().trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| panic!("WASLA_PROPTEST_SEED is not an integer: {text:?}")),
        Err(_) => DEFAULT_BASE_SEED,
    }
}

/// Parses `cc <hex>` seed lines from a proptest-style regressions
/// file. Each hex payload (proptest used 32 bytes; this harness emits
/// 8) is folded big-endian into a `u64` replay seed, so the historical
/// seeds keep being exercised and newly recorded ones replay exactly.
fn regression_seeds(path: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex = rest.split_whitespace().next()?;
            if hex.is_empty() || hex.len() % 2 != 0 {
                return None;
            }
            let mut acc = 0u64;
            for i in (0..hex.len()).step_by(2) {
                let byte = u8::from_str_radix(&hex[i..i + 2], 16).ok()?;
                acc = acc.rotate_left(8) ^ byte as u64;
            }
            Some(acc)
        })
        .collect()
}

const MAX_SHRINK_PROBES: usize = 500;

/// Runs one property: replayed regression cases first, then
/// `config.cases` fresh deterministic cases. On failure the input is
/// shrunk and the harness panics with the minimal input, the failure
/// message, and a replayable `cc` seed line.
///
/// This is the target of the [`proptest!`](crate::proptest!) macro
/// expansion; call it directly only when generating the strategy
/// programmatically.
pub fn run_property<T, F>(
    name: &str,
    regressions_path: &str,
    config: ProptestConfig,
    strategy: Strategy<T>,
    test: F,
) where
    T: Clone + Debug + 'static,
    F: Fn(T) -> Result<(), Rejected>,
{
    install_panic_hook();
    let base = base_seed();
    let stream = fnv1a(name);
    let mut seeds: Vec<u64> = regression_seeds(regressions_path);
    seeds.extend((0..config.cases as u64).map(|case| case_seed(base, stream, case)));

    let mut rejects = 0u32;
    for seed in seeds {
        let mut rng = SimRng::new(seed);
        let value = strategy.generate(&mut rng);
        let message = match run_case(&test, value.clone()) {
            CaseOutcome::Pass => continue,
            CaseOutcome::Reject => {
                rejects += 1;
                assert!(
                    rejects <= config.cases.max(16) * 4,
                    "property `{name}`: too many inputs rejected by prop_assume!"
                );
                continue;
            }
            CaseOutcome::Fail(message) => message,
        };

        // Shrink: greedily move to the first still-failing candidate.
        let mut minimal = value;
        let mut minimal_message = message;
        let mut probes = 0usize;
        'shrinking: while probes < MAX_SHRINK_PROBES {
            for candidate in strategy.shrink_value(&minimal) {
                probes += 1;
                if let CaseOutcome::Fail(m) = run_case(&test, candidate.clone()) {
                    minimal = candidate;
                    minimal_message = m;
                    continue 'shrinking;
                }
                if probes >= MAX_SHRINK_PROBES {
                    break;
                }
            }
            break;
        }

        panic!(
            "property `{name}` failed.\n\
             minimal failing input: {minimal:#?}\n\
             failure: {minimal_message}\n\
             replay: append the line below to {regressions_path}\n\
             cc {seed:016x}"
        );
    }
}

/// Glob-import target mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::{
        any, collection, one_of, Arbitrary, IntoStrategy, Just, ProptestConfig, Rejected, Strategy,
        StrategyExt,
    };
    // Re-export the module itself so pre-existing
    // `proptest::collection::vec(...)` paths in test files keep
    // resolving, and the macros (same names, macro namespace).
    pub use crate::proptest;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof};
}

/// Defines property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies with `pattern
/// in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @expand [$config] $($rest)* }
    };
    (@expand [$config:expr] $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::proptest::run_property(
                    stringify!($name),
                    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.proptest-regressions"),
                    $config,
                    $crate::proptest::IntoStrategy::into_strategy(($($strat,)+)),
                    move |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @expand [$crate::proptest::ProptestConfig::default()] $($rest)* }
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::proptest::Rejected);
        }
    };
}

/// Asserts a condition inside a property (fails the case on violation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            panic!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            panic!($($fmt)+);
        }
    }};
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::proptest::one_of(vec![
            $($crate::proptest::IntoStrategy::into_strategy($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet<R>(f: impl FnOnce() -> R) -> R {
        // Suppress the harness's own failure report while this unit
        // test deliberately triggers it.
        install_panic_hook();
        QUIET_PANICS.with(|q| q.set(true));
        let r = f();
        QUIET_PANICS.with(|q| q.set(false));
        r
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = SimRng::new(7);
        let ints = (5u64..10).into_strategy();
        let floats = (-1.0f64..1.0).into_strategy();
        for _ in 0..1000 {
            let v = ints.generate(&mut rng);
            assert!((5..10).contains(&v));
            let f = floats.generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec((0u64..100, 0.0f64..1.0), 1..20);
        let a: Vec<_> = (0..10)
            .map(|i| strat.generate(&mut SimRng::new(i)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|i| strat.generate(&mut SimRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn range_shrink_moves_toward_lower_bound() {
        let strat = (10u64..1000).into_strategy();
        let candidates = strat.shrink_value(&500);
        assert!(candidates.contains(&10));
        assert!(candidates.iter().all(|&c| c < 500 && c >= 10));
        assert!(strat.shrink_value(&10).is_empty());
    }

    #[test]
    fn vec_shrink_truncates_toward_min_len() {
        let strat = collection::vec(0u64..100, 2..50);
        let value: Vec<u64> = (0..20).collect();
        let candidates = strat.shrink_value(&value);
        assert!(candidates.iter().any(|c| c.len() < value.len()));
        assert!(candidates.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn tuple_strategy_shrinks_componentwise() {
        let strat = (1u64..100, 1u64..100).into_strategy();
        let candidates = strat.shrink_value(&(50, 50));
        assert!(candidates.iter().any(|&(a, b)| a < 50 && b == 50));
        assert!(candidates.iter().any(|&(a, b)| a == 50 && b < 50));
    }

    #[test]
    fn filter_map_retries_until_accepted() {
        let strat = (0u64..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn passing_property_runs_clean() {
        run_property(
            "passing_property_runs_clean",
            "/nonexistent/regressions",
            ProptestConfig::with_cases(32),
            (0u64..100, 0.0f64..1.0).into_strategy(),
            |(n, f)| {
                assert!(n < 100 && (0.0..1.0).contains(&f));
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_shrinks_and_reports_seed() {
        let result = quiet(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_property(
                    "failing_property_shrinks_and_reports_seed",
                    "/nonexistent/regressions",
                    ProptestConfig::with_cases(64),
                    (0u64..1000).into_strategy(),
                    |v| {
                        assert!(v < 17, "value {v} too large");
                        Ok(())
                    },
                )
            }))
        });
        let message = panic_message(result.expect_err("property must fail"));
        assert!(message.contains("minimal failing input"), "{message}");
        assert!(message.contains("cc "), "{message}");
        // Greedy halving toward the range minimum lands exactly on the
        // boundary value 17.
        assert!(message.contains("17"), "{message}");
    }

    #[test]
    fn rejected_cases_are_skipped() {
        run_property(
            "rejected_cases_are_skipped",
            "/nonexistent/regressions",
            ProptestConfig::with_cases(32),
            (0u64..100,).into_strategy(),
            |(v,)| {
                if v % 2 == 1 {
                    return Err(Rejected);
                }
                assert_eq!(v % 2, 0);
                Ok(())
            },
        );
    }

    #[test]
    fn regression_seed_lines_fold_to_u64() {
        let dir = std::env::temp_dir().join("wasla-proptest-selftest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("regressions.txt");
        std::fs::write(
            &path,
            "# comment line\n\
             cc 000000000000002a # shrinks to x = 42\n\
             cc 68ead2060550e5ed3bb5f3fa2f98617b0c2b0c795ee9ce59152cda9d561964e4 # 32-byte proptest seed\n\
             not a seed line\n",
        )
        .unwrap();
        let seeds = regression_seeds(path.to_str().unwrap());
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], 0x2a);
        // The 32-byte fold is deterministic (exact value pinned so the
        // replay stream never drifts).
        let expected = {
            let bytes = [
                0x68u8, 0xea, 0xd2, 0x06, 0x05, 0x50, 0xe5, 0xed, 0x3b, 0xb5, 0xf3, 0xfa, 0x2f,
                0x98, 0x61, 0x7b, 0x0c, 0x2b, 0x0c, 0x79, 0x5e, 0xe9, 0xce, 0x59, 0x15, 0x2c, 0xda,
                0x9d, 0x56, 0x19, 0x64, 0xe4,
            ];
            bytes
                .iter()
                .fold(0u64, |acc, &b| acc.rotate_left(8) ^ b as u64)
        };
        assert_eq!(seeds[1], expected);
    }

    #[test]
    fn one_of_draws_from_every_arm() {
        let strat = one_of(vec![
            (0u64..10).into_strategy(),
            (100u64..110).into_strategy(),
        ]);
        let mut rng = SimRng::new(11);
        let mut low = false;
        let mut high = false;
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            if v < 10 {
                low = true;
            } else {
                assert!((100..110).contains(&v));
                high = true;
            }
        }
        assert!(low && high);
    }
}
