//! A self-contained JSON subsystem: value type, parser, printers, and
//! serialization traits.
//!
//! The repo builds hermetically with zero external crates, so this
//! module replaces `serde`/`serde_json`. The printers are
//! byte-compatible with `serde_json`'s output for the value shapes the
//! repo produces (the seed `results/*.json` files round-trip
//! byte-identically; see the golden tests in `wasla-bench`). The
//! crucial detail is float formatting: like ryu, finite `f64`s print in
//! decimal notation when the decimal exponent lies in `[-5, 16)` and in
//! scientific notation (`1.5e-7`, `1e20`) otherwise, always using the
//! shortest digit string that round-trips. Non-finite floats print as
//! `null`, as `serde_json` does.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number. Integer and float forms are kept distinct so that
/// `u64`/`i64` fields round-trip without gaining a fractional point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer (`u64` range).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::UInt(v) => Some(v),
            Number::Int(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Int(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

/// A parsed JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), so
/// printing a parsed document reproduces the original key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// An error produced while parsing or decoding JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// The undecorated message (without the `json error:` prefix that
    /// [`Display`](fmt::Display) adds).
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// A "missing field" decode error.
    pub fn missing_field(name: &str) -> Self {
        JsonError::new(format!("missing field `{name}`"))
    }

    /// A "wrong type" decode error.
    pub fn expected(what: &str, got: &Json) -> Self {
        JsonError::new(format!("expected {what}, got {}", got.kind_name()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(v)
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn items(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::expected("array", other)),
        }
    }

    /// Prints the value compactly (no whitespace), like
    /// `serde_json::to_string`.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-prints the value with two-space indentation, like
    /// `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some("  "), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<&str>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::Float(v) => out.push_str(&format_f64(v)),
    }
}

/// Formats a finite `f64` exactly as ryu (and therefore `serde_json`)
/// does: shortest round-trip digits, decimal notation for decimal
/// exponents in `[-5, 16)`, scientific otherwise. Non-finite values
/// become `null`.
pub fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // `{:e}` gives the shortest round-trip digit string as
    // `D.DDDDeK`; re-place the decimal point per ryu's notation rule.
    let exp = format!("{x:e}");
    let (mantissa, k) = exp.split_once('e').expect("LowerExp always contains e");
    let k: i32 = k.parse().expect("LowerExp exponent is an integer");
    let (sign, mantissa) = match mantissa.strip_prefix('-') {
        Some(m) => ("-", m),
        None => ("", mantissa),
    };
    let digits: String = mantissa.chars().filter(|&c| c != '.').collect();
    let mut out = String::from(sign);
    if (-5..16).contains(&k) {
        if k < 0 {
            out.push_str("0.");
            for _ in 0..(-k - 1) {
                out.push('0');
            }
            out.push_str(&digits);
        } else {
            let k = k as usize;
            if k + 1 >= digits.len() {
                out.push_str(&digits);
                for _ in 0..(k + 1 - digits.len()) {
                    out.push('0');
                }
                out.push_str(".0");
            } else {
                out.push_str(&digits[..k + 1]);
                out.push('.');
                out.push_str(&digits[k + 1..]);
            }
        }
    } else {
        out.push_str(&digits[..1]);
        if digits.len() > 1 {
            out.push('.');
            out.push_str(&digits[1..]);
        }
        out.push('e');
        out.push_str(&k.to_string());
    }
    out
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The parser recurses
/// per nesting level, so hostile input like `"[".repeat(1_000_000)`
/// must produce a typed error, not a stack overflow; no document the
/// repo produces nests anywhere near this deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.error("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.error("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat("\\u")
                                    .map_err(|_| self.error("unpaired surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 encoded char.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.error("invalid unicode escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Num(Number::UInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Number::Int(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Json::Num(Number::Float(v)))
            .map_err(|_| self.error("invalid number"))
    }
}

/// Serialization to a [`Json`] value.
pub trait ToJson {
    /// Converts the value.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes the value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::expected("bool", other)),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Number::Float(*self))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) => Ok(n.as_f64()),
            // serde_json writes non-finite floats as null; accept the
            // same on the way back in so such documents round-trip.
            Json::Null => Ok(f64::NAN),
            other => Err(JsonError::expected("number", other)),
        }
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(Number::UInt(*self as u64))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(n) => n
                        .as_u64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| JsonError::expected(stringify!($t), v)),
                    other => Err(JsonError::expected(stringify!($t), other)),
                }
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v < 0 {
                    Json::Num(Number::Int(v))
                } else {
                    Json::Num(Number::UInt(v as u64))
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(n) => n
                        .as_i64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| JsonError::expected(stringify!($t), v)),
                    other => Err(JsonError::expected(stringify!($t), other)),
                }
            }
        }
    )+};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::expected("string", other)),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.items()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

macro_rules! impl_json_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let items = v.items()?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(JsonError::new(format!(
                        "expected a {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_json_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Implements `ToJson`/`FromJson` for a struct as an object with one
/// entry per listed field, in the listed order (matching what
/// `#[derive(Serialize)]` produced). Must be invoked where the fields
/// are visible.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                $(
                    let $field = $crate::json::FromJson::from_json(
                        v.field(stringify!($field)).ok_or_else(|| {
                            $crate::json::JsonError::missing_field(stringify!($field))
                        })?,
                    )?;
                )+
                Ok(Self { $($field),+ })
            }
        }
    };
}

/// Implements `ToJson`/`FromJson` for a fieldless enum as a plain
/// string of the variant name (matching serde's external tagging for
/// unit variants).
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant)),+
                };
                $crate::json::Json::Str(name.to_string())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match v {
                    $($crate::json::Json::Str(s) if s == stringify!($variant) => {
                        Ok(<$ty>::$variant)
                    })+
                    other => Err($crate::json::JsonError::new(format!(
                        concat!("unknown ", stringify!($ty), " variant: {:?}"),
                        other
                    ))),
                }
            }
        }
    };
}

/// Builds the serde-style externally-tagged object for one enum
/// variant: `{"Variant": payload}`.
pub fn variant(name: &str, payload: Json) -> Json {
    Json::Obj(vec![(name.to_string(), payload)])
}

/// Decodes a serde-style externally-tagged enum value: returns the
/// variant name and its payload.
pub fn untag(v: &Json) -> Result<(&str, &Json), JsonError> {
    match v {
        Json::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        other => Err(JsonError::expected("a single-key enum object", other)),
    }
}

/// Serializes any `ToJson` value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Serializes any `ToJson` value with pretty indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses and decodes a typed value from a JSON document.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(Number::UInt(42)));
        assert_eq!(Json::parse("-7").unwrap(), Json::Num(Number::Int(-7)));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(Number::Float(1.5)));
        assert_eq!(
            Json::parse("1e-3").unwrap(),
            Json::Num(Number::Float(0.001))
        );
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2.5, "x"], "b": {"c": null}, "d": []}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.field("a").unwrap().items().unwrap().len(), 3);
        assert_eq!(v.field("b").unwrap().field("c"), Some(&Json::Null));
        assert_eq!(v.field("d").unwrap(), &Json::Arr(vec![]));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash \t tab \u{1} ctl \u{1F600} emoji";
        let printed = Json::Str(original.to_string()).to_string_compact();
        let back = Json::parse(&printed).unwrap();
        assert_eq!(back, Json::Str(original.to_string()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("Aé".to_string())
        );
        // Surrogate pair for U+1D11E (musical G clef).
        assert_eq!(
            Json::parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("\u{1D11E}".to_string())
        );
    }

    #[test]
    fn float_formatting_matches_ryu_notation() {
        for (x, want) in [
            (1.0, "1.0"),
            (0.1, "0.1"),
            (-2.25, "-2.25"),
            (0.000011728, "0.000011728"),
            (0.000017369448735551907, "0.000017369448735551907"),
            (1.5e-7, "1.5e-7"),
            (1e16, "1e16"),
            (1.5e20, "1.5e20"),
            (1e15, "1000000000000000.0"),
            (-0.0, "-0.0"),
            (0.0, "0.0"),
        ] {
            assert_eq!(format_f64(x), want, "formatting {x}");
        }
    }

    #[test]
    fn non_finite_floats_print_null() {
        assert_eq!(f64::NAN.to_json().to_string_compact(), "null");
        assert_eq!(f64::INFINITY.to_json().to_string_compact(), "null");
        assert!(f64::from_json(&Json::Null).unwrap().is_nan());
    }

    #[test]
    fn integers_keep_integer_form() {
        let v = Json::parse("[0, 18446744073709551615, -9223372036854775808]").unwrap();
        assert_eq!(
            v.to_string_compact(),
            "[0,18446744073709551615,-9223372036854775808]"
        );
    }

    #[test]
    fn pretty_print_matches_serde_style() {
        let v = Json::parse(r#"{"id":"x","rows":[{"m":[["a",1.5]]}],"empty":[]}"#).unwrap();
        let want = "{\n  \"id\": \"x\",\n  \"rows\": [\n    {\n      \"m\": [\n        [\n          \"a\",\n          1.5\n        ]\n      ]\n    }\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.to_string_pretty(), want);
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Reasonable nesting parses; hostile nesting gets a typed
        // error instead of exhausting the stack.
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Unbalanced hostile input (no closers at all) must also fail
        // cleanly — this is the stack-overflow shape.
        assert!(Json::parse(&"[".repeat(1 << 20)).is_err());
        assert!(Json::parse(&"{\"a\":".repeat(1 << 18)).is_err());
        // Depth is the *current* nesting, not a cumulative count:
        // many sibling containers at the same level stay fine.
        let wide = format!("[{}]", vec!["[[1]]"; 200].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "{\"a\":}",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<String>,
        extra: Option<f64>,
    }

    impl_json_struct!(Demo {
        name,
        count,
        ratio,
        tags,
        extra
    });

    #[test]
    fn struct_macro_round_trips() {
        let d = Demo {
            name: "x".to_string(),
            count: 3,
            ratio: 0.5,
            tags: vec!["a".to_string(), "b".to_string()],
            extra: None,
        };
        let text = to_string(&d);
        assert_eq!(
            text,
            r#"{"name":"x","count":3,"ratio":0.5,"tags":["a","b"],"extra":null}"#
        );
        let back: Demo = from_str(&text).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn struct_macro_reports_missing_fields() {
        let err = from_str::<Demo>(r#"{"name":"x"}"#).unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }

    impl_json_unit_enum!(Color { Red, Green });

    #[test]
    fn unit_enum_serializes_as_string() {
        assert_eq!(to_string(&Color::Red), "\"Red\"");
        assert_eq!(from_str::<Color>("\"Green\"").unwrap(), Color::Green);
        assert!(from_str::<Color>("\"Blue\"").is_err());
    }

    #[test]
    fn tuples_serialize_as_arrays() {
        let pair = ("elapsed".to_string(), 1.5f64);
        assert_eq!(to_string(&pair), r#"["elapsed",1.5]"#);
        let back: (String, f64) = from_str(r#"["elapsed",1.5]"#).unwrap();
        assert_eq!(back, pair);
        assert!(from_str::<(String, f64)>("[\"a\"]").is_err());
    }
}
