//! Calibration harness: builds [`TableModel`]s by measurement.
//!
//! The paper constructs its cost models "by subjecting the storage
//! targets to calibration workloads with known request sizes, run
//! counts, and degrees of contention and measuring the request service
//! times, which are then tabulated" (§5.2.2). This module does exactly
//! that against our simulated devices:
//!
//! For each grid point `(size, run count, χ)` we run a *primary*
//! stream — sequential runs of the given length at the given request
//! size, jumping to a random location between runs — interleaved with
//! χ competing random requests per primary request (the competing
//! traffic from temporally-correlated workloads that the contention
//! factor models). Requests are serviced in SSTF order, as a real
//! drive's queue would, and the mean *service time* of primary
//! requests is tabulated.
//!
//! Grid points are measured concurrently on the [`par`] pool: each
//! point's stream of simulated requests is driven by its own `SimRng`
//! whose seed is a fixed function of the base seed and the point's
//! grid coordinates ([`point_seed`]), so the tabulated values are
//! bit-identical at any `WASLA_THREADS` setting — and identical to
//! what the serial loop produced.

use crate::grid::{Axis, Grid3};
use crate::table::TableModel;
use wasla_simlib::fault::{self, DeviceFault};
use wasla_simlib::hash::hash_json;
use wasla_simlib::{par, SimRng};
use wasla_storage::device::DeviceSpec;
use wasla_storage::request::DeviceIo;
use wasla_storage::sched::SchedulerKind;
use wasla_storage::IoKind;

/// The calibration grid and sampling parameters.
#[derive(Clone, Debug)]
pub struct CalibrationGrid {
    /// Request sizes in bytes.
    pub sizes: Vec<f64>,
    /// Run counts (requests per sequential run).
    pub runs: Vec<f64>,
    /// Contention factors χ.
    pub contentions: Vec<f64>,
    /// Primary requests measured per grid point.
    pub samples: usize,
    /// Primary requests discarded before measuring (cache/position
    /// warm-up).
    pub warmup: usize,
}

impl Default for CalibrationGrid {
    fn default() -> Self {
        CalibrationGrid {
            sizes: vec![
                4096.0, 8192.0, 16384.0, 32768.0, 65536.0, 131072.0, 262144.0,
            ],
            runs: vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            contentions: vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            samples: 160,
            warmup: 24,
        }
    }
}

wasla_simlib::impl_json_struct!(CalibrationGrid {
    sizes,
    runs,
    contentions,
    samples,
    warmup
});

impl CalibrationGrid {
    /// A small grid for tests.
    pub fn coarse() -> Self {
        CalibrationGrid {
            sizes: vec![8192.0, 131072.0],
            runs: vec![1.0, 8.0, 64.0],
            contentions: vec![0.0, 2.0, 8.0],
            samples: 80,
            warmup: 10,
        }
    }
}

/// The fault-plan query for calibrating `spec` under `seed`, if the
/// plan injects one. Public so the session layer can re-query it to
/// record a degradation note alongside the (already scaled) tables.
pub fn calibration_fault(spec: &DeviceSpec, seed: u64) -> Option<DeviceFault> {
    fault::plan()?.device_fault(fault::calibration_key(seed, hash_json(spec)))
}

/// Calibrates a device spec into a tabulated cost model.
///
/// When the active fault plan degrades this calibration run (see
/// [`calibration_fault`]), every tabulated service time is scaled by
/// the fault's latency factor — the table honestly describes the
/// slower device the advisor must plan around. With no plan or no
/// fault the values are untouched, bit-for-bit.
pub fn calibrate_device(spec: &DeviceSpec, grid: &CalibrationGrid, seed: u64) -> TableModel {
    let name = match spec {
        DeviceSpec::Disk(_) => "disk",
        DeviceSpec::Ssd(_) => "ssd",
    };
    let mut reads = calibrate_kind(spec, grid, IoKind::Read, seed);
    let mut writes = calibrate_kind(spec, grid, IoKind::Write, seed ^ 0x5eed);
    if let Some(f) = calibration_fault(spec, seed) {
        reads.scale_values(f.latency_factor());
        writes.scale_values(f.latency_factor());
    }
    TableModel {
        device: name.to_string(),
        tier: spec.tier(),
        reads,
        writes,
    }
}

/// The fixed (base seed, grid coordinates) → RNG seed map.
///
/// Every grid point derives its generator from the base seed and its
/// own coordinates only — the RNG is *point-indexed*, never threaded
/// sequentially from one measurement into the next — which is what
/// makes the parallel sweep observationally equivalent to the serial
/// one. The formula is the seed repository's original derivation, so
/// calibration tables also stay bit-identical across this refactor.
fn point_seed(seed: u64, si: usize, ri: usize, ci: usize) -> u64 {
    seed ^ ((si as u64) << 40) ^ ((ri as u64) << 20) ^ (ci as u64 + 1)
}

fn calibrate_kind(spec: &DeviceSpec, grid: &CalibrationGrid, kind: IoKind, seed: u64) -> Grid3 {
    let mut points =
        Vec::with_capacity(grid.sizes.len() * grid.runs.len() * grid.contentions.len());
    for (si, &size) in grid.sizes.iter().enumerate() {
        for (ri, &run) in grid.runs.iter().enumerate() {
            for (ci, &chi) in grid.contentions.iter().enumerate() {
                points.push((size, run, chi, point_seed(seed, si, ri, ci)));
            }
        }
    }
    let values = par::par_map(&points, |&(size, run, chi, point_seed)| {
        measure_point(spec, size as u64, run, chi, kind, grid, point_seed)
    });
    Grid3::new(
        Axis::new(grid.sizes.clone()),
        Axis::new(grid.runs.clone()),
        Axis::new(grid.contentions.clone()),
        values,
    )
}

/// Competing-request size (small random probes, as interfering
/// database traffic typically is).
const COMPETITOR_SIZE: u64 = 8192;

/// Measures the mean primary-request service time at one grid point.
fn measure_point(
    spec: &DeviceSpec,
    size: u64,
    run: f64,
    chi: f64,
    kind: IoKind,
    grid: &CalibrationGrid,
    seed: u64,
) -> f64 {
    let mut device = spec.build();
    let mut rng = SimRng::new(seed);
    let capacity = device.capacity();
    let span = capacity.saturating_sub(size).max(1);
    let run_len = run.round().max(1.0) as u64;

    let mut run_left = 0u64;
    let mut next_offset = 0u64;
    let mut total = 0.0;
    let mut measured = 0usize;
    let mut pending: Vec<DeviceIo> = Vec::new();

    for cycle in 0..(grid.warmup + grid.samples) {
        // Primary request: continue the current run or jump.
        if run_left == 0 {
            next_offset = rng.below(span / size.max(1)) * size;
            run_left = run_len;
        }
        let primary = DeviceIo {
            kind,
            offset: next_offset.min(capacity - size),
            len: size,
            stream: 0,
        };
        run_left -= 1;
        next_offset = primary.offset + size;
        if next_offset + size > capacity {
            run_left = 0;
        }
        // Competing random requests for this cycle: χ per primary in
        // expectation (fractional χ realized stochastically).
        let k = chi.floor() as usize + usize::from(rng.chance(chi.fract()));
        pending.clear();
        pending.push(primary);
        for c in 0..k {
            let off = rng.below(capacity / COMPETITOR_SIZE) * COMPETITOR_SIZE;
            pending.push(DeviceIo {
                kind: IoKind::Read,
                offset: off,
                len: COMPETITOR_SIZE,
                stream: 1 + c as u32,
            });
        }
        // Service the whole cycle's pool in SSTF order, so exactly χ
        // competing requests interleave between consecutive primary
        // requests (the definition of the contention factor, Eq. 2).
        while !pending.is_empty() {
            let pick = SchedulerKind::Sstf.pick(&pending, device.head_position());
            let req = pending.swap_remove(pick);
            let st = device.service_time(&req, &mut rng);
            if req.stream == 0 && cycle >= grid.warmup {
                total += st.as_secs();
                measured += 1;
            }
        }
    }
    total / measured.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CostModel;
    use wasla_storage::{DiskParams, SsdParams, GIB};

    fn disk_model() -> TableModel {
        calibrate_device(
            &DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB)),
            &CalibrationGrid::coarse(),
            7,
        )
    }

    #[test]
    fn sequential_cheaper_than_random_at_low_contention() {
        let m = disk_model();
        let seq = m.request_cost(IoKind::Read, 8192.0, 64.0, 0.0);
        let rand = m.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        assert!(rand > 5.0 * seq, "rand {rand:.6} should dwarf seq {seq:.6}");
    }

    #[test]
    fn sequential_advantage_collapses_under_contention() {
        // The Figure 8 effect: the sequential advantage shrinks
        // dramatically as χ grows.
        let m = disk_model();
        let seq_lo = m.request_cost(IoKind::Read, 8192.0, 64.0, 0.0);
        let seq_hi = m.request_cost(IoKind::Read, 8192.0, 64.0, 8.0);
        let rand_hi = m.request_cost(IoKind::Read, 8192.0, 1.0, 8.0);
        assert!(seq_hi > 3.0 * seq_lo, "lo {seq_lo:.6} hi {seq_hi:.6}");
        // Under heavy contention sequential ≈ random.
        assert!(seq_hi > 0.5 * rand_hi);
    }

    #[test]
    fn bigger_requests_cost_more_sequentially() {
        let m = disk_model();
        let small = m.request_cost(IoKind::Read, 8192.0, 64.0, 0.0);
        let big = m.request_cost(IoKind::Read, 131072.0, 64.0, 0.0);
        assert!(big > small);
    }

    #[test]
    fn ssd_flat_across_run_count_and_contention() {
        let m = calibrate_device(
            &DeviceSpec::Ssd(SsdParams::sata_gen1(32 * GIB)),
            &CalibrationGrid::coarse(),
            7,
        );
        let a = m.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        let b = m.request_cost(IoKind::Read, 8192.0, 64.0, 8.0);
        assert!((a - b).abs() / a < 0.05, "a {a} b {b}");
        // And far cheaper than a disk's random read.
        let disk = disk_model();
        let d = disk.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        assert!(d > 10.0 * a);
    }

    #[test]
    fn calibration_deterministic() {
        let a = disk_model();
        let b = disk_model();
        assert_eq!(a, b);
    }
}
