//! Tabulated cost models with interpolation.

use crate::grid::Grid3;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_storage::{IoKind, Tier};

/// A per-request cost model for one device or target type.
///
/// `request_cost` returns the expected *service occupancy* in seconds
/// that one request of the given kind imposes, as a function of the
/// three workload parameters the paper's models use: average request
/// size (bytes), run count (sequentiality), and contention factor χ.
pub trait CostModel: Send + Sync {
    /// Expected per-request cost in seconds.
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64;

    /// The economic tier of the modeled target, consumed by the
    /// tier-aware layout objectives (`ProvisioningCost`, `WearBlend`).
    /// Defaults to the HDD tier, which every pre-tier model
    /// implicitly assumed.
    fn tier(&self) -> Tier {
        Tier::hdd()
    }
}

/// A black-box tabulated model: one 3-D grid per request direction,
/// built from calibration measurements and interpolated at query time
/// (paper §5.2.2, Figure 8 shows one slice of such a model).
#[derive(Clone, Debug, PartialEq)]
pub struct TableModel {
    /// Device name the model was calibrated for (diagnostic).
    pub device: String,
    /// Economic tier of the calibrated device.
    pub tier: Tier,
    /// Read-request costs.
    pub reads: Grid3,
    /// Write-request costs.
    pub writes: Grid3,
}

impl ToJson for TableModel {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device".to_string(), self.device.to_json()),
            ("tier".to_string(), self.tier.to_json()),
            ("reads".to_string(), self.reads.to_json()),
            ("writes".to_string(), self.writes.to_json()),
        ])
    }
}

// Hand-rolled so calibration tables persisted before the tier layer
// (session caches, committed model files) still parse: a missing
// `tier` defaults from the device name.
impl FromJson for TableModel {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| v.field(name).ok_or_else(|| JsonError::missing_field(name));
        let device = String::from_json(field("device")?)?;
        let tier = match v.field("tier") {
            Some(t) => Tier::from_json(t)?,
            None => Tier::for_device_name(&device),
        };
        let reads = Grid3::from_json(field("reads")?)?;
        let writes = Grid3::from_json(field("writes")?)?;
        Ok(TableModel {
            device,
            tier,
            reads,
            writes,
        })
    }
}

impl CostModel for TableModel {
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64 {
        let grid = match kind {
            IoKind::Read => &self.reads,
            IoKind::Write => &self.writes,
        };
        grid.interpolate(size, run_count, contention)
    }

    fn tier(&self) -> Tier {
        self.tier.clone()
    }
}

impl TableModel {
    /// Serializes the model to JSON (models are expensive to calibrate
    /// on real hardware; persisting them is standard practice).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Deserializes a model from JSON.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Axis;

    fn tiny_model() -> TableModel {
        let mk = |scale: f64| {
            let sizes = Axis::new(vec![4096.0, 131072.0]);
            let runs = Axis::new(vec![1.0, 64.0]);
            let cons = Axis::new(vec![0.0, 8.0]);
            let mut values = Vec::new();
            for &s in sizes.points() {
                for &r in runs.points() {
                    for &c in cons.points() {
                        values.push(scale * (s / 1e6 + 1.0 / r + c * 0.001));
                    }
                }
            }
            Grid3::new(sizes, runs, cons, values)
        };
        TableModel {
            device: "test".into(),
            tier: Tier::hdd(),
            reads: mk(1.0),
            writes: mk(2.0),
        }
    }

    #[test]
    fn read_write_grids_distinct() {
        let m = tiny_model();
        let r = m.request_cost(IoKind::Read, 8192.0, 4.0, 1.0);
        let w = m.request_cost(IoKind::Write, 8192.0, 4.0, 1.0);
        assert!(w > r);
    }

    #[test]
    fn json_round_trip() {
        let m = tiny_model();
        let j = m.to_json();
        let back = TableModel::from_json(&j).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn pre_tier_table_json_defaults_from_device_name() {
        let mut m = tiny_model();
        m.device = "ssd".into();
        m.tier = Tier::ssd();
        let with_tier = m.to_json();
        let tier_fragment = format!("\"tier\":{},", json::to_string(&m.tier));
        let old = with_tier.replace(&tier_fragment, "");
        assert!(!old.contains("tier"), "tier stripped from {old}");
        let back = TableModel::from_json(&old).unwrap();
        assert_eq!(back.tier, Tier::ssd(), "tier inferred from device name");
        assert_eq!(back, m);
    }
}
