//! Tabulated cost models with interpolation.

use crate::grid::Grid3;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_storage::{IoKind, Tier};

/// Per-request cost plus its exact partial derivatives w.r.t. the
/// three query coordinates, returned by [`CostModel::cost_with_grad`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostGrad {
    /// The cost itself — bit-identical to `request_cost` at the same
    /// query by contract.
    pub value: f64,
    /// ∂cost/∂size.
    pub d_size: f64,
    /// ∂cost/∂run_count.
    pub d_run: f64,
    /// ∂cost/∂contention.
    pub d_contention: f64,
}

impl CostGrad {
    /// A zero cost with zero partials.
    pub const ZERO: CostGrad = CostGrad {
        value: 0.0,
        d_size: 0.0,
        d_run: 0.0,
        d_contention: 0.0,
    };
}

/// Finite-difference step used by the default `cost_with_grad`
/// implementation, relative to the coordinate magnitude.
const DEFAULT_GRAD_STEP: f64 = 1e-6;

/// A per-request cost model for one device or target type.
///
/// `request_cost` returns the expected *service occupancy* in seconds
/// that one request of the given kind imposes, as a function of the
/// three workload parameters the paper's models use: average request
/// size (bytes), run count (sequentiality), and contention factor χ.
pub trait CostModel: Send + Sync {
    /// Expected per-request cost in seconds.
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64;

    /// Cost plus partial derivatives w.r.t. (size, run_count,
    /// contention), consumed by the solver's analytic gradient.
    ///
    /// The `value` field MUST be bit-identical to `request_cost` at
    /// the same query. The default implementation differences
    /// `request_cost` with a relative central step (clamped to keep
    /// probes non-negative), so external models keep working unchanged;
    /// tabulated models override it with exact per-cell slopes.
    fn cost_with_grad(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> CostGrad {
        let value = self.request_cost(kind, size, run_count, contention);
        let partial = |axis: usize| {
            let mut hi = [size, run_count, contention];
            let mut lo = hi;
            let h = (hi[axis].abs() * DEFAULT_GRAD_STEP).max(DEFAULT_GRAD_STEP);
            hi[axis] += h;
            lo[axis] = (lo[axis] - h).max(0.0);
            let span = hi[axis] - lo[axis];
            (self.request_cost(kind, hi[0], hi[1], hi[2])
                - self.request_cost(kind, lo[0], lo[1], lo[2]))
                / span
        };
        CostGrad {
            value,
            d_size: partial(0),
            d_run: partial(1),
            d_contention: partial(2),
        }
    }

    /// The economic tier of the modeled target, consumed by the
    /// tier-aware layout objectives (`ProvisioningCost`, `WearBlend`).
    /// Defaults to the HDD tier, which every pre-tier model
    /// implicitly assumed.
    fn tier(&self) -> Tier {
        Tier::hdd()
    }
}

/// A black-box tabulated model: one 3-D grid per request direction,
/// built from calibration measurements and interpolated at query time
/// (paper §5.2.2, Figure 8 shows one slice of such a model).
#[derive(Clone, Debug, PartialEq)]
pub struct TableModel {
    /// Device name the model was calibrated for (diagnostic).
    pub device: String,
    /// Economic tier of the calibrated device.
    pub tier: Tier,
    /// Read-request costs.
    pub reads: Grid3,
    /// Write-request costs.
    pub writes: Grid3,
}

impl ToJson for TableModel {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device".to_string(), self.device.to_json()),
            ("tier".to_string(), self.tier.to_json()),
            ("reads".to_string(), self.reads.to_json()),
            ("writes".to_string(), self.writes.to_json()),
        ])
    }
}

// Hand-rolled so calibration tables persisted before the tier layer
// (session caches, committed model files) still parse: a missing
// `tier` defaults from the device name.
impl FromJson for TableModel {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| v.field(name).ok_or_else(|| JsonError::missing_field(name));
        let device = String::from_json(field("device")?)?;
        let tier = match v.field("tier") {
            Some(t) => Tier::from_json(t)?,
            None => Tier::for_device_name(&device),
        };
        let reads = Grid3::from_json(field("reads")?)?;
        let writes = Grid3::from_json(field("writes")?)?;
        Ok(TableModel {
            device,
            tier,
            reads,
            writes,
        })
    }
}

impl CostModel for TableModel {
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64 {
        let grid = match kind {
            IoKind::Read => &self.reads,
            IoKind::Write => &self.writes,
        };
        grid.interpolate(size, run_count, contention)
    }

    fn cost_with_grad(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> CostGrad {
        let grid = match kind {
            IoKind::Read => &self.reads,
            IoKind::Write => &self.writes,
        };
        let (value, [d_size, d_run, d_contention]) =
            grid.interpolate_with_grad(size, run_count, contention);
        CostGrad {
            value,
            d_size,
            d_run,
            d_contention,
        }
    }

    fn tier(&self) -> Tier {
        self.tier.clone()
    }
}

impl TableModel {
    /// Serializes the model to JSON (models are expensive to calibrate
    /// on real hardware; persisting them is standard practice).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Deserializes a model from JSON.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Axis;

    fn tiny_model() -> TableModel {
        let mk = |scale: f64| {
            let sizes = Axis::new(vec![4096.0, 131072.0]);
            let runs = Axis::new(vec![1.0, 64.0]);
            let cons = Axis::new(vec![0.0, 8.0]);
            let mut values = Vec::new();
            for &s in sizes.points() {
                for &r in runs.points() {
                    for &c in cons.points() {
                        values.push(scale * (s / 1e6 + 1.0 / r + c * 0.001));
                    }
                }
            }
            Grid3::new(sizes, runs, cons, values)
        };
        TableModel {
            device: "test".into(),
            tier: Tier::hdd(),
            reads: mk(1.0),
            writes: mk(2.0),
        }
    }

    #[test]
    fn read_write_grids_distinct() {
        let m = tiny_model();
        let r = m.request_cost(IoKind::Read, 8192.0, 4.0, 1.0);
        let w = m.request_cost(IoKind::Write, 8192.0, 4.0, 1.0);
        assert!(w > r);
    }

    #[test]
    fn table_grad_value_is_bitwise_request_cost() {
        let m = tiny_model();
        for (s, r, c) in [(8192.0, 4.0, 1.0), (4096.0, 1.0, 0.0), (2e5, 99.0, 9.0)] {
            for kind in [IoKind::Read, IoKind::Write] {
                let g = m.cost_with_grad(kind, s, r, c);
                assert_eq!(g.value.to_bits(), m.request_cost(kind, s, r, c).to_bits());
            }
        }
    }

    #[test]
    fn default_grad_impl_differences_request_cost() {
        // An analytic model without an override gets FD partials from
        // the trait default; on a smooth model they are near-exact.
        struct Smooth;
        impl CostModel for Smooth {
            fn request_cost(&self, _k: IoKind, s: f64, r: f64, c: f64) -> f64 {
                0.01 * s + 0.5 / r.max(1.0) + 0.003 * c * c
            }
        }
        let g = Smooth.cost_with_grad(IoKind::Read, 10.0, 4.0, 2.0);
        assert_eq!(
            g.value.to_bits(),
            Smooth.request_cost(IoKind::Read, 10.0, 4.0, 2.0).to_bits()
        );
        assert!((g.d_size - 0.01).abs() < 1e-6, "{}", g.d_size);
        assert!((g.d_run - (-0.5 / 16.0)).abs() < 1e-6, "{}", g.d_run);
        assert!((g.d_contention - 0.012).abs() < 1e-6, "{}", g.d_contention);
    }

    #[test]
    fn table_grad_matches_central_difference() {
        let m = tiny_model();
        // An interior point away from knots: the table is linear in
        // its cell, so a small central difference is exact.
        let (s, r, c) = (8192.0, 4.0, 1.0);
        let g = m.cost_with_grad(IoKind::Read, s, r, c);
        let fd = |ds: f64, dr: f64, dc: f64, h: f64| {
            (m.request_cost(IoKind::Read, s + ds * h, r + dr * h, c + dc * h)
                - m.request_cost(IoKind::Read, s - ds * h, r - dr * h, c - dc * h))
                / (2.0 * h)
        };
        assert!((g.d_size - fd(1.0, 0.0, 0.0, 1.0)).abs() < 1e-12);
        assert!((g.d_run - fd(0.0, 1.0, 0.0, 1e-3)).abs() < 1e-9);
        assert!((g.d_contention - fd(0.0, 0.0, 1.0, 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn json_round_trip() {
        let m = tiny_model();
        let j = m.to_json();
        let back = TableModel::from_json(&j).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn pre_tier_table_json_defaults_from_device_name() {
        let mut m = tiny_model();
        m.device = "ssd".into();
        m.tier = Tier::ssd();
        let with_tier = m.to_json();
        let tier_fragment = format!("\"tier\":{},", json::to_string(&m.tier));
        let old = with_tier.replace(&tier_fragment, "");
        assert!(!old.contains("tier"), "tier stripped from {old}");
        let back = TableModel::from_json(&old).unwrap();
        assert_eq!(back.tier, Tier::ssd(), "tier inferred from device name");
        assert_eq!(back, m);
    }
}
