//! Tabulated cost models with interpolation.

use crate::grid::Grid3;
use wasla_simlib::impl_json_struct;
use wasla_simlib::json::{self, JsonError};
use wasla_storage::IoKind;

/// A per-request cost model for one device or target type.
///
/// `request_cost` returns the expected *service occupancy* in seconds
/// that one request of the given kind imposes, as a function of the
/// three workload parameters the paper's models use: average request
/// size (bytes), run count (sequentiality), and contention factor χ.
pub trait CostModel: Send + Sync {
    /// Expected per-request cost in seconds.
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64;
}

/// A black-box tabulated model: one 3-D grid per request direction,
/// built from calibration measurements and interpolated at query time
/// (paper §5.2.2, Figure 8 shows one slice of such a model).
#[derive(Clone, Debug, PartialEq)]
pub struct TableModel {
    /// Device name the model was calibrated for (diagnostic).
    pub device: String,
    /// Read-request costs.
    pub reads: Grid3,
    /// Write-request costs.
    pub writes: Grid3,
}

impl_json_struct!(TableModel {
    device,
    reads,
    writes
});

impl CostModel for TableModel {
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64 {
        let grid = match kind {
            IoKind::Read => &self.reads,
            IoKind::Write => &self.writes,
        };
        grid.interpolate(size, run_count, contention)
    }
}

impl TableModel {
    /// Serializes the model to JSON (models are expensive to calibrate
    /// on real hardware; persisting them is standard practice).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Deserializes a model from JSON.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Axis;

    fn tiny_model() -> TableModel {
        let mk = |scale: f64| {
            let sizes = Axis::new(vec![4096.0, 131072.0]);
            let runs = Axis::new(vec![1.0, 64.0]);
            let cons = Axis::new(vec![0.0, 8.0]);
            let mut values = Vec::new();
            for &s in sizes.points() {
                for &r in runs.points() {
                    for &c in cons.points() {
                        values.push(scale * (s / 1e6 + 1.0 / r + c * 0.001));
                    }
                }
            }
            Grid3::new(sizes, runs, cons, values)
        };
        TableModel {
            device: "test".into(),
            reads: mk(1.0),
            writes: mk(2.0),
        }
    }

    #[test]
    fn read_write_grids_distinct() {
        let m = tiny_model();
        let r = m.request_cost(IoKind::Read, 8192.0, 4.0, 1.0);
        let w = m.request_cost(IoKind::Write, 8192.0, 4.0, 1.0);
        assert!(w > r);
    }

    #[test]
    fn json_round_trip() {
        let m = tiny_model();
        let j = m.to_json();
        let back = TableModel::from_json(&j).unwrap();
        assert_eq!(m, back);
    }
}
