//! Target-level cost models.
//!
//! The advisor needs per-*target* request costs: the occupancy one
//! target-level request imposes on the target's bottleneck resource.
//! For a single-device target that is the device's service time
//! (divided by internal parallelism for SSD channels). For a RAID-0
//! group of `w` members, requests spread across members:
//!
//! * a request no larger than the stripe unit lands on exactly one
//!   member, so only `1/w` of the stream's requests occupy any given
//!   member — but the member-level run length also shrinks to `run/w`
//!   because consecutive stripes round-robin;
//! * a request spanning `k` stripes splits into `k` concurrent member
//!   pieces of `size/k` each.
//!
//! This mirrors how the paper's per-target models absorb RAID
//! configuration differences ("there may be a different model for each
//! target type", §5.2).

use crate::calibrate::{calibrate_device, CalibrationGrid};
use crate::table::{CostGrad, CostModel, TableModel};
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_storage::{IoKind, TargetConfig, Tier};

/// Why a target could not be modeled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A target configuration lists no member devices.
    NoMembers {
        /// The offending target's name.
        target: String,
    },
    /// A RAID target mixes device types; calibration needs homogeneous
    /// members (as real RAID groups have).
    HeterogeneousRaid {
        /// The offending target's name.
        target: String,
    },
}

impl ToJson for ModelError {
    fn to_json(&self) -> Json {
        let (tag, target) = match self {
            ModelError::NoMembers { target } => ("NoMembers", target),
            ModelError::HeterogeneousRaid { target } => ("HeterogeneousRaid", target),
        };
        json::variant(
            tag,
            Json::Obj(vec![("target".to_string(), target.to_json())]),
        )
    }
}

impl FromJson for ModelError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = json::untag(v)?;
        let target = String::from_json(
            payload
                .field("target")
                .ok_or_else(|| JsonError::missing_field("target"))?,
        )?;
        match tag {
            "NoMembers" => Ok(ModelError::NoMembers { target }),
            "HeterogeneousRaid" => Ok(ModelError::HeterogeneousRaid { target }),
            other => Err(JsonError::new(format!(
                "unknown ModelError variant: {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NoMembers { target } => {
                write!(f, "target {target:?} has no member devices")
            }
            ModelError::HeterogeneousRaid { target } => write!(
                f,
                "target {target:?} mixes device types; RAID members must be homogeneous for calibration"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// A cost model for one storage target.
#[derive(Clone, Debug)]
pub struct TargetCostModel {
    /// Calibrated model of the member device type.
    pub member: TableModel,
    /// Number of member devices (RAID-0 width).
    pub width: usize,
    /// RAID-0 stripe unit in bytes.
    pub stripe_unit: u64,
    /// Internal parallelism of each member (SSD channels).
    pub parallelism: usize,
    /// Target name (diagnostic).
    pub name: String,
    /// Economic tier of the target (from its [`TargetConfig`]).
    pub tier: Tier,
}

impl ToJson for TargetCostModel {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            // Fully qualified: TableModel's inherent `to_json` is the
            // string-returning convenience, not the trait method.
            ("member".to_string(), ToJson::to_json(&self.member)),
            ("width".to_string(), self.width.to_json()),
            ("stripe_unit".to_string(), self.stripe_unit.to_json()),
            ("parallelism".to_string(), self.parallelism.to_json()),
            ("name".to_string(), self.name.to_json()),
            ("tier".to_string(), self.tier.to_json()),
        ])
    }
}

// Hand-rolled: `tier` is optional on parse (defaulting to the member
// table's tier) so model files written before the tier layer load.
impl FromJson for TargetCostModel {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| v.field(name).ok_or_else(|| JsonError::missing_field(name));
        let member = <TableModel as FromJson>::from_json(field("member")?)?;
        let width = usize::from_json(field("width")?)?;
        let stripe_unit = u64::from_json(field("stripe_unit")?)?;
        let parallelism = usize::from_json(field("parallelism")?)?;
        let name = String::from_json(field("name")?)?;
        let tier = match v.field("tier") {
            Some(t) => Tier::from_json(t)?,
            None => member.tier.clone(),
        };
        Ok(TargetCostModel {
            member,
            width,
            stripe_unit,
            parallelism,
            name,
            tier,
        })
    }
}

impl TargetCostModel {
    /// Checks a target configuration is modelable — at least one
    /// member, all members of one device type — and returns the member
    /// spec to calibrate. Session layers use this to key calibration
    /// caches by member spec.
    pub fn member_spec(config: &TargetConfig) -> Result<&wasla_storage::DeviceSpec, ModelError> {
        let first = config
            .members
            .first()
            .ok_or_else(|| ModelError::NoMembers {
                target: config.name.clone(),
            })?;
        if config.members.iter().any(|m| m != first) {
            return Err(ModelError::HeterogeneousRaid {
                target: config.name.clone(),
            });
        }
        Ok(first)
    }

    /// Assembles the target model around an already-calibrated member
    /// table (the session layer calls this with cached tables).
    pub fn with_member(config: &TargetConfig, member: TableModel) -> Result<Self, ModelError> {
        let first = Self::member_spec(config)?;
        let parallelism = first.build().parallelism();
        Ok(TargetCostModel {
            member,
            width: config.members.len(),
            stripe_unit: config.stripe_unit,
            parallelism,
            name: config.name.clone(),
            tier: config.tier.clone(),
        })
    }

    /// Builds the model for a target by calibrating its member device
    /// type. Members must be homogeneous (as RAID groups are).
    pub fn from_target(
        config: &TargetConfig,
        grid: &CalibrationGrid,
        seed: u64,
    ) -> Result<Self, ModelError> {
        let first = Self::member_spec(config)?;
        let member = calibrate_device(first, grid, seed);
        Self::with_member(config, member)
    }

    /// Builds models for every target in a configuration list,
    /// calibrating each distinct member spec once.
    pub fn for_targets(
        configs: &[TargetConfig],
        grid: &CalibrationGrid,
        seed: u64,
    ) -> Result<Vec<Self>, ModelError> {
        let mut cache: Vec<(wasla_storage::DeviceSpec, TableModel)> = Vec::new();
        configs
            .iter()
            .map(|config| {
                let first = Self::member_spec(config)?;
                let member = match cache.iter().find(|(s, _)| s == first) {
                    Some((_, m)) => m.clone(),
                    None => {
                        let m = calibrate_device(first, grid, seed);
                        cache.push((first.clone(), m.clone()));
                        m
                    }
                };
                Self::with_member(config, member)
            })
            .collect()
    }
}

impl CostModel for TargetCostModel {
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64 {
        let w = self.width as f64;
        let par = self.parallelism as f64;
        if self.width == 1 {
            return self.member.request_cost(kind, size, run_count, contention) / par;
        }
        let stripe = self.stripe_unit as f64;
        if size <= stripe {
            // One member per request; round-robin shortens member runs.
            let member_run = (run_count / w).max(1.0);
            self.member.request_cost(kind, size, member_run, contention) / (w * par)
        } else {
            // Split across k members servicing pieces concurrently.
            let k = (size / stripe).ceil().min(w);
            let piece = size / k;
            let member_run = (run_count * k / w).max(1.0);
            self.member
                .request_cost(kind, piece, member_run, contention)
                * k
                / (w * par)
        }
    }

    fn cost_with_grad(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> CostGrad {
        let w = self.width as f64;
        let par = self.parallelism as f64;
        if self.width == 1 {
            let g = self
                .member
                .cost_with_grad(kind, size, run_count, contention);
            return CostGrad {
                value: g.value / par,
                d_size: g.d_size / par,
                d_run: g.d_run / par,
                d_contention: g.d_contention / par,
            };
        }
        let stripe = self.stripe_unit as f64;
        if size <= stripe {
            // member_run = (run/w).max(1.0): the clamp kills the run
            // sensitivity below one member-level run.
            let member_run = (run_count / w).max(1.0);
            let g = self
                .member
                .cost_with_grad(kind, size, member_run, contention);
            let run_gate = if run_count / w > 1.0 { 1.0 / w } else { 0.0 };
            CostGrad {
                value: g.value / (w * par),
                d_size: g.d_size / (w * par),
                d_run: g.d_run * run_gate / (w * par),
                d_contention: g.d_contention / (w * par),
            }
        } else {
            // k = ceil(size/stripe) is piecewise-constant in size, so
            // only the piece size `size/k` carries size sensitivity.
            let k = (size / stripe).ceil().min(w);
            let piece = size / k;
            let member_run = (run_count * k / w).max(1.0);
            let g = self
                .member
                .cost_with_grad(kind, piece, member_run, contention);
            let run_gate = if run_count * k / w > 1.0 { k / w } else { 0.0 };
            CostGrad {
                value: g.value * k / (w * par),
                d_size: g.d_size / (w * par),
                d_run: g.d_run * run_gate * k / (w * par),
                d_contention: g.d_contention * k / (w * par),
            }
        }
    }

    fn tier(&self) -> Tier {
        self.tier.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_storage::{DeviceSpec, DiskParams, SsdParams, GIB, KIB};

    fn disk_spec() -> DeviceSpec {
        DeviceSpec::Disk(DiskParams::scsi_15k(18 * GIB))
    }

    #[test]
    fn raid_width_divides_small_request_cost() {
        let grid = CalibrationGrid::coarse();
        let single =
            TargetCostModel::from_target(&TargetConfig::single("d", disk_spec()), &grid, 3)
                .unwrap();
        let raid3 = TargetCostModel::from_target(
            &TargetConfig::raid0("r3", vec![disk_spec(); 3], 256 * KIB),
            &grid,
            3,
        )
        .unwrap();
        let c1 = single.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        let c3 = raid3.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        // Random 8 KiB on 3-wide RAID-0: one member busy per request,
        // 1/3 of requests per member.
        assert!((c3 - c1 / 3.0).abs() / c1 < 0.2, "c1 {c1} c3 {c3}");
    }

    #[test]
    fn ssd_channels_divide_cost() {
        let grid = CalibrationGrid::coarse();
        let ssd = TargetCostModel::from_target(
            &TargetConfig::single("ssd", DeviceSpec::Ssd(SsdParams::sata_gen1(32 * GIB))),
            &grid,
            3,
        )
        .unwrap();
        assert_eq!(ssd.parallelism, 4);
        let occupancy = ssd.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        let service = ssd.member.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        assert!((occupancy - service / 4.0).abs() < 1e-9);
    }

    #[test]
    fn large_requests_split_across_members() {
        let grid = CalibrationGrid::coarse();
        let raid4 = TargetCostModel::from_target(
            &TargetConfig::raid0("r4", vec![disk_spec(); 4], 64 * KIB),
            &grid,
            3,
        )
        .unwrap();
        // A 256 KiB sequential request spans 4 stripes: all members work.
        let split = raid4.request_cost(IoKind::Read, 262144.0, 64.0, 0.0);
        // Equivalent single-member cost for the whole request:
        let single =
            TargetCostModel::from_target(&TargetConfig::single("d", disk_spec()), &grid, 3)
                .unwrap();
        let whole = single.request_cost(IoKind::Read, 262144.0, 64.0, 0.0);
        assert!(split < whole, "split {split} whole {whole}");
    }

    #[test]
    fn shared_member_specs_calibrated_once() {
        let grid = CalibrationGrid::coarse();
        let configs = vec![
            TargetConfig::single("d0", disk_spec()),
            TargetConfig::single("d1", disk_spec()),
            TargetConfig::raid0("r", vec![disk_spec(); 2], 256 * KIB),
        ];
        let models = TargetCostModel::for_targets(&configs, &grid, 5).unwrap();
        assert_eq!(models.len(), 3);
        // Same member spec → identical tables.
        assert_eq!(models[0].member, models[1].member);
        assert_eq!(models[0].member, models[2].member);
        assert_eq!(models[2].width, 2);
    }

    #[test]
    fn heterogeneous_raid_rejected() {
        let grid = CalibrationGrid::coarse();
        let config = TargetConfig::raid0(
            "bad",
            vec![
                disk_spec(),
                DeviceSpec::Disk(DiskParams::nearline_7200(18 * GIB)),
            ],
            256 * KIB,
        );
        let err = TargetCostModel::from_target(&config, &grid, 1).unwrap_err();
        assert_eq!(
            err,
            ModelError::HeterogeneousRaid {
                target: "bad".to_string()
            }
        );
        assert!(err.to_string().contains("homogeneous"));
    }

    #[test]
    fn empty_target_rejected() {
        let grid = CalibrationGrid::coarse();
        let config = TargetConfig {
            name: "empty".to_string(),
            members: vec![],
            stripe_unit: 256 * KIB,
            scheduler: wasla_storage::SchedulerKind::Sstf,
            tier: Tier::hdd(),
        };
        let err = TargetCostModel::from_target(&config, &grid, 1).unwrap_err();
        assert_eq!(
            err,
            ModelError::NoMembers {
                target: "empty".to_string()
            }
        );
    }

    #[test]
    fn tier_identity_carried_end_to_end() {
        let grid = CalibrationGrid::coarse();
        let ssd = TargetCostModel::from_target(
            &TargetConfig::single("ssd", DeviceSpec::Ssd(SsdParams::sata_gen1(32 * GIB))),
            &grid,
            3,
        )
        .unwrap();
        assert_eq!(ssd.tier, Tier::ssd());
        assert_eq!(ssd.member.tier, Tier::ssd());
        assert_eq!(CostModel::tier(&ssd), Tier::ssd());
        let json = wasla_simlib::json::to_string(&ssd);
        let back: TargetCostModel = wasla_simlib::json::from_str(&json).unwrap();
        assert_eq!(back.tier, Tier::ssd());
        // A pre-tier model file (no top-level tier field) inherits the
        // member table's tier. The top-level tier is the final field,
        // so drop it by truncating at the last `,"tier":`.
        let pos = json.rfind(",\"tier\":").unwrap();
        let old = format!("{}}}", &json[..pos]);
        let back: TargetCostModel = wasla_simlib::json::from_str(&old).unwrap();
        assert_eq!(back.tier, back.member.tier);
    }

    #[test]
    fn target_grad_value_bitwise_and_fd_consistent() {
        let grid = CalibrationGrid::coarse();
        let models = [
            TargetCostModel::from_target(&TargetConfig::single("d", disk_spec()), &grid, 3)
                .unwrap(),
            TargetCostModel::from_target(
                &TargetConfig::raid0("r4", vec![disk_spec(); 4], 64 * KIB),
                &grid,
                3,
            )
            .unwrap(),
        ];
        // Queries covering all three width branches: single device,
        // sub-stripe, and stripe-spanning requests. `(8192,1,0)` sits
        // on bottom knots, where the pinned right-cell subgradient
        // legitimately differs from a clamp-straddling central
        // difference — it checks the bitwise-value contract only.
        let queries = [
            (8192.0, 1.0, 0.0, false),
            (12000.0, 12.0, 1.3, true),
            (262144.0, 40.0, 5.5, true),
        ];
        for m in &models {
            for &(s, r, c, check_fd) in &queries {
                for kind in [IoKind::Read, IoKind::Write] {
                    let g = m.cost_with_grad(kind, s, r, c);
                    assert_eq!(
                        g.value.to_bits(),
                        m.request_cost(kind, s, r, c).to_bits(),
                        "{} ({s},{r},{c})",
                        m.name
                    );
                    if !check_fd {
                        continue;
                    }
                    // Central differences away from knots and branch
                    // boundaries; generous tolerance since these
                    // queries were not chosen to dodge cell edges.
                    for (axis, analytic) in [(1, g.d_run), (2, g.d_contention)] {
                        let h = 1e-5 * [s, r, c][axis].max(1.0);
                        let probe = |delta: f64| {
                            let mut q = [s, r, c];
                            q[axis] += delta;
                            m.request_cost(kind, q[0], q[1], q[2])
                        };
                        let fd = (probe(h) - probe(-h)) / (2.0 * h);
                        let scale = analytic.abs().max(fd.abs()).max(1e-9);
                        assert!(
                            (fd - analytic).abs() <= 1e-3 * scale,
                            "{} axis {axis} ({s},{r},{c}): fd {fd} analytic {analytic}",
                            m.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn model_error_json_round_trip() {
        use wasla_simlib::json::{from_str, to_string};
        for err in [
            ModelError::NoMembers {
                target: "t0".to_string(),
            },
            ModelError::HeterogeneousRaid {
                target: "t1".to_string(),
            },
        ] {
            let back: ModelError = from_str(&to_string(&err)).unwrap();
            assert_eq!(back, err);
        }
    }
}
