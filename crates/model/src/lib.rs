//! Storage target cost models (paper §5.2.2).
//!
//! A *target model* estimates the utilization a workload imposes on a
//! storage target: `µᵢⱼ = λᵢⱼᴿ · Costⱼᴿ + λᵢⱼᵂ · Costⱼᵂ` (paper Eq. 1),
//! where the per-request costs depend on the target's device type and
//! three workload parameters — request size, run count (sequentiality),
//! and the contention factor χ (Eq. 2).
//!
//! Following the paper, we do not build analytic models of the device's
//! full behaviour. Instead we **calibrate**: subject the (simulated)
//! device to calibration workloads with known request sizes, run
//! counts and degrees of contention, tabulate the measured mean service
//! times, and interpolate among nearby calibration points at query
//! time ([`TableModel`], built by [`calibrate::calibrate_device`]).
//! An analytic disk model ([`analytic::AnalyticDiskModel`]) is provided
//! for ablation — the paper notes such models are "possible, but
//! difficult" and uses tabulation for generality.
//!
//! [`target::TargetCostModel`] lifts a per-device model to a whole
//! target (RAID-0 width, SSD channel parallelism), producing the
//! per-request *occupancy* of the target's bottleneck member, which is
//! what the min-max utilization objective needs.

pub mod analytic;
pub mod calibrate;
pub mod grid;
pub mod table;
pub mod target;

pub use analytic::AnalyticDiskModel;
pub use calibrate::{calibrate_device, calibration_fault, CalibrationGrid};
pub use table::{CostGrad, CostModel, TableModel};
pub use target::{ModelError, TargetCostModel};
