//! Analytic disk cost model (ablation baseline).
//!
//! The paper observes that accurate analytic models are "possible, but
//! difficult" (§5.2.2, citing Uysal et al. and Varki et al.) and opts
//! for tabulation. We implement a first-order analytic model anyway so
//! the benchmark suite can ablate the choice: it captures the same
//! qualitative effects (sequential discount, contention-driven
//! collapse, queue-depth scheduling benefit) from closed-form terms.

use crate::table::CostModel;
use wasla_simlib::impl_json_struct;
use wasla_storage::{DiskParams, IoKind};

/// Closed-form disk cost model derived from [`DiskParams`].
#[derive(Clone, Debug)]
pub struct AnalyticDiskModel {
    params: DiskParams,
}

impl_json_struct!(AnalyticDiskModel { params });

impl AnalyticDiskModel {
    /// Creates the model for a disk.
    pub fn new(params: DiskParams) -> Self {
        AnalyticDiskModel { params }
    }

    /// Probability a request needs mechanical positioning: it starts a
    /// new run (`1/run`), or its readahead context was evicted by
    /// competing streams before reuse. With `s` context slots and χ
    /// competing requests interleaved per own request, eviction sets in
    /// quadratically and saturates once χ reaches the slot count.
    fn miss_probability(&self, run_count: f64, contention: f64) -> f64 {
        let new_run = 1.0 / run_count.max(1.0);
        let slots = self.params.readahead_streams.max(1) as f64;
        let evict = (contention / slots).powi(2).min(1.0);
        new_run + (1.0 - new_run) * evict
    }
}

impl CostModel for AnalyticDiskModel {
    fn request_cost(&self, kind: IoKind, size: f64, run_count: f64, contention: f64) -> f64 {
        let p = &self.params;
        // Average seek ≈ one third of the stroke (uniform random).
        let avg_seek = p.seek_s(p.capacity / 3);
        let avg_rotation = p.rotation_s() / 2.0;
        let mut positioning = avg_seek + avg_rotation;
        // SSTF head scheduling trims positioning as the queue deepens.
        positioning /= 1.0 + 0.08 * contention;
        if kind == IoKind::Write {
            positioning *= p.write_positioning_factor;
        }
        let p_miss = self.miss_probability(run_count, contention);
        p.settle_s + p_miss * positioning + size / p.transfer_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_storage::GIB;

    fn model() -> AnalyticDiskModel {
        AnalyticDiskModel::new(DiskParams::scsi_15k(18 * GIB))
    }

    #[test]
    fn sequential_discount() {
        let m = model();
        let seq = m.request_cost(IoKind::Read, 8192.0, 64.0, 0.0);
        let rand = m.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        assert!(rand > 5.0 * seq);
    }

    #[test]
    fn contention_collapses_sequential_advantage() {
        let m = model();
        let lo = m.request_cost(IoKind::Read, 8192.0, 64.0, 0.0);
        let hi = m.request_cost(IoKind::Read, 8192.0, 64.0, 8.0);
        assert!(hi > 3.0 * lo);
    }

    #[test]
    fn random_cost_falls_slowly_with_queue_depth() {
        // The Figure 8 "disk head scheduling is more effective with a
        // larger request queue" effect.
        let m = model();
        let shallow = m.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        let deep = m.request_cost(IoKind::Read, 8192.0, 1.0, 8.0);
        assert!(deep < shallow);
        assert!(deep > 0.5 * shallow);
    }

    #[test]
    fn writes_cheaper_positioning() {
        let m = model();
        let r = m.request_cost(IoKind::Read, 8192.0, 1.0, 0.0);
        let w = m.request_cost(IoKind::Write, 8192.0, 1.0, 0.0);
        assert!(w < r);
    }

    #[test]
    fn miss_probability_monotone() {
        let m = model();
        assert!(m.miss_probability(64.0, 0.0) < m.miss_probability(64.0, 2.0));
        assert!(m.miss_probability(64.0, 2.0) < m.miss_probability(64.0, 8.0));
        assert!(m.miss_probability(1.0, 0.0) > 0.99);
        assert!(m.miss_probability(8.0, 16.0) <= 1.0 + 1e-12);
    }
}
