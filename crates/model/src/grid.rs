//! Non-uniform grids and trilinear interpolation.

use wasla_simlib::impl_json_struct;

/// A sorted, strictly increasing axis of calibration points.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    points: Vec<f64>,
}

impl Axis {
    /// Creates an axis. Points must be strictly increasing and
    /// non-empty.
    pub fn new(points: Vec<f64>) -> Self {
        assert!(!points.is_empty());
        assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "axis points must be strictly increasing"
        );
        Axis { points }
    }

    /// The calibration points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the axis has a single point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Finds the bracketing interval and interpolation weight for `x`,
    /// clamping outside the range: returns `(i, w)` such that the value
    /// is `v[i] * (1-w) + v[i+1] * w` (with `i+1` clamped).
    pub fn locate(&self, x: f64) -> (usize, f64) {
        let pts = &self.points;
        if x <= pts[0] || pts.len() == 1 {
            return (0, 0.0);
        }
        if x >= *pts.last().expect("non-empty") {
            return (pts.len() - 1, 0.0);
        }
        let hi = pts.partition_point(|&p| p <= x);
        let i = hi - 1;
        let w = (x - pts[i]) / (pts[i + 1] - pts[i]);
        (i, w)
    }

    /// [`Axis::locate`] plus the derivative `dw/dx` of the
    /// interpolation weight. `(i, w)` is bit-identical to `locate`.
    ///
    /// The interpolant is piecewise linear, so the derivative is a
    /// subgradient at kinks; the choice is pinned as follows and relied
    /// on by the analytic solver gradient:
    ///
    /// * strictly below the bottom knot, at/above the top knot, and on
    ///   single-point axes the interpolant is clamped flat → `0`;
    /// * exactly on the bottom knot or any interior knot → the
    ///   *right*-cell slope `1/(pts[i+1] - pts[i])` (matches a forward
    ///   difference stepping into the grid);
    /// * interior of a cell → `1/(pts[i+1] - pts[i])`.
    pub fn locate_with_deriv(&self, x: f64) -> (usize, f64, f64) {
        let pts = &self.points;
        if pts.len() == 1 || x < pts[0] {
            return (0, 0.0, 0.0);
        }
        if x == pts[0] {
            return (0, 0.0, 1.0 / (pts[1] - pts[0]));
        }
        if x >= pts[pts.len() - 1] {
            return (pts.len() - 1, 0.0, 0.0);
        }
        let hi = pts.partition_point(|&p| p <= x);
        let i = hi - 1;
        let denom = pts[i + 1] - pts[i];
        let w = (x - pts[i]) / denom;
        (i, w, 1.0 / denom)
    }
}

impl_json_struct!(Axis { points });

/// A dense 3-D table over (size, run count, contention) with trilinear
/// interpolation.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3 {
    /// Request-size axis (bytes).
    pub sizes: Axis,
    /// Run-count axis (requests).
    pub runs: Axis,
    /// Contention-factor axis.
    pub contentions: Axis,
    /// Row-major values: `[size][run][contention]`.
    values: Vec<f64>,
}

impl_json_struct!(Grid3 {
    sizes,
    runs,
    contentions,
    values
});

impl Grid3 {
    /// Creates a grid from axes and a filled value table.
    pub fn new(sizes: Axis, runs: Axis, contentions: Axis, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), sizes.len() * runs.len() * contentions.len());
        Grid3 {
            sizes,
            runs,
            contentions,
            values,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        let (nr, nc) = (self.runs.len(), self.contentions.len());
        self.values[(i * nr + j) * nc + k]
    }

    /// Multiplies every tabulated value by `factor` (fault-injected
    /// device degradation scales whole tables uniformly).
    pub fn scale_values(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Trilinear interpolation at (size, run, contention), clamped to
    /// the calibrated range.
    pub fn interpolate(&self, size: f64, run: f64, contention: f64) -> f64 {
        let (i, wi) = self.sizes.locate(size);
        let (j, wj) = self.runs.locate(run);
        let (k, wk) = self.contentions.locate(contention);
        let i1 = (i + 1).min(self.sizes.len() - 1);
        let j1 = (j + 1).min(self.runs.len() - 1);
        let k1 = (k + 1).min(self.contentions.len() - 1);
        let c000 = self.at(i, j, k);
        let c001 = self.at(i, j, k1);
        let c010 = self.at(i, j1, k);
        let c011 = self.at(i, j1, k1);
        let c100 = self.at(i1, j, k);
        let c101 = self.at(i1, j, k1);
        let c110 = self.at(i1, j1, k);
        let c111 = self.at(i1, j1, k1);
        let c00 = c000 * (1.0 - wk) + c001 * wk;
        let c01 = c010 * (1.0 - wk) + c011 * wk;
        let c10 = c100 * (1.0 - wk) + c101 * wk;
        let c11 = c110 * (1.0 - wk) + c111 * wk;
        let c0 = c00 * (1.0 - wj) + c01 * wj;
        let c1 = c10 * (1.0 - wj) + c11 * wj;
        c0 * (1.0 - wi) + c1 * wi
    }

    /// Trilinear interpolation plus the exact gradient w.r.t.
    /// `(size, run, contention)`. The value is computed with the same
    /// lerp ordering as [`Grid3::interpolate`] and is bit-identical to
    /// it; the partials are the per-cell slopes of the piecewise-linear
    /// interpolant, with kink subgradients pinned by
    /// [`Axis::locate_with_deriv`] (clamped regions are flat, knots
    /// take the right-cell slope).
    pub fn interpolate_with_grad(&self, size: f64, run: f64, contention: f64) -> (f64, [f64; 3]) {
        let (i, wi, dwi) = self.sizes.locate_with_deriv(size);
        let (j, wj, dwj) = self.runs.locate_with_deriv(run);
        let (k, wk, dwk) = self.contentions.locate_with_deriv(contention);
        let i1 = (i + 1).min(self.sizes.len() - 1);
        let j1 = (j + 1).min(self.runs.len() - 1);
        let k1 = (k + 1).min(self.contentions.len() - 1);
        let c000 = self.at(i, j, k);
        let c001 = self.at(i, j, k1);
        let c010 = self.at(i, j1, k);
        let c011 = self.at(i, j1, k1);
        let c100 = self.at(i1, j, k);
        let c101 = self.at(i1, j, k1);
        let c110 = self.at(i1, j1, k);
        let c111 = self.at(i1, j1, k1);
        let c00 = c000 * (1.0 - wk) + c001 * wk;
        let c01 = c010 * (1.0 - wk) + c011 * wk;
        let c10 = c100 * (1.0 - wk) + c101 * wk;
        let c11 = c110 * (1.0 - wk) + c111 * wk;
        let c0 = c00 * (1.0 - wj) + c01 * wj;
        let c1 = c10 * (1.0 - wj) + c11 * wj;
        let value = c0 * (1.0 - wi) + c1 * wi;
        let d_size = (c1 - c0) * dwi;
        let d_run = ((c01 - c00) * (1.0 - wi) + (c11 - c10) * wi) * dwj;
        let d_con = (((c001 - c000) * (1.0 - wj) + (c011 - c010) * wj) * (1.0 - wi)
            + ((c101 - c100) * (1.0 - wj) + (c111 - c110) * wj) * wi)
            * dwk;
        (value, [d_size, d_run, d_con])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_simlib::proptest::prelude::*;

    #[test]
    fn locate_brackets_and_clamps() {
        let ax = Axis::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(ax.locate(0.5), (0, 0.0));
        assert_eq!(ax.locate(1.0), (0, 0.0));
        let (i, w) = ax.locate(1.5);
        assert_eq!(i, 0);
        assert!((w - 0.5).abs() < 1e-12);
        let (i, w) = ax.locate(3.0);
        assert_eq!(i, 1);
        assert!((w - 0.5).abs() < 1e-12);
        assert_eq!(ax.locate(4.0), (2, 0.0));
        assert_eq!(ax.locate(99.0), (2, 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_rejected() {
        Axis::new(vec![1.0, 1.0]);
    }

    fn linear_grid() -> Grid3 {
        // values = size + 10*run + 100*contention at grid points.
        let sizes = Axis::new(vec![1.0, 2.0]);
        let runs = Axis::new(vec![1.0, 3.0]);
        let cons = Axis::new(vec![0.0, 4.0]);
        let mut values = Vec::new();
        for &s in sizes.points() {
            for &r in runs.points() {
                for &c in cons.points() {
                    values.push(s + 10.0 * r + 100.0 * c);
                }
            }
        }
        Grid3::new(sizes, runs, cons, values)
    }

    #[test]
    fn interpolates_linear_function_exactly() {
        let g = linear_grid();
        for (s, r, c) in [
            (1.0, 1.0, 0.0),
            (1.5, 2.0, 2.0),
            (2.0, 3.0, 4.0),
            (1.25, 1.5, 1.0),
        ] {
            let expect = s + 10.0 * r + 100.0 * c;
            let got = g.interpolate(s, r, c);
            assert!((got - expect).abs() < 1e-9, "({s},{r},{c}) got {got}");
        }
    }

    #[test]
    fn scale_values_multiplies_uniformly() {
        let mut g = linear_grid();
        let before = g.interpolate(1.5, 2.0, 2.0);
        g.scale_values(3.0);
        assert!((g.interpolate(1.5, 2.0, 2.0) - 3.0 * before).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_range() {
        let g = linear_grid();
        // Below and above the grid use edge values.
        assert!((g.interpolate(0.1, 1.0, 0.0) - 11.0).abs() < 1e-9);
        assert!((g.interpolate(5.0, 3.0, 4.0) - 432.0).abs() < 1e-9);
    }

    #[test]
    fn grad_of_linear_function_is_exact() {
        let g = linear_grid();
        for (s, r, c) in [(1.5, 2.0, 2.0), (1.25, 1.5, 1.0), (1.9, 2.9, 3.9)] {
            let (v, d) = g.interpolate_with_grad(s, r, c);
            assert_eq!(v.to_bits(), g.interpolate(s, r, c).to_bits());
            assert!((d[0] - 1.0).abs() < 1e-9, "d_size {}", d[0]);
            assert!((d[1] - 10.0).abs() < 1e-9, "d_run {}", d[1]);
            assert!((d[2] - 100.0).abs() < 1e-9, "d_con {}", d[2]);
        }
    }

    #[test]
    fn grad_is_zero_in_clamped_regions() {
        let g = linear_grid();
        // Strictly below the bottom knot and at/above the top knot the
        // interpolant is flat, so every clamped axis contributes zero.
        let (_, d) = g.interpolate_with_grad(0.1, 1.5, 1.0);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - 10.0).abs() < 1e-9);
        let (_, d) = g.interpolate_with_grad(5.0, 9.0, 99.0);
        assert_eq!(d, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn grad_on_knots_takes_right_cell_slope() {
        // Bottom and interior knots pin the subgradient to the
        // right-cell slope; the top knot is clamped flat.
        let ax = Axis::new(vec![1.0, 2.0, 4.0]);
        let (i, w, d) = ax.locate_with_deriv(1.0);
        assert_eq!((i, w), ax.locate(1.0));
        assert!((d - 1.0).abs() < 1e-12, "bottom knot: {d}");
        let (i, w, d) = ax.locate_with_deriv(2.0);
        assert_eq!((i, w), ax.locate(2.0));
        assert!((d - 0.5).abs() < 1e-12, "interior knot: {d}");
        let (i, w, d) = ax.locate_with_deriv(4.0);
        assert_eq!((i, w), ax.locate(4.0));
        assert_eq!(d, 0.0, "top knot clamps flat");
    }

    #[test]
    fn single_knot_axis_has_zero_derivative() {
        let sizes = Axis::new(vec![8.0]);
        let runs = Axis::new(vec![1.0, 2.0]);
        let cons = Axis::new(vec![0.5]);
        let g = Grid3::new(sizes, runs, cons, vec![3.0, 7.0]);
        let (v, d) = g.interpolate_with_grad(8.0, 1.5, 0.5);
        assert!((v - 5.0).abs() < 1e-12);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - 4.0).abs() < 1e-12);
        assert_eq!(d[2], 0.0);
        // Degenerate queries off the single knot still clamp cleanly.
        let (_, d) = g.interpolate_with_grad(99.0, 1.5, -3.0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[2], 0.0);
    }

    fn curved_grid() -> Grid3 {
        // A non-linear table so the gradient actually varies per cell.
        let sizes = Axis::new(vec![1.0, 2.0, 4.0, 8.0]);
        let runs = Axis::new(vec![1.0, 3.0, 9.0]);
        let cons = Axis::new(vec![0.0, 1.0, 4.0]);
        let mut values = Vec::new();
        for &s in sizes.points() {
            for &r in runs.points() {
                for &c in cons.points() {
                    values.push(s * s + r * c + (s + r + c).sqrt());
                }
            }
        }
        Grid3::new(sizes, runs, cons, values)
    }

    proptest! {
        /// The value half of `interpolate_with_grad` is bit-identical
        /// to `interpolate` everywhere, including clamped queries.
        #[test]
        fn grad_value_matches_interpolate_bitwise(
            s in -1.0f64..10.0,
            r in -1.0f64..12.0,
            c in -1.0f64..6.0,
        ) {
            let g = curved_grid();
            let (v, _) = g.interpolate_with_grad(s, r, c);
            prop_assert_eq!(v.to_bits(), g.interpolate(s, r, c).to_bits());
        }

        /// Each partial matches a central difference of `interpolate`
        /// once the step is small enough that the bracket stays inside
        /// one grid cell (the interpolant is linear per cell, so the
        /// error vanishes with shrinking h except exactly on knots —
        /// measure zero for these draws).
        #[test]
        fn grad_matches_central_difference_with_shrinking_h(
            s in 1.01f64..7.9,
            r in 1.01f64..8.9,
            c in 0.01f64..3.9,
        ) {
            let g = curved_grid();
            let (_, d) = g.interpolate_with_grad(s, r, c);
            let x = [s, r, c];
            for axis in 0..3 {
                let fd = |h: f64| {
                    let mut hi = x;
                    let mut lo = x;
                    hi[axis] += h;
                    lo[axis] -= h;
                    (g.interpolate(hi[0], hi[1], hi[2]) - g.interpolate(lo[0], lo[1], lo[2]))
                        / (2.0 * h)
                };
                // Shrink h: the smallest error over the ladder must be
                // O(h) — brackets that cross a knot give O(1) error,
                // but some rung always fits inside the cell.
                let best = [1e-3, 1e-4, 1e-5, 1e-6]
                    .iter()
                    .map(|&h| (fd(h) - d[axis]).abs())
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(
                    best < 1e-5 * (1.0 + d[axis].abs()),
                    "axis {axis} at {x:?}: analytic {} err {best}",
                    d[axis]
                );
            }
        }
    }
}
