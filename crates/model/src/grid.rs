//! Non-uniform grids and trilinear interpolation.

use wasla_simlib::impl_json_struct;

/// A sorted, strictly increasing axis of calibration points.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    points: Vec<f64>,
}

impl Axis {
    /// Creates an axis. Points must be strictly increasing and
    /// non-empty.
    pub fn new(points: Vec<f64>) -> Self {
        assert!(!points.is_empty());
        assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "axis points must be strictly increasing"
        );
        Axis { points }
    }

    /// The calibration points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the axis has a single point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Finds the bracketing interval and interpolation weight for `x`,
    /// clamping outside the range: returns `(i, w)` such that the value
    /// is `v[i] * (1-w) + v[i+1] * w` (with `i+1` clamped).
    pub fn locate(&self, x: f64) -> (usize, f64) {
        let pts = &self.points;
        if x <= pts[0] || pts.len() == 1 {
            return (0, 0.0);
        }
        if x >= *pts.last().expect("non-empty") {
            return (pts.len() - 1, 0.0);
        }
        let hi = pts.partition_point(|&p| p <= x);
        let i = hi - 1;
        let w = (x - pts[i]) / (pts[i + 1] - pts[i]);
        (i, w)
    }
}

impl_json_struct!(Axis { points });

/// A dense 3-D table over (size, run count, contention) with trilinear
/// interpolation.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3 {
    /// Request-size axis (bytes).
    pub sizes: Axis,
    /// Run-count axis (requests).
    pub runs: Axis,
    /// Contention-factor axis.
    pub contentions: Axis,
    /// Row-major values: `[size][run][contention]`.
    values: Vec<f64>,
}

impl_json_struct!(Grid3 {
    sizes,
    runs,
    contentions,
    values
});

impl Grid3 {
    /// Creates a grid from axes and a filled value table.
    pub fn new(sizes: Axis, runs: Axis, contentions: Axis, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), sizes.len() * runs.len() * contentions.len());
        Grid3 {
            sizes,
            runs,
            contentions,
            values,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        let (nr, nc) = (self.runs.len(), self.contentions.len());
        self.values[(i * nr + j) * nc + k]
    }

    /// Multiplies every tabulated value by `factor` (fault-injected
    /// device degradation scales whole tables uniformly).
    pub fn scale_values(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Trilinear interpolation at (size, run, contention), clamped to
    /// the calibrated range.
    pub fn interpolate(&self, size: f64, run: f64, contention: f64) -> f64 {
        let (i, wi) = self.sizes.locate(size);
        let (j, wj) = self.runs.locate(run);
        let (k, wk) = self.contentions.locate(contention);
        let i1 = (i + 1).min(self.sizes.len() - 1);
        let j1 = (j + 1).min(self.runs.len() - 1);
        let k1 = (k + 1).min(self.contentions.len() - 1);
        let c000 = self.at(i, j, k);
        let c001 = self.at(i, j, k1);
        let c010 = self.at(i, j1, k);
        let c011 = self.at(i, j1, k1);
        let c100 = self.at(i1, j, k);
        let c101 = self.at(i1, j, k1);
        let c110 = self.at(i1, j1, k);
        let c111 = self.at(i1, j1, k1);
        let c00 = c000 * (1.0 - wk) + c001 * wk;
        let c01 = c010 * (1.0 - wk) + c011 * wk;
        let c10 = c100 * (1.0 - wk) + c101 * wk;
        let c11 = c110 * (1.0 - wk) + c111 * wk;
        let c0 = c00 * (1.0 - wj) + c01 * wj;
        let c1 = c10 * (1.0 - wj) + c11 * wj;
        c0 * (1.0 - wi) + c1 * wi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_brackets_and_clamps() {
        let ax = Axis::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(ax.locate(0.5), (0, 0.0));
        assert_eq!(ax.locate(1.0), (0, 0.0));
        let (i, w) = ax.locate(1.5);
        assert_eq!(i, 0);
        assert!((w - 0.5).abs() < 1e-12);
        let (i, w) = ax.locate(3.0);
        assert_eq!(i, 1);
        assert!((w - 0.5).abs() < 1e-12);
        assert_eq!(ax.locate(4.0), (2, 0.0));
        assert_eq!(ax.locate(99.0), (2, 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_rejected() {
        Axis::new(vec![1.0, 1.0]);
    }

    fn linear_grid() -> Grid3 {
        // values = size + 10*run + 100*contention at grid points.
        let sizes = Axis::new(vec![1.0, 2.0]);
        let runs = Axis::new(vec![1.0, 3.0]);
        let cons = Axis::new(vec![0.0, 4.0]);
        let mut values = Vec::new();
        for &s in sizes.points() {
            for &r in runs.points() {
                for &c in cons.points() {
                    values.push(s + 10.0 * r + 100.0 * c);
                }
            }
        }
        Grid3::new(sizes, runs, cons, values)
    }

    #[test]
    fn interpolates_linear_function_exactly() {
        let g = linear_grid();
        for (s, r, c) in [
            (1.0, 1.0, 0.0),
            (1.5, 2.0, 2.0),
            (2.0, 3.0, 4.0),
            (1.25, 1.5, 1.0),
        ] {
            let expect = s + 10.0 * r + 100.0 * c;
            let got = g.interpolate(s, r, c);
            assert!((got - expect).abs() < 1e-9, "({s},{r},{c}) got {got}");
        }
    }

    #[test]
    fn scale_values_multiplies_uniformly() {
        let mut g = linear_grid();
        let before = g.interpolate(1.5, 2.0, 2.0);
        g.scale_values(3.0);
        assert!((g.interpolate(1.5, 2.0, 2.0) - 3.0 * before).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_range() {
        let g = linear_grid();
        // Below and above the grid use edge values.
        assert!((g.interpolate(0.1, 1.0, 0.0) - 11.0).abs() < 1e-9);
        assert!((g.interpolate(5.0, 3.0, 4.0) - 432.0).abs() < 1e-9);
    }
}
