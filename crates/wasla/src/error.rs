//! The unified error hierarchy for the facade crate.
//!
//! Every layer below owns a focused error enum — [`AdvisorError`]
//! (core), [`PlacementError`] (exec), [`FitError`] (trace),
//! [`ModelError`] (model), [`JsonError`] (simlib) — and the facade is
//! where those layers meet. [`WaslaError`] wraps each of them plus the
//! facade's own failure modes (file I/O, CLI usage, broken internal
//! invariants), so every public entry point in `wasla::pipeline`,
//! `wasla::session`, and the `wasla-advisor` binary returns one
//! `Result` type instead of panicking.
//!
//! The hierarchy follows the house error pattern: hand-rolled enum,
//! `Display`/`Error`/`From` impls, and JSON round-tripping through the
//! in-tree `json` module (externally-tagged variants).

use wasla_core::AdvisorError;
use wasla_exec::{EngineError, PlacementError};
use wasla_model::ModelError;
use wasla_simlib::json::{self, FromJson, Json, JsonError, ToJson};
use wasla_trace::oplog::OpLogError;
use wasla_trace::FitError;

/// Any failure the advise pipeline, session layer, or CLI can report.
#[derive(Clone, Debug, PartialEq)]
pub enum WaslaError {
    /// The layout advisor failed (invalid problem, no initial layout,
    /// no starts, regularization dead end).
    Advisor(AdvisorError),
    /// A layout could not be realized on the targets.
    Placement(PlacementError),
    /// The execution engine's bookkeeping failed mid-run (bad
    /// completion tag — corrupted or fault-injected).
    Engine(EngineError),
    /// An injected request fault persisted through every retry
    /// attempt (fault-injection testing only; never fires without an
    /// active fault plan — see [`wasla_simlib::fault`]).
    Fault {
        /// Retry attempts consumed before giving up.
        attempts: u32,
        /// Description of the injected failure.
        detail: String,
    },
    /// Workload fitting rejected the trace or object inventory.
    Fit(FitError),
    /// A captured op-log failed to parse (malformed or damaged file).
    OpLog(OpLogError),
    /// A target could not be modeled (empty or heterogeneous RAID).
    Model(ModelError),
    /// A JSON document failed to parse or decode.
    Json(JsonError),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        detail: String,
    },
    /// Batch admission control rejected the request before any work
    /// ran: the bounded in-flight queue was full (load shedding; see
    /// `wasla::session::BatchPolicy`). Retry later or with a
    /// higher-priority deadline class.
    Overloaded {
        /// The request's position in the admission order.
        position: usize,
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The caller misused the CLI (bad flags, unknown subcommand).
    Usage(String),
    /// An internal invariant broke; a bug, not a user error.
    Internal(String),
}

impl WaslaError {
    /// Wraps a `std::io::Error` with the path it concerns.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        WaslaError::Io {
            path: path.into(),
            detail: err.to_string(),
        }
    }

    /// The process exit code the CLI maps this error to: `2` for
    /// usage errors, `3` for file I/O, `4` for malformed JSON, `5`
    /// for admission-control shedding (retryable overload), `1` for
    /// everything else (pipeline failures).
    pub fn exit_code(&self) -> i32 {
        match self {
            WaslaError::Usage(_) => 2,
            WaslaError::Io { .. } => 3,
            WaslaError::Json(_) => 4,
            WaslaError::Overloaded { .. } => 5,
            _ => 1,
        }
    }
}

impl From<AdvisorError> for WaslaError {
    fn from(e: AdvisorError) -> Self {
        WaslaError::Advisor(e)
    }
}

impl From<PlacementError> for WaslaError {
    fn from(e: PlacementError) -> Self {
        WaslaError::Placement(e)
    }
}

impl From<EngineError> for WaslaError {
    fn from(e: EngineError) -> Self {
        WaslaError::Engine(e)
    }
}

impl From<FitError> for WaslaError {
    fn from(e: FitError) -> Self {
        WaslaError::Fit(e)
    }
}

impl From<OpLogError> for WaslaError {
    fn from(e: OpLogError) -> Self {
        WaslaError::OpLog(e)
    }
}

impl From<ModelError> for WaslaError {
    fn from(e: ModelError) -> Self {
        WaslaError::Model(e)
    }
}

impl From<JsonError> for WaslaError {
    fn from(e: JsonError) -> Self {
        WaslaError::Json(e)
    }
}

impl ToJson for WaslaError {
    fn to_json(&self) -> Json {
        match self {
            WaslaError::Advisor(e) => json::variant("Advisor", e.to_json()),
            WaslaError::Placement(e) => json::variant("Placement", e.to_json()),
            WaslaError::Engine(e) => {
                let (name, slot) = match e {
                    EngineError::DeadStep { slot } => ("DeadStep", *slot),
                    EngineError::DeadQuery { slot } => ("DeadQuery", *slot),
                };
                json::variant("Engine", json::variant(name, slot.to_json()))
            }
            WaslaError::Fault { attempts, detail } => json::variant(
                "Fault",
                Json::Obj(vec![
                    ("attempts".to_string(), attempts.to_json()),
                    ("detail".to_string(), detail.to_json()),
                ]),
            ),
            WaslaError::Fit(e) => json::variant("Fit", e.to_json()),
            WaslaError::OpLog(e) => json::variant("OpLog", e.to_json()),
            WaslaError::Model(e) => json::variant("Model", e.to_json()),
            WaslaError::Json(e) => json::variant("Json", e.message().to_json()),
            WaslaError::Io { path, detail } => json::variant(
                "Io",
                Json::Obj(vec![
                    ("path".to_string(), path.to_json()),
                    ("detail".to_string(), detail.to_json()),
                ]),
            ),
            WaslaError::Overloaded { position, capacity } => json::variant(
                "Overloaded",
                Json::Obj(vec![
                    ("position".to_string(), position.to_json()),
                    ("capacity".to_string(), capacity.to_json()),
                ]),
            ),
            WaslaError::Usage(msg) => json::variant("Usage", msg.to_json()),
            WaslaError::Internal(msg) => json::variant("Internal", msg.to_json()),
        }
    }
}

impl FromJson for WaslaError {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match json::untag(v)? {
            ("Advisor", payload) => AdvisorError::from_json(payload).map(WaslaError::Advisor),
            ("Placement", payload) => PlacementError::from_json(payload).map(WaslaError::Placement),
            ("Engine", payload) => {
                let (kind, slot) = json::untag(payload)?;
                let slot = usize::from_json(slot)?;
                match kind {
                    "DeadStep" => Ok(WaslaError::Engine(EngineError::DeadStep { slot })),
                    "DeadQuery" => Ok(WaslaError::Engine(EngineError::DeadQuery { slot })),
                    other => Err(JsonError::new(format!(
                        "unknown EngineError variant: {other:?}"
                    ))),
                }
            }
            ("Fault", payload) => {
                let get = |name: &str| {
                    payload
                        .field(name)
                        .ok_or_else(|| JsonError::missing_field(name))
                };
                Ok(WaslaError::Fault {
                    attempts: u32::from_json(get("attempts")?)?,
                    detail: String::from_json(get("detail")?)?,
                })
            }
            ("Fit", payload) => FitError::from_json(payload).map(WaslaError::Fit),
            ("OpLog", payload) => OpLogError::from_json(payload).map(WaslaError::OpLog),
            ("Model", payload) => ModelError::from_json(payload).map(WaslaError::Model),
            ("Json", payload) => {
                String::from_json(payload).map(|m| WaslaError::Json(JsonError::new(m)))
            }
            ("Io", payload) => {
                let get = |name: &str| {
                    payload
                        .field(name)
                        .ok_or_else(|| JsonError::missing_field(name))
                };
                Ok(WaslaError::Io {
                    path: String::from_json(get("path")?)?,
                    detail: String::from_json(get("detail")?)?,
                })
            }
            ("Overloaded", payload) => {
                let get = |name: &str| {
                    payload
                        .field(name)
                        .ok_or_else(|| JsonError::missing_field(name))
                };
                Ok(WaslaError::Overloaded {
                    position: usize::from_json(get("position")?)?,
                    capacity: usize::from_json(get("capacity")?)?,
                })
            }
            ("Usage", payload) => String::from_json(payload).map(WaslaError::Usage),
            ("Internal", payload) => String::from_json(payload).map(WaslaError::Internal),
            (other, _) => Err(JsonError::new(format!(
                "unknown WaslaError variant: {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for WaslaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaslaError::Advisor(e) => write!(f, "advisor: {e}"),
            WaslaError::Placement(e) => write!(f, "placement: {e}"),
            WaslaError::Engine(e) => write!(f, "engine: {e}"),
            WaslaError::Fault { attempts, detail } => {
                write!(f, "fault: {detail} (persisted through {attempts} attempts)")
            }
            WaslaError::Fit(e) => write!(f, "fit: {e}"),
            WaslaError::OpLog(e) => write!(f, "oplog: {e}"),
            WaslaError::Model(e) => write!(f, "model: {e}"),
            WaslaError::Json(e) => write!(f, "json: {e}"),
            WaslaError::Io { path, detail } => write!(f, "io: {path}: {detail}"),
            WaslaError::Overloaded { position, capacity } => write!(
                f,
                "overloaded: shed at admission position {position} (queue capacity {capacity})"
            ),
            WaslaError::Usage(msg) => write!(f, "usage: {msg}"),
            WaslaError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for WaslaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WaslaError::Advisor(e) => Some(e),
            WaslaError::Placement(e) => Some(e),
            WaslaError::Engine(e) => Some(e),
            WaslaError::Fit(e) => Some(e),
            WaslaError::OpLog(e) => Some(e),
            WaslaError::Model(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_core::InitialLayoutError;

    #[test]
    fn json_round_trip_all_variants() {
        use wasla_simlib::json::{from_str, to_string};
        let cases = vec![
            WaslaError::Advisor(AdvisorError::InvalidProblem("bad".into())),
            WaslaError::Advisor(AdvisorError::Initial(InitialLayoutError::NoFit {
                object: 3,
            })),
            WaslaError::Placement(PlacementError::ShapeMismatch),
            WaslaError::Engine(EngineError::DeadStep { slot: 5 }),
            WaslaError::Engine(EngineError::DeadQuery { slot: 0 }),
            WaslaError::Fault {
                attempts: 2,
                detail: "injected request fault".into(),
            },
            WaslaError::Fit(FitError::ShapeMismatch { names: 2, sizes: 3 }),
            WaslaError::OpLog(OpLogError::MissingHeader),
            WaslaError::OpLog(OpLogError::Truncated { line: 4, fields: 3 }),
            WaslaError::OpLog(OpLogError::NonMonotone { line: 9 }),
            WaslaError::Model(ModelError::NoMembers { target: "t".into() }),
            WaslaError::Json(JsonError::new("unexpected token")),
            WaslaError::Io {
                path: "/tmp/x".into(),
                detail: "denied".into(),
            },
            WaslaError::Overloaded {
                position: 9,
                capacity: 8,
            },
            WaslaError::Usage("missing --trace".into()),
            WaslaError::Internal("no trace captured".into()),
        ];
        for err in cases {
            let back: WaslaError = from_str(&to_string(&err)).unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn exit_codes_partition_failure_classes() {
        assert_eq!(WaslaError::Usage("u".into()).exit_code(), 2);
        assert_eq!(
            WaslaError::Io {
                path: "p".into(),
                detail: "d".into()
            }
            .exit_code(),
            3
        );
        assert_eq!(WaslaError::Json(JsonError::new("j")).exit_code(), 4);
        assert_eq!(
            WaslaError::Overloaded {
                position: 4,
                capacity: 4
            }
            .exit_code(),
            5
        );
        assert_eq!(
            WaslaError::Placement(PlacementError::ShapeMismatch).exit_code(),
            1
        );
        assert_eq!(
            WaslaError::Advisor(AdvisorError::InvalidProblem("x".into())).exit_code(),
            1
        );
    }

    #[test]
    fn display_prefixes_name_the_layer() {
        let e = WaslaError::Model(ModelError::NoMembers {
            target: "empty".into(),
        });
        assert!(e.to_string().starts_with("model: "));
        assert!(std::error::Error::source(&e).is_some());
    }
}
