//! Capture/replay orchestration: the predict-vs-observe loop.
//!
//! The paper validates its advisor by implementing the recommended
//! layout and re-running the workload (§6). This module closes the
//! same loop without re-running the database at all: a captured
//! [`OpLog`] fixes the request schedule, and replaying it against the
//! baseline and advised layouts turns the cost model's utilization
//! predictions into observable completion-time numbers.
//!
//! * [`capture_oplog`] runs a workload mix under the SEE baseline with
//!   op-log capture on and returns the log plus the run report.
//! * [`replay_validate`] feeds a log through the streamed advise
//!   pipeline ([`AdvisorSession::advise_from_oplog`]), replays it
//!   against the SEE baseline and the advised layout, and pairs the
//!   model's predicted per-target utilizations with the replay's
//!   observed ones.
//! * [`render_validation`] formats the predicted-vs-observed report.

use crate::error::WaslaError;
use crate::pipeline::{self, AdviseConfig, RunSettings, Scenario, LVM_STRIPE};
use crate::session::{AdvisorSession, OpLogAdvice};
use wasla_core::{Layout, UtilizationEstimator};
use wasla_exec::{Placement, ReplayReport, RunReport};
use wasla_trace::oplog::OpLog;

/// What [`capture_oplog`] produced: the op-log plus the SEE baseline
/// run it was captured from.
pub struct CaptureOutcome {
    /// The captured op-log (issue/complete timestamps per request).
    pub log: OpLog,
    /// The capture run's report (the SEE baseline observation).
    pub report: RunReport,
}

/// Runs `workloads` under the SEE baseline layout with op-log capture
/// on — the capture half of the capture/replay pipeline. Like the
/// trace stage, this is the "operational system" observation the
/// advisor later works from.
pub fn capture_oplog(
    scenario: &Scenario,
    workloads: &[wasla_workload::SqlWorkload],
    settings: &RunSettings,
) -> Result<CaptureOutcome, WaslaError> {
    let n = scenario.catalog.len();
    let m = scenario.targets.len();
    let see = Layout::see(n, m);
    let mut settings = settings.clone();
    settings.capture_oplog = true;
    let outcome = pipeline::run_layout_observed(scenario, workloads, see.rows(), &settings)?;
    let log = outcome.oplog.ok_or_else(|| {
        WaslaError::Internal("op-log capture was requested but the run produced no log".to_string())
    })?;
    Ok(CaptureOutcome {
        log,
        report: outcome.report,
    })
}

/// One layout's predicted and observed side of a replay.
pub struct LayoutReplay {
    /// Layout label ("see" or "advised").
    pub label: &'static str,
    /// The cost model's predicted per-target utilizations.
    pub predicted_utilization: Vec<f64>,
    /// The replay's observation.
    pub observed: ReplayReport,
}

impl LayoutReplay {
    /// Predicted max-target utilization (the NLP objective).
    pub fn predicted_max(&self) -> f64 {
        self.predicted_utilization
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// Observed max-target utilization over the replay.
    pub fn observed_max(&self) -> f64 {
        self.observed
            .target_utilization
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }
}

/// The predicted-vs-observed comparison [`replay_validate`] builds.
pub struct ReplayValidation {
    /// What the streamed advise pipeline produced from the log.
    pub advice: OpLogAdvice,
    /// The SEE baseline's predicted and observed numbers.
    pub baseline: LayoutReplay,
    /// The advised layout's predicted and observed numbers.
    pub advised: LayoutReplay,
    /// Advised makespan the model predicts: the observed baseline
    /// makespan scaled by the predicted utilization ratio (utilization
    /// is the model's proxy for completion time, paper Eq. 1).
    pub predicted_advised_makespan: f64,
}

impl ReplayValidation {
    /// Observed replay speedup of the advised layout over baseline.
    pub fn observed_speedup(&self) -> f64 {
        self.baseline.observed.makespan / self.advised.observed.makespan.max(1e-9)
    }

    /// Speedup the model predicts (utilization ratio).
    pub fn predicted_speedup(&self) -> f64 {
        self.baseline.predicted_max() / self.advised.predicted_max().max(1e-9)
    }
}

/// Replays `log` against the layout given by `rows` on a fresh copy of
/// the scenario's storage.
pub fn replay_layout(
    log: &OpLog,
    scenario: &Scenario,
    rows: &[Vec<f64>],
) -> Result<ReplayReport, WaslaError> {
    let placement = Placement::build(
        rows,
        &scenario.catalog.sizes(),
        &scenario.capacities(),
        LVM_STRIPE,
    )?;
    let mut storage = scenario.storage();
    wasla_exec::replay_oplog(log, &placement, &mut storage, scenario.catalog.len())
        .map_err(WaslaError::from)
}

/// The full replay-validation loop: streamed advise from the log, then
/// replay against the SEE baseline and the advised layout, pairing
/// predictions with observations. Deterministic: same log, same
/// scenario, same config → byte-identical report at any
/// `WASLA_THREADS`.
pub fn replay_validate(
    session: &mut AdvisorSession,
    log: &OpLog,
    scenario: &Scenario,
    config: &AdviseConfig,
) -> Result<ReplayValidation, WaslaError> {
    let advice = session.advise_from_oplog(log, scenario, config)?;
    let n = scenario.catalog.len();
    let m = scenario.targets.len();
    let see = Layout::see(n, m);
    let advised = advice.recommendation.final_layout();

    let est = UtilizationEstimator::new(&advice.problem);
    let baseline = LayoutReplay {
        label: "see",
        predicted_utilization: est.utilizations(&see),
        observed: replay_layout(log, scenario, see.rows())?,
    };
    let advised_replay = LayoutReplay {
        label: "advised",
        predicted_utilization: est.utilizations(advised),
        observed: replay_layout(log, scenario, advised.rows())?,
    };

    let predicted_advised_makespan = baseline.observed.makespan
        * (advised_replay.predicted_max() / baseline.predicted_max().max(1e-9));
    Ok(ReplayValidation {
        advice,
        baseline,
        advised: advised_replay,
        predicted_advised_makespan,
    })
}

fn render_side(out: &mut String, side: &LayoutReplay, scenario: &Scenario, predicted_note: &str) {
    out.push_str(&format!(
        "{:<8} predicted max util {:.3}   observed max util {:.3}   \
makespan {:.2}s{}   mean response {:.4}s\n",
        side.label,
        side.predicted_max(),
        side.observed_max(),
        side.observed.makespan,
        predicted_note,
        side.observed.mean_response,
    ));
    for (i, target) in scenario.targets.iter().enumerate() {
        out.push_str(&format!(
            "  {:<12} predicted {:.3}   observed {:.3}\n",
            target.name,
            side.predicted_utilization.get(i).copied().unwrap_or(0.0),
            side.observed
                .target_utilization
                .get(i)
                .copied()
                .unwrap_or(0.0),
        ));
    }
}

/// Formats the predicted-vs-observed replay report.
pub fn render_validation(v: &ReplayValidation, scenario: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "replay: {} records over {:.2}s of captured I/O\n",
        v.baseline.observed.issued, v.baseline.observed.log_span
    ));
    render_side(&mut out, &v.baseline, scenario, "");
    let note = format!(" (predicted {:.2}s)", v.predicted_advised_makespan);
    render_side(&mut out, &v.advised, scenario, &note);
    out.push_str(&format!(
        "speedup: observed {:.2}x, predicted {:.2}x\n",
        v.observed_speedup(),
        v.predicted_speedup()
    ));
    for note in &v.advice.degraded {
        out.push_str(&format!("degraded: {note}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_workload::SqlWorkload;

    #[test]
    fn capture_replay_validate_round_trip() {
        let scenario = Scenario::homogeneous_disks(4, 0.01);
        let workloads = [SqlWorkload::olap1_21(3)];
        let captured =
            capture_oplog(&scenario, &workloads, &RunSettings::default()).expect("capture runs");
        assert!(!captured.log.is_empty());
        let mut session = AdvisorSession::new();
        let v = replay_validate(
            &mut session,
            &captured.log,
            &scenario,
            &AdviseConfig::fast(),
        )
        .expect("replay validates");
        assert_eq!(v.baseline.observed.issued, captured.log.len() as u64);
        assert_eq!(v.baseline.observed.completed, v.baseline.observed.issued);
        assert_eq!(v.advised.observed.completed, v.advised.observed.issued);
        assert!(v.baseline.predicted_max() > 0.0);
        assert!(v.predicted_advised_makespan > 0.0);
        let report = render_validation(&v, &scenario);
        assert!(report.contains("see"));
        assert!(report.contains("advised"));
        assert!(report.contains("speedup"));
    }

    #[test]
    fn capture_off_by_default_and_on_when_asked() {
        let scenario = Scenario::homogeneous_disks(2, 0.01);
        let workloads = [SqlWorkload::olap1_21(2)];
        let see = Layout::see(scenario.catalog.len(), scenario.targets.len());
        let plain = pipeline::run_layout_observed(
            &scenario,
            &workloads,
            see.rows(),
            &RunSettings::default(),
        )
        .expect("plain run");
        assert!(plain.oplog.is_none(), "capture must be opt-in");
        let captured =
            capture_oplog(&scenario, &workloads, &RunSettings::default()).expect("capture runs");
        // The log is the run's I/O: same stream of block requests the
        // trace path would have recorded.
        assert!(captured.log.len() > 0);
        assert_eq!(
            captured.report.queries_completed,
            plain.report.queries_completed
        );
    }
}
