//! Fleet-scale stress driver: thousands of synthetic tenants through
//! [`Service::advise_batch_with`].
//!
//! The driver generates tenants with [`wasla_workload::synth`], maps
//! each onto a shared simulated disk fleet, and feeds them to the
//! batch service in ticks, accounting per tick for throughput and the
//! admission/degradation outcomes. Two kinds of output come back:
//!
//! * a **deterministic report** (tick stats + the full decision log) —
//!   a pure function of `(spec, policy, fault plan)`, byte-identical
//!   at any `WASLA_THREADS`, which CI byte-compares at 1 vs 8 threads;
//! * **wall-clock timings**, kept strictly out of the deterministic
//!   report (the CLIs print them to stderr).
//!
//! The robustness invariant proven here at scale: every request ends
//! in exactly one of ok / degraded-with-typed-notes / typed-error —
//! never a panic — under any fault plan.

use crate::error::WaslaError;
use crate::pipeline::{AdviseConfig, Scenario};
use crate::session::{AdviseRequest, BatchPolicy, Service, SlotDisposition};
use std::time::Instant;
use wasla_storage::{DeviceSpec, DiskParams, TargetConfig};
use wasla_workload::synth::{self, SynthSpec};

const MIB: f64 = 1024.0 * 1024.0;

/// Everything one stress run needs: the generator spec, the batch
/// shape, and the admission policy.
#[derive(Clone, Debug, PartialEq)]
pub struct StressOptions {
    /// Tenant-population parameters (count, skew, sizes, deadlines).
    pub spec: SynthSpec,
    /// Tenants per tick (one `advise_batch_with` call per tick).
    pub batch: usize,
    /// Admission/deadline/retry policy applied to every tick.
    pub policy: BatchPolicy,
    /// Base seed for the advising service (per-request seeds derive
    /// from it via `par::task_seed`).
    pub service_seed: u64,
}

impl Default for StressOptions {
    fn default() -> Self {
        StressOptions {
            spec: SynthSpec::default(),
            batch: 128,
            policy: BatchPolicy::default(),
            service_seed: 0xF1EE7,
        }
    }
}

impl StressOptions {
    /// Validates the run shape (the spec validates itself).
    pub fn validate(&self) -> Result<(), WaslaError> {
        self.spec.validate().map_err(WaslaError::Usage)?;
        if self.batch == 0 {
            return Err(WaslaError::Usage("batch must be >= 1".to_string()));
        }
        if self.policy.max_attempts == 0 {
            return Err(WaslaError::Usage("max-attempts must be >= 1".to_string()));
        }
        Ok(())
    }

    /// Parses the shared `stress` CLI flag set (both `wasla-advisor
    /// stress` and `repro stress` route through here). Unknown flags,
    /// missing values, and malformed numbers are all
    /// [`WaslaError::Usage`] (exit 2).
    pub fn from_args(args: &[String]) -> Result<StressOptions, WaslaError> {
        fn value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, WaslaError> {
            args.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| WaslaError::Usage(format!("{flag} requires a value")))
        }
        fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, WaslaError> {
            raw.parse()
                .map_err(|_| WaslaError::Usage(format!("{flag}: malformed value {raw:?}")))
        }
        let mut opts = StressOptions::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--tenants" => opts.spec.tenants = parse(value(args, i, flag)?, flag)?,
                "--targets" => opts.spec.targets = parse(value(args, i, flag)?, flag)?,
                "--zipf" => opts.spec.zipf_theta = parse(value(args, i, flag)?, flag)?,
                "--objects-min" => opts.spec.objects_min = parse(value(args, i, flag)?, flag)?,
                "--objects-max" => opts.spec.objects_max = parse(value(args, i, flag)?, flag)?,
                "--size-mib-min" => opts.spec.size_mib_min = parse(value(args, i, flag)?, flag)?,
                "--size-mib-max" => opts.spec.size_mib_max = parse(value(args, i, flag)?, flag)?,
                "--write-frac" => opts.spec.write_fraction = parse(value(args, i, flag)?, flag)?,
                "--burstiness" => opts.spec.burstiness = parse(value(args, i, flag)?, flag)?,
                "--interactive-share" => {
                    opts.spec.interactive_share = parse(value(args, i, flag)?, flag)?
                }
                "--batch-share" => opts.spec.batch_share = parse(value(args, i, flag)?, flag)?,
                "--seed" => opts.spec.seed = parse(value(args, i, flag)?, flag)?,
                "--batch" => opts.batch = parse(value(args, i, flag)?, flag)?,
                "--queue-cap" => {
                    opts.policy.queue_capacity = Some(parse(value(args, i, flag)?, flag)?)
                }
                "--brownout" => {
                    opts.policy.brownout_threshold = Some(parse(value(args, i, flag)?, flag)?)
                }
                "--max-attempts" => opts.policy.max_attempts = parse(value(args, i, flag)?, flag)?,
                "--backoff-base" => opts.policy.backoff_base = parse(value(args, i, flag)?, flag)?,
                "--backoff-cap" => opts.policy.backoff_cap = parse(value(args, i, flag)?, flag)?,
                other => {
                    return Err(WaslaError::Usage(format!(
                        "unknown stress argument {other:?}"
                    )))
                }
            }
            i += 2;
        }
        opts.validate()?;
        Ok(opts)
    }
}

/// The shared fleet every tenant is laid out on: identical simulated
/// disks sized so any single tenant fits (each advise places one
/// tenant's catalog across the whole fleet).
pub fn fleet(spec: &SynthSpec) -> Vec<TargetConfig> {
    let per_disk_mib = (spec.size_mib_max * (spec.objects_max as f64 + 1.0) / spec.targets as f64)
        .max(2.0 * spec.size_mib_max)
        .max(1024.0);
    let disk = DeviceSpec::Disk(DiskParams::scsi_15k((per_disk_mib * MIB) as u64));
    (0..spec.targets)
        .map(|j| TargetConfig::single(format!("fleet{j}"), disk.clone()))
        .collect()
}

/// The advise request for one tenant: its private catalog and
/// workload on the shared fleet, carrying its deadline class.
pub fn tenant_request(spec: &SynthSpec, targets: &[TargetConfig], index: u64) -> AdviseRequest {
    let tenant = synth::generate_tenant(spec, index);
    let pool_bytes = (tenant.catalog.total_size() / 8).max((16.0 * MIB) as u64);
    let scenario = Scenario {
        catalog: tenant.catalog,
        targets: targets.to_vec(),
        scale: 1.0,
        pool_bytes,
        seed: spec.seed,
    };
    AdviseRequest::new(scenario, vec![tenant.workload], AdviseConfig::fast())
        .with_deadline(tenant.deadline)
}

/// Outcome counters for one tick (one batch).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TickStats {
    /// Tick index.
    pub tick: usize,
    /// Requests in the tick.
    pub requests: usize,
    /// Clean outcomes.
    pub ok: usize,
    /// Outcomes with typed degradation notes.
    pub degraded: usize,
    /// Brownouts (cheapest-rung solves) among the admitted requests.
    pub shed: usize,
    /// Rejected by admission control (`WaslaError::Overloaded`).
    pub rejected: usize,
    /// Typed errors other than rejection.
    pub failed: usize,
    /// Wall-clock milliseconds (excluded from the deterministic
    /// report).
    pub wall_ms: f64,
}

impl TickStats {
    /// True when every request resolved to exactly one disposition.
    pub fn accounted(&self) -> bool {
        self.ok + self.degraded + self.rejected + self.failed == self.requests
    }
}

/// What a stress run produced.
pub struct StressOutcome {
    /// Tenants driven.
    pub tenants: usize,
    /// Per-tick counters.
    pub ticks: Vec<TickStats>,
    /// The concatenated per-tick decision logs (deterministic).
    pub decision_log: String,
}

impl StressOutcome {
    /// Aggregate counters over all ticks.
    pub fn totals(&self) -> TickStats {
        let mut total = TickStats::default();
        for t in &self.ticks {
            total.requests += t.requests;
            total.ok += t.ok;
            total.degraded += t.degraded;
            total.shed += t.shed;
            total.rejected += t.rejected;
            total.failed += t.failed;
            total.wall_ms += t.wall_ms;
        }
        total
    }

    /// The deterministic report: tick stats, totals, and the decision
    /// log — no wall-clock anywhere. CI byte-compares this across
    /// `WASLA_THREADS` settings.
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "stress tenants={}", self.tenants);
        for t in &self.ticks {
            let _ = writeln!(
                out,
                "tick={} requests={} ok={} degraded={} shed={} rejected={} failed={}",
                t.tick, t.requests, t.ok, t.degraded, t.shed, t.rejected, t.failed
            );
        }
        let total = self.totals();
        let _ = writeln!(
            out,
            "total requests={} ok={} degraded={} shed={} rejected={} failed={}",
            total.requests, total.ok, total.degraded, total.shed, total.rejected, total.failed
        );
        out.push_str("decisions:\n");
        out.push_str(&self.decision_log);
        out
    }

    /// Wall-clock summary (stderr material; never byte-compared).
    pub fn render_timing(&self) -> String {
        let total = self.totals();
        let secs = total.wall_ms / 1000.0;
        let served = total.requests - total.rejected;
        let rate = if secs > 0.0 {
            served as f64 / secs
        } else {
            0.0
        };
        format!(
            "{} requests ({} served) in {:.2}s — {:.1} advises/s over {} ticks",
            total.requests,
            served,
            secs,
            rate,
            self.ticks.len()
        )
    }
}

/// Runs the stress scenario against a fresh [`Service`].
pub fn run_stress(opts: &StressOptions) -> Result<StressOutcome, WaslaError> {
    let mut service = Service::new(opts.service_seed);
    run_stress_with(&mut service, opts)
}

/// Runs the stress scenario against an existing service (warm caches
/// carry across ticks and across calls).
pub fn run_stress_with(
    service: &mut Service,
    opts: &StressOptions,
) -> Result<StressOutcome, WaslaError> {
    opts.validate()?;
    let targets = fleet(&opts.spec);
    let tenants = opts.spec.tenants;
    let mut ticks = Vec::new();
    let mut decision_log = String::new();
    let mut start = 0usize;
    let mut tick = 0usize;
    while start < tenants {
        let end = (start + opts.batch).min(tenants);
        let requests: Vec<AdviseRequest> = (start..end)
            .map(|i| tenant_request(&opts.spec, &targets, i as u64))
            .collect();
        let t0 = Instant::now();
        let report = service.advise_batch_with(&requests, &opts.policy);
        let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let mut stats = TickStats {
            tick,
            requests: requests.len(),
            wall_ms,
            ..TickStats::default()
        };
        for d in &report.decisions {
            match d.disposition {
                SlotDisposition::Ok => stats.ok += 1,
                SlotDisposition::Degraded => stats.degraded += 1,
                SlotDisposition::Rejected => stats.rejected += 1,
                SlotDisposition::Failed => stats.failed += 1,
            }
            if d.shed {
                stats.shed += 1;
            }
        }
        if !stats.accounted() {
            return Err(WaslaError::Internal(format!(
                "tick {tick}: {} requests but dispositions sum to {}",
                stats.requests,
                stats.ok + stats.degraded + stats.rejected + stats.failed
            )));
        }
        decision_log.push_str(&format!("tick={tick}\n"));
        decision_log.push_str(&report.render_decisions());
        ticks.push(stats);
        start = end;
        tick += 1;
    }
    Ok(StressOutcome {
        tenants,
        ticks,
        decision_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_parses_the_full_flag_set() {
        let args: Vec<String> = [
            "--tenants",
            "24",
            "--targets",
            "4",
            "--zipf",
            "0.5",
            "--batch",
            "8",
            "--queue-cap",
            "6",
            "--brownout",
            "4",
            "--max-attempts",
            "3",
            "--seed",
            "99",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = StressOptions::from_args(&args).unwrap();
        assert_eq!(opts.spec.tenants, 24);
        assert_eq!(opts.spec.targets, 4);
        assert_eq!(opts.batch, 8);
        assert_eq!(opts.policy.queue_capacity, Some(6));
        assert_eq!(opts.policy.brownout_threshold, Some(4));
        assert_eq!(opts.policy.max_attempts, 3);
        assert_eq!(opts.spec.seed, 99);
    }

    #[test]
    fn from_args_rejects_unknown_and_malformed() {
        for bad in [
            vec!["--tenants"],           // missing value
            vec!["--tenants", "many"],   // malformed number
            vec!["--frobnicate", "1"],   // unknown flag
            vec!["--tenants", "0"],      // fails spec validation
            vec!["--burstiness", "2.0"], // out of range
            vec!["--batch", "0"],        // run-shape validation
            vec!["--max-attempts", "0"], // policy validation
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let err = StressOptions::from_args(&args).unwrap_err();
            assert!(matches!(err, WaslaError::Usage(_)), "{args:?}: {err}");
            assert_eq!(err.exit_code(), 2);
        }
    }

    #[test]
    fn fleet_disks_hold_any_single_tenant() {
        let spec = SynthSpec::default();
        let targets = fleet(&spec);
        assert_eq!(targets.len(), spec.targets);
        // Worst-case tenant: objects_max objects at size_mib_max plus
        // temp, all placed whole.
        let fleet_bytes: u64 = targets.iter().map(|t| t.capacity()).sum();
        let worst = ((spec.objects_max as f64 + 1.0) * spec.size_mib_max * MIB) as u64;
        assert!(fleet_bytes > worst);
    }
}
