//! End-to-end pipeline: the paper's full methodology as library calls.
//!
//! The paper's experimental loop (§5–§6) is:
//!
//! 1. run the SQL workload on the database under a baseline (SEE)
//!    layout and collect a block I/O trace;
//! 2. fit Rome-style workload descriptions per object (Rubicon);
//! 3. calibrate cost models for the storage targets;
//! 4. run the layout advisor;
//! 5. implement the recommended layout and re-run the workload to
//!    measure the improvement.
//!
//! [`advise`] performs 1–4 and [`run_layout`] performs 5 against the
//! simulated substrate. [`Scenario`] bundles the catalog/targets/scale
//! configurations used by the paper's experiments (homogeneous disks,
//! the heterogeneous 3-1 and 2-1-1 RAID configurations, disks + SSD,
//! and the consolidation scenario).

//!
//! [`advise`] is the *cold* path: it delegates to a fresh
//! [`AdvisorSession`](crate::session::AdvisorSession), so one-shot
//! calls and sessioned calls share one code path and produce
//! byte-identical recommendations. Callers advising repeatedly over
//! shared device types or traces should hold a session (or a
//! [`Service`](crate::session::Service)) to reuse calibration tables
//! and workload fits.

use crate::error::WaslaError;
use crate::session::AdvisorSession;
use std::sync::Arc;
use wasla_core::{
    AdminConstraint, AdvisorOptions, GradPath, Layout, LayoutProblem, ObjectiveKind,
    Recommendation, SolveQuality,
};
use wasla_exec::{Engine, Placement, RunConfig, RunOutcome, RunReport};
use wasla_model::{CalibrationGrid, TargetCostModel};
use wasla_storage::{DeviceSpec, DiskParams, SsdParams, StorageSystem, TargetConfig};
use wasla_trace::FitConfig;
use wasla_workload::{Catalog, SqlWorkload, WorkloadSet};

/// Paper-equivalent disk capacity in bytes at scale 1.0 (18.4 GB).
pub const DISK_BYTES: f64 = 18.4e9;
/// Paper-equivalent SSD capacity in bytes at scale 1.0 (32 GB).
pub const SSD_BYTES: f64 = 32e9;
/// Paper-equivalent buffer pool at scale 1.0 (2 GB).
pub const POOL_BYTES: f64 = 2e9;
/// RAID-0 stripe unit used for grouped targets.
pub const RAID_STRIPE: u64 = 256 * 1024;
/// LVM stripe size used by placements and the advisor's layout model.
/// Period-accurate LVM configurations used small stripes; a small
/// stripe is also what makes co-located sequential streams genuinely
/// interleave on each member disk.
pub const LVM_STRIPE: u64 = 256 * 1024;

/// Parses a user-supplied objective name (the CLI's `--objective`
/// value) into an [`ObjectiveKind`]. Unknown names are
/// [`WaslaError::Usage`] (exit code 2) and list the valid names.
pub fn parse_objective(name: &str) -> Result<ObjectiveKind, WaslaError> {
    ObjectiveKind::from_name(name).ok_or_else(|| {
        let valid: Vec<&str> = ObjectiveKind::ALL.iter().map(|k| k.name()).collect();
        WaslaError::Usage(format!(
            "unknown objective {name:?} (valid: {})",
            valid.join(", ")
        ))
    })
}

/// Parses a user-supplied gradient-path name (the CLI's `--grad`
/// value) into a [`GradPath`]. Unknown names are
/// [`WaslaError::Usage`] (exit code 2) and list the valid names.
pub fn parse_grad_path(name: &str) -> Result<GradPath, WaslaError> {
    GradPath::from_name(name).ok_or_else(|| {
        let valid: Vec<&str> = GradPath::ALL.iter().map(|g| g.name()).collect();
        WaslaError::Usage(format!(
            "unknown gradient path {name:?} (valid: {})",
            valid.join(", ")
        ))
    })
}

/// One experimental setup: a database catalog on a set of storage
/// targets at a given scale.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The database objects.
    pub catalog: Catalog,
    /// The storage targets.
    pub targets: Vec<TargetConfig>,
    /// Scale factor relative to the paper's setup (1.0 = full size).
    pub scale: f64,
    /// Buffer-pool bytes for the execution simulator.
    pub pool_bytes: u64,
    /// Base RNG seed.
    pub seed: u64,
}

fn scaled_disk(scale: f64) -> DeviceSpec {
    DeviceSpec::Disk(DiskParams::scsi_15k((DISK_BYTES * scale) as u64))
}

impl Scenario {
    /// TPC-H-like catalog on `n` identical disks (the paper's
    /// homogeneous 1-1-1-1 setup when `n = 4`).
    pub fn homogeneous_disks(n: usize, scale: f64) -> Self {
        Scenario {
            catalog: Catalog::tpch_like(scale),
            targets: (0..n)
                .map(|i| TargetConfig::single(format!("disk{i}"), scaled_disk(scale)))
                .collect(),
            scale,
            pool_bytes: (POOL_BYTES * scale) as u64,
            seed: 42,
        }
    }

    /// TPC-H-like catalog on `n` identical SSDs — the all-flash
    /// counterpart of [`homogeneous_disks`](Self::homogeneous_disks),
    /// used by the objective ablation's target-mix sweep.
    pub fn homogeneous_ssds(n: usize, scale: f64) -> Self {
        Scenario {
            catalog: Catalog::tpch_like(scale),
            targets: (0..n)
                .map(|i| {
                    TargetConfig::single(
                        format!("ssd{i}"),
                        DeviceSpec::Ssd(SsdParams::sata_gen1((SSD_BYTES * scale) as u64)),
                    )
                })
                .collect(),
            scale,
            pool_bytes: (POOL_BYTES * scale) as u64,
            seed: 42,
        }
    }

    /// The heterogeneous "3-1" configuration: a 3-disk RAID-0 target
    /// plus one standalone disk (§6.4).
    pub fn config_3_1(scale: f64) -> Self {
        Scenario {
            catalog: Catalog::tpch_like(scale),
            targets: vec![
                TargetConfig::raid0("raid3x", vec![scaled_disk(scale); 3], RAID_STRIPE),
                TargetConfig::single("disk3", scaled_disk(scale)),
            ],
            scale,
            pool_bytes: (POOL_BYTES * scale) as u64,
            seed: 42,
        }
    }

    /// The heterogeneous "2-1-1" configuration: a 2-disk RAID-0 target
    /// plus two standalone disks (§6.4).
    pub fn config_2_1_1(scale: f64) -> Self {
        Scenario {
            catalog: Catalog::tpch_like(scale),
            targets: vec![
                TargetConfig::raid0("raid2x", vec![scaled_disk(scale); 2], RAID_STRIPE),
                TargetConfig::single("disk2", scaled_disk(scale)),
                TargetConfig::single("disk3", scaled_disk(scale)),
            ],
            scale,
            pool_bytes: (POOL_BYTES * scale) as u64,
            seed: 42,
        }
    }

    /// Four disks plus an SSD of the given capacity fraction of the
    /// paper's 32 GB (§6.4's SSD experiments vary 32/10/6/4 GB).
    pub fn disks_plus_ssd(scale: f64, ssd_bytes_at_scale1: f64) -> Self {
        let mut targets: Vec<TargetConfig> = (0..4)
            .map(|i| TargetConfig::single(format!("disk{i}"), scaled_disk(scale)))
            .collect();
        targets.push(TargetConfig::single(
            "ssd",
            DeviceSpec::Ssd(SsdParams::sata_gen1((ssd_bytes_at_scale1 * scale) as u64)),
        ));
        Scenario {
            catalog: Catalog::tpch_like(scale),
            targets,
            scale,
            pool_bytes: (POOL_BYTES * scale) as u64,
            seed: 42,
        }
    }

    /// The consolidation scenario: TPC-H + TPC-C catalogs (40 objects)
    /// on four disks (§6.3). Pool is 1.5 GB-equivalent, as the paper
    /// used for OLTP.
    pub fn consolidation(scale: f64) -> Self {
        Scenario {
            catalog: Catalog::consolidation(scale),
            targets: (0..4)
                .map(|i| TargetConfig::single(format!("disk{i}"), scaled_disk(scale)))
                .collect(),
            scale,
            pool_bytes: (1.5e9 * scale) as u64,
            seed: 42,
        }
    }

    /// TPC-C-like catalog on four disks (standalone OLTP runs).
    pub fn oltp_disks(scale: f64) -> Self {
        Scenario {
            catalog: Catalog::tpcc_like(scale),
            targets: (0..4)
                .map(|i| TargetConfig::single(format!("disk{i}"), scaled_disk(scale)))
                .collect(),
            scale,
            pool_bytes: (1.5e9 * scale) as u64,
            seed: 42,
        }
    }

    /// Target capacities in bytes.
    pub fn capacities(&self) -> Vec<u64> {
        self.targets.iter().map(|t| t.capacity()).collect()
    }

    /// A fresh storage system for this scenario.
    pub fn storage(&self) -> StorageSystem {
        StorageSystem::new(self.targets.clone(), self.seed)
    }
}

/// Execution settings for validation runs.
#[derive(Clone, Debug)]
pub struct RunSettings {
    /// Capture a block trace.
    pub capture_trace: bool,
    /// Capture an op-log (per-request issue/complete timestamps, for
    /// the capture/replay pipeline).
    pub capture_oplog: bool,
    /// Hard stop for OLTP-only runs (simulated seconds).
    pub max_time: Option<f64>,
    /// Stop OLTP-only runs after this many transactions.
    pub txn_cap: Option<u64>,
    /// Warm-up excluded from tpm (simulated seconds).
    pub oltp_warmup: f64,
    /// RNG seed for request generation.
    pub seed: u64,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            capture_trace: false,
            capture_oplog: false,
            max_time: None,
            txn_cap: None,
            oltp_warmup: 0.0,
            seed: 7,
        }
    }
}

/// Runs `workloads` under the layout given by `rows` and reports.
///
/// Fails with [`WaslaError::Placement`] when the layout cannot be
/// realized on the scenario's targets (bad rows, over capacity).
pub fn run_layout(
    scenario: &Scenario,
    workloads: &[SqlWorkload],
    rows: &[Vec<f64>],
    settings: &RunSettings,
) -> Result<RunReport, WaslaError> {
    run_layout_observed(scenario, workloads, rows, settings).map(|o| o.report)
}

/// Like [`run_layout`], but also reports the device faults the active
/// fault plan injected into the run (empty without an active plan;
/// see [`wasla_simlib::fault`]).
pub fn run_layout_observed(
    scenario: &Scenario,
    workloads: &[SqlWorkload],
    rows: &[Vec<f64>],
    settings: &RunSettings,
) -> Result<RunOutcome, WaslaError> {
    let placement = Placement::build(
        rows,
        &scenario.catalog.sizes(),
        &scenario.capacities(),
        LVM_STRIPE,
    )?;
    let mut storage = scenario.storage();
    let config = RunConfig {
        seed: settings.seed,
        scale: scenario.scale,
        pool_bytes: scenario.pool_bytes,
        max_time: settings.max_time,
        txn_cap: settings.txn_cap,
        oltp_warmup: settings.oltp_warmup,
        capture_trace: settings.capture_trace,
        capture_oplog: settings.capture_oplog,
        ..RunConfig::default()
    };
    Ok(Engine::new(
        &scenario.catalog,
        workloads,
        &placement,
        &mut storage,
        config,
    )
    .run_observed()?)
}

/// Runs `workloads` under a [`Layout`].
pub fn run_with_layout(
    scenario: &Scenario,
    workloads: &[SqlWorkload],
    layout: &Layout,
    settings: &RunSettings,
) -> Result<RunReport, WaslaError> {
    run_layout(scenario, workloads, layout.rows(), settings)
}

/// Configuration of the advise pipeline.
#[derive(Clone, Debug)]
pub struct AdviseConfig {
    /// Calibration grid for target cost models.
    pub grid: CalibrationGrid,
    /// Advisor options (solver, regularization, extra starts).
    pub advisor: AdvisorOptions,
    /// Trace-fitting options.
    pub fit: FitConfig,
    /// Settings for the trace-collection run.
    pub trace_run: RunSettings,
    /// Administrator placement constraints (pins, forbids) applied to
    /// the assembled layout problem.
    pub constraints: Vec<AdminConstraint>,
}

impl AdviseConfig {
    /// Full-fidelity settings (paper-equivalent).
    pub fn full() -> Self {
        AdviseConfig {
            grid: CalibrationGrid::default(),
            advisor: AdvisorOptions {
                regularize: true,
                ..AdvisorOptions::default()
            },
            fit: FitConfig::default(),
            trace_run: RunSettings {
                capture_trace: true,
                ..RunSettings::default()
            },
            constraints: Vec::new(),
        }
    }

    /// Coarse, fast settings for tests and doctests.
    pub fn fast() -> Self {
        let mut cfg = Self::full();
        cfg.grid = CalibrationGrid::coarse();
        cfg.advisor.solver.pg.max_iters = 25;
        cfg.advisor.solver.temperatures = vec![0.15, 0.03];
        cfg
    }
}

/// One graceful degradation the pipeline worked around instead of
/// failing on. Notes are typed so callers (and tests) can react to
/// specific degradations; `Display` renders them for operators.
///
/// Outside fault-injection testing the pipeline produces no notes
/// other than [`DegradedNote::CacheQuarantined`], which fires whenever
/// a persisted session cache arrives corrupt.
#[derive(Clone, Debug, PartialEq)]
pub enum DegradedNote {
    /// The captured block trace arrived damaged; the valid prefix was
    /// fitted and the torn tail discarded.
    TraceSalvaged {
        /// Records in the fitted prefix.
        kept: usize,
        /// Damaged-tail records discarded.
        dropped: usize,
    },
    /// A storage target answered slowly during the trace run.
    DeviceDegraded {
        /// The target's name.
        target: String,
        /// Service-time multiplier observed.
        factor: f64,
    },
    /// A storage target failed during the trace run; it was modeled as
    /// pathologically slow so the advisor steers load away.
    DeviceFailed {
        /// The target's name.
        target: String,
    },
    /// Calibration measurements for a target's member device came back
    /// degraded; its cost model overestimates service times.
    CalibrationDegraded {
        /// The target's name.
        device: String,
        /// Service-time multiplier baked into the model.
        factor: f64,
    },
    /// The NLP solve ran under an exhausted budget or fell down the
    /// fallback chain; the layout is feasible but possibly weaker.
    SolverDegraded {
        /// How the solve stage arrived at its layout.
        quality: SolveQuality,
    },
    /// A persisted session-cache file was corrupt or version-skewed;
    /// it was quarantined and the cache rebuilt cold.
    CacheQuarantined {
        /// Where the damaged file was moved.
        path: String,
    },
    /// Batch admission control browned this request out: it crossed
    /// the policy's soft queue bound, so the solve ran at the cheapest
    /// rung (rate-greedy) instead of being rejected outright.
    Shed {
        /// The request's position in the admission order.
        position: usize,
        /// The soft bound it crossed.
        threshold: usize,
    },
}

impl std::fmt::Display for DegradedNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedNote::TraceSalvaged { kept, dropped } => {
                write!(
                    f,
                    "trace tail damaged: fitted {kept} records, dropped {dropped}"
                )
            }
            DegradedNote::DeviceDegraded { target, factor } => {
                write!(f, "target {target} degraded ({factor:.1}x service time)")
            }
            DegradedNote::DeviceFailed { target } => write!(f, "target {target} failed"),
            DegradedNote::CalibrationDegraded { device, factor } => {
                write!(f, "calibration of {device} degraded ({factor:.1}x)")
            }
            DegradedNote::SolverDegraded { quality } => {
                write!(f, "solver budget exhausted ({quality:?})")
            }
            DegradedNote::CacheQuarantined { path } => {
                write!(f, "corrupt session cache quarantined to {path}")
            }
            DegradedNote::Shed {
                position,
                threshold,
            } => {
                write!(
                    f,
                    "browned out at admission position {position} (soft bound {threshold}): cheapest-rung solve"
                )
            }
        }
    }
}

/// Everything the advise pipeline produced.
pub struct AdviseOutcome {
    /// The SEE trace-collection run (also the SEE baseline numbers).
    pub baseline_run: RunReport,
    /// The fitted per-object workload descriptions.
    pub fitted: WorkloadSet,
    /// The assembled layout problem (with calibrated models).
    pub problem: LayoutProblem,
    /// The advisor's recommendation.
    pub recommendation: Recommendation,
    /// Degradations the pipeline worked around (empty on a clean run).
    pub degraded: Vec<DegradedNote>,
}

impl AdviseOutcome {
    /// True when any stage degraded gracefully instead of failing.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// Assembles a [`LayoutProblem`] from a scenario, fitted workloads,
/// and already-built target cost models (the session layer supplies
/// models from its calibration cache; [`build_problem`] calibrates
/// fresh ones).
pub fn assemble_problem(
    scenario: &Scenario,
    fitted: WorkloadSet,
    models: Vec<TargetCostModel>,
    constraints: Vec<AdminConstraint>,
) -> LayoutProblem {
    // Reserve allocation slack on each target: striped placements round
    // every (object, target) extent up to whole stripes, so a layout
    // that packs a target to 100% of its fractional capacity may not be
    // implementable. One stripe per object bounds the rounding.
    let slack = scenario.catalog.len() as u64 * LVM_STRIPE;
    LayoutProblem {
        kinds: scenario.catalog.objects().iter().map(|o| o.kind).collect(),
        workloads: fitted,
        capacities: scenario
            .capacities()
            .into_iter()
            .map(|c| c.saturating_sub(slack).max(c / 2))
            .collect(),
        target_names: scenario.targets.iter().map(|t| t.name.clone()).collect(),
        models: models
            .into_iter()
            .map(|m| Arc::new(m) as Arc<dyn wasla_model::CostModel>)
            .collect(),
        stripe_size: LVM_STRIPE as f64,
        constraints,
    }
}

/// Builds a [`LayoutProblem`] from a scenario and fitted workloads,
/// calibrating target cost models.
pub fn build_problem(
    scenario: &Scenario,
    fitted: WorkloadSet,
    grid: &CalibrationGrid,
) -> Result<LayoutProblem, WaslaError> {
    let models = TargetCostModel::for_targets(&scenario.targets, grid, scenario.seed)?;
    Ok(assemble_problem(scenario, fitted, models, Vec::new()))
}

/// The full trace → fit → calibrate → advise pipeline. The trace is
/// collected under SEE (the natural "operational" baseline the paper
/// traces against).
///
/// This is the cold path: each call runs on a fresh
/// [`AdvisorSession`], so nothing is reused across calls. Hold a
/// session yourself to share calibration tables and workload fits.
pub fn advise(
    scenario: &Scenario,
    workloads: &[SqlWorkload],
    config: &AdviseConfig,
) -> Result<AdviseOutcome, WaslaError> {
    AdvisorSession::new().advise(scenario, workloads, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasla_workload::SqlWorkload;

    #[test]
    fn scenario_shapes() {
        let s = Scenario::homogeneous_disks(4, 0.01);
        assert_eq!(s.targets.len(), 4);
        assert_eq!(s.catalog.len(), 20);
        let h = Scenario::config_3_1(0.01);
        assert_eq!(h.targets.len(), 2);
        assert_eq!(h.targets[0].width(), 3);
        let c = Scenario::consolidation(0.01);
        assert_eq!(c.catalog.len(), 40);
        let ssd = Scenario::disks_plus_ssd(0.01, SSD_BYTES);
        assert_eq!(ssd.targets.len(), 5);
    }

    #[test]
    fn capacities_scale_with_scenario() {
        let small = Scenario::homogeneous_disks(4, 0.01);
        let large = Scenario::homogeneous_disks(4, 0.1);
        let cs = small.capacities()[0] as f64;
        let cl = large.capacities()[0] as f64;
        assert!((cl / cs - 10.0).abs() < 0.01, "ratio {}", cl / cs);
        // Data-to-capacity pressure is scale-invariant.
        let ps = small.catalog.total_size() as f64 / (4.0 * cs);
        let pl = large.catalog.total_size() as f64 / (4.0 * cl);
        assert!((ps - pl).abs() < 0.01);
    }

    #[test]
    fn build_problem_reserves_allocation_slack() {
        let scenario = Scenario::homogeneous_disks(4, 0.05);
        let workloads = [SqlWorkload::olap1_21(3)];
        let outcome = advise(&scenario, &workloads, &AdviseConfig::fast()).expect("advise runs");
        for (advisor_cap, raw_cap) in outcome.problem.capacities.iter().zip(scenario.capacities()) {
            assert!(*advisor_cap < raw_cap, "no slack reserved");
            assert!(*advisor_cap >= raw_cap / 2);
        }
    }

    #[test]
    fn see_run_and_fit_produce_consistent_problem() {
        let scenario = Scenario::homogeneous_disks(4, 0.01);
        let workloads = [SqlWorkload::olap1_21(3)];
        let outcome = advise(&scenario, &workloads, &AdviseConfig::fast()).expect("advise runs");
        assert_eq!(outcome.baseline_run.queries_completed, 21);
        assert_eq!(outcome.fitted.len(), 20);
        outcome.problem.validate().unwrap();
        let layout = outcome.recommendation.final_layout();
        assert!(layout.is_regular());
        assert!(layout.is_valid(
            &outcome.problem.workloads.sizes,
            &outcome.problem.capacities
        ));
    }

    #[test]
    fn optimized_layout_not_slower_than_see() {
        let scenario = Scenario::homogeneous_disks(4, 0.015);
        let workloads = [SqlWorkload::olap1_21(5)];
        let outcome = advise(&scenario, &workloads, &AdviseConfig::fast()).expect("advise runs");
        let optimized = run_with_layout(
            &scenario,
            &workloads,
            outcome.recommendation.final_layout(),
            &RunSettings::default(),
        )
        .expect("recommended layout is implementable");
        let speedup = optimized.speedup_vs(&outcome.baseline_run);
        assert!(
            speedup > 0.95,
            "optimized should not regress: speedup {speedup:.3}"
        );
    }

    #[test]
    fn run_layout_rejects_unimplementable_layouts() {
        let scenario = Scenario::homogeneous_disks(4, 0.01);
        let workloads = [SqlWorkload::olap1_21(3)];
        // Rows that don't sum to one violate the integrity constraint.
        let rows = vec![vec![0.5, 0.0, 0.0, 0.0]; scenario.catalog.len()];
        let err = run_layout(&scenario, &workloads, &rows, &RunSettings::default()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::WaslaError::Placement(wasla_exec::PlacementError::BadRow { .. })
        ));
    }
}
