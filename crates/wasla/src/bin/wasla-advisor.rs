//! `wasla-advisor` — the standalone layout advisor the paper proposes
//! (§1: "could be implemented as a standalone database storage layout
//! advisor").
//!
//! ```text
//! wasla-advisor calibrate --device scsi15k --capacity-gb 18.4 --out disk.model.json
//! wasla-advisor fit --trace trace.json --objects objects.json [--out workloads.json]
//! wasla-advisor advise --workloads w.json --targets t.json [--models m.json,...]
//!                      [--regular] [--pin OBJ=TARGET]... [--forbid OBJ=TARGET]...
//!                      [--out layout.json]
//! wasla-advisor demo  [--scale 0.05]
//! ```
//!
//! * `calibrate` builds a tabulated cost model for a device type and
//!   writes it as JSON (models calibrated against real hardware can be
//!   substituted — the advisor only sees the table).
//! * `advise` consumes a `WorkloadSet` JSON (per-object names, sizes,
//!   and Rome-style descriptions — produce one with `wasla-trace` or
//!   the analytic estimator) plus a target list, and prints the
//!   recommended layout.
//! * `demo` runs the built-in TPC-H-like scenario end-to-end.

use std::sync::Arc;
use wasla::core::report::{render_layout, render_stages};
use wasla::core::{recommend, AdminConstraint, AdvisorOptions, LayoutProblem};
use wasla::model::{calibrate_device, CalibrationGrid, TableModel, TargetCostModel};
use wasla::pipeline::{self, AdviseConfig, RunSettings, Scenario, LVM_STRIPE};
use wasla::storage::{DeviceSpec, DiskParams, SsdParams, TargetConfig};
use wasla::workload::{SqlWorkload, WorkloadSet};

fn usage() -> ! {
    eprintln!(
        "usage:\n  wasla-advisor calibrate --device <scsi15k|scsi10k|nearline7200|ssd|ssd2> \
         --capacity-gb <G> [--out FILE]\n  wasla-advisor fit --trace FILE \
         --objects FILE [--window-s S] [--out FILE]\n  wasla-advisor advise \
         --workloads FILE --targets FILE [--models FILE,...] [--regular] \
         [--pin OBJ=T]... [--forbid OBJ=T]... [--out FILE]\n  \
         wasla-advisor demo [--scale S]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("calibrate") => calibrate(&args[1..]),
        Some("fit") => fit(&args[1..]),
        Some("advise") => advise(&args[1..]),
        Some("demo") => demo(&args[1..]),
        _ => usage(),
    }
}

/// An object inventory entry for the `fit` subcommand.
struct ObjectEntry {
    name: String,
    size: u64,
}

wasla::simlib::impl_json_struct!(ObjectEntry { name, size });

fn fit(args: &[String]) {
    let trace_path = flag_value(args, "--trace").unwrap_or_else(|| usage());
    let objects_path = flag_value(args, "--objects").unwrap_or_else(|| usage());
    let trace: wasla::storage::Trace = wasla::simlib::json::from_str(
        &std::fs::read_to_string(trace_path).expect("read trace file"),
    )
    .expect("parse Trace JSON");
    let objects: Vec<ObjectEntry> = wasla::simlib::json::from_str(
        &std::fs::read_to_string(objects_path).expect("read objects file"),
    )
    .expect("parse objects JSON ([{\"name\":..., \"size\":...}])");
    let names: Vec<String> = objects.iter().map(|o| o.name.clone()).collect();
    let sizes: Vec<u64> = objects.iter().map(|o| o.size).collect();
    let mut fit_config = wasla::trace::FitConfig::default();
    if let Some(w) = flag_value(args, "--window-s").and_then(|v| v.parse().ok()) {
        fit_config.window_s = w;
    }
    let set = wasla::trace::fit_workloads(&trace, &names, &sizes, &fit_config);
    set.validate().expect("fitted set is consistent");
    let json = wasla::simlib::json::to_string_pretty(&set);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &json).expect("write workloads file");
            eprintln!(
                "fitted {} objects from {} trace records → {path}",
                set.len(),
                trace.len()
            );
        }
        None => println!("{json}"),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn calibrate(args: &[String]) {
    let device = flag_value(args, "--device").unwrap_or_else(|| usage());
    let capacity_gb: f64 = flag_value(args, "--capacity-gb")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let capacity = (capacity_gb * 1e9) as u64;
    let spec = match device {
        "scsi15k" => DeviceSpec::Disk(DiskParams::scsi_15k(capacity)),
        "scsi10k" => DeviceSpec::Disk(DiskParams::scsi_10k(capacity)),
        "nearline7200" => DeviceSpec::Disk(DiskParams::nearline_7200(capacity)),
        "ssd" => DeviceSpec::Ssd(SsdParams::sata_gen1(capacity)),
        "ssd2" => DeviceSpec::Ssd(SsdParams::sata_gen2(capacity)),
        other => {
            eprintln!("unknown device type {other}");
            std::process::exit(2);
        }
    };
    eprintln!("calibrating {device} ({capacity_gb} GB)...");
    let model = calibrate_device(&spec, &CalibrationGrid::default(), 7);
    let json = model.to_json();
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &json).expect("write model file");
            eprintln!("model written to {path}");
        }
        None => println!("{json}"),
    }
}

fn parse_constraint(s: &str) -> (String, usize) {
    let (obj, t) = s.split_once('=').unwrap_or_else(|| {
        eprintln!("constraint must look like OBJECT=TARGET_INDEX: {s}");
        std::process::exit(2);
    });
    let target: usize = t.parse().unwrap_or_else(|_| {
        eprintln!("target index must be an integer: {s}");
        std::process::exit(2);
    });
    (obj.to_string(), target)
}

fn advise(args: &[String]) {
    let workloads_path = flag_value(args, "--workloads").unwrap_or_else(|| usage());
    let targets_path = flag_value(args, "--targets").unwrap_or_else(|| usage());
    let workloads: WorkloadSet = wasla::simlib::json::from_str(
        &std::fs::read_to_string(workloads_path).expect("read workloads file"),
    )
    .expect("parse WorkloadSet JSON");
    let targets: Vec<TargetConfig> = wasla::simlib::json::from_str(
        &std::fs::read_to_string(targets_path).expect("read targets file"),
    )
    .expect("parse Vec<TargetConfig> JSON");

    // Cost models: either provided per target, or calibrated here.
    let models: Vec<Arc<dyn wasla::model::CostModel>> = match flag_value(args, "--models") {
        Some(list) => {
            let paths: Vec<&str> = list.split(',').collect();
            assert_eq!(
                paths.len(),
                targets.len(),
                "--models needs one file per target"
            );
            paths
                .iter()
                .zip(&targets)
                .map(|(path, t)| {
                    let table = TableModel::from_json(
                        &std::fs::read_to_string(path).expect("read model file"),
                    )
                    .expect("parse model JSON");
                    Arc::new(TargetCostModel {
                        member: table,
                        width: t.width(),
                        stripe_unit: t.stripe_unit,
                        parallelism: t.members[0].build().parallelism(),
                        name: t.name.clone(),
                    }) as Arc<dyn wasla::model::CostModel>
                })
                .collect()
        }
        None => {
            eprintln!("calibrating cost models for {} targets...", targets.len());
            TargetCostModel::for_targets(&targets, &CalibrationGrid::default(), 7)
                .into_iter()
                .map(|m| Arc::new(m) as Arc<dyn wasla::model::CostModel>)
                .collect()
        }
    };

    let expect_id = |name: &str| -> usize {
        workloads
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| {
                eprintln!("no object named {name} in the workload set");
                std::process::exit(2);
            })
    };
    let mut constraints = Vec::new();
    for c in flag_values(args, "--pin") {
        let (obj, target) = parse_constraint(c);
        constraints.push(AdminConstraint::PinTo {
            object: expect_id(&obj),
            target,
        });
    }
    for c in flag_values(args, "--forbid") {
        let (obj, target) = parse_constraint(c);
        constraints.push(AdminConstraint::Forbid {
            object: expect_id(&obj),
            target,
        });
    }

    let problem = LayoutProblem {
        kinds: vec![wasla::workload::ObjectKind::Table; workloads.len()],
        capacities: targets.iter().map(|t| t.capacity()).collect(),
        target_names: targets.iter().map(|t| t.name.clone()).collect(),
        models,
        workloads,
        stripe_size: LVM_STRIPE as f64,
        constraints,
    };
    let options = AdvisorOptions {
        regularize: has_flag(args, "--regular"),
        ..AdvisorOptions::default()
    };
    match recommend(&problem, &options) {
        Ok(rec) => {
            println!("{}", render_stages(&problem, &rec.stages));
            println!(
                "{}",
                render_layout(&problem, rec.final_layout(), problem.n())
            );
            println!(
                "advisor time: {:.2}s (solver {:.2}s, regularization {:.2}s){}",
                rec.timings.total_s(),
                rec.timings.solver_s,
                rec.timings.regularize_s,
                if rec.fell_back_to_see {
                    " — SEE is predicted optimal for this workload"
                } else {
                    ""
                }
            );
            if let Some(path) = flag_value(args, "--out") {
                let json = wasla::simlib::json::to_string_pretty(rec.final_layout());
                std::fs::write(path, json).expect("write layout file");
                eprintln!("layout written to {path}");
            }
        }
        Err(e) => {
            eprintln!("advise failed: {e}");
            std::process::exit(1);
        }
    }
}

fn demo(args: &[String]) {
    let scale: f64 = flag_value(args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let scenario = Scenario::homogeneous_disks(4, scale);
    let workloads = [SqlWorkload::olap1_63(7)];
    eprintln!("running the built-in TPC-H-like demo at scale {scale}...");
    let outcome = pipeline::advise(&scenario, &workloads, &AdviseConfig::full());
    let rec = outcome.recommendation.expect("demo scenario is feasible");
    println!("{}", render_stages(&outcome.problem, &rec.stages));
    println!("{}", render_layout(&outcome.problem, rec.final_layout(), 8));
    let optimized = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec.final_layout(),
        &RunSettings::default(),
    );
    println!(
        "SEE {:.0}s → optimized {:.0}s ({:.2}x)",
        outcome.baseline_run.elapsed.as_secs(),
        optimized.elapsed.as_secs(),
        optimized.speedup_vs(&outcome.baseline_run)
    );
}
