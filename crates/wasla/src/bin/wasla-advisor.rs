//! `wasla-advisor` — the standalone layout advisor the paper proposes
//! (§1: "could be implemented as a standalone database storage layout
//! advisor").
//!
//! ```text
//! wasla-advisor calibrate --device scsi15k --capacity-gb 18.4 --out disk.model.json
//! wasla-advisor fit --trace trace.json --objects objects.json [--out workloads.json]
//! wasla-advisor fit --oplog oplog.tsv --objects objects.json [--materialized]
//! wasla-advisor advise --workloads w.json --targets t.json [--models m.json,...]
//!                      [--objective minmax|provision-cost|wear-blend]
//!                      [--grad analytic|fd] [--tier-spec tiers.json]
//!                      [--regular] [--pin OBJ=TARGET]... [--forbid OBJ=TARGET]...
//!                      [--out layout.json]
//! wasla-advisor capture [--scenario tpch|tpcc] [--scale S] [--max-time T] --out-dir DIR
//! wasla-advisor replay  --oplog oplog.tsv [--scenario tpch|tpcc] [--scale S]
//!                       [--objective NAME] [--grad NAME] [--coarse] [--cache-dir DIR]
//! wasla-advisor serve   --oplog oplog.tsv --budget BYTES_PER_TICK
//!                       [--pane-s S] [--panes N] [--threshold X] [--alpha A]
//!                       [--fail TICK:TARGET]... [--grad NAME] [--cache-dir DIR] [--json]
//! wasla-advisor stress [--tenants N] [--targets M] [--batch B] [--seed S]
//!                      [--queue-cap N] [--brownout N] [--max-attempts K] ...
//! wasla-advisor demo  [--scale 0.05] [--objective NAME] [--grad NAME] [--cache-dir DIR]
//! ```
//!
//! * `calibrate` builds a tabulated cost model for a device type and
//!   writes it as JSON (models calibrated against real hardware can be
//!   substituted — the advisor only sees the table).
//! * `advise` consumes a `WorkloadSet` JSON (per-object names, sizes,
//!   and Rome-style descriptions — produce one with `wasla-trace` or
//!   the analytic estimator) plus a target list, and prints the
//!   recommended layout. `--objective` picks the layout objective
//!   (`minmax` is the paper's default; `provision-cost` weights each
//!   target by its tier's $/IOPS; `wear-blend` penalizes write traffic
//!   on wear-limited tiers) and `--tier-spec` overrides the per-target
//!   tier descriptors from a JSON array of `Tier` objects (one per
//!   target, in target order). `--grad` selects how the NLP solver's
//!   gradients are computed: `analytic` (default) differentiates the
//!   cost model exactly in one pass; `fd` is the original structured
//!   finite-difference scheme, kept as the equivalence oracle.
//! * `capture` runs a built-in scenario under the SEE baseline with
//!   op-log capture on and writes `oplog.tsv` (the compact
//!   line-oriented record format) plus `objects.json` to `--out-dir`.
//! * `replay` feeds a captured op-log through the streamed advise
//!   pipeline and replays it against the SEE baseline and the advised
//!   layout, printing a predicted-vs-observed report.
//! * `serve` runs the online re-layout control loop over a captured
//!   op-log stream: pane-aligned sliding windows, cheap drift probes,
//!   and budgeted incremental migration (`--budget` voluntary bytes
//!   per tick; evacuations off targets failed via `--fail` are always
//!   admitted). With `--cache-dir` the controller checkpoint persists
//!   next to the stage caches, so a restarted daemon resumes where it
//!   left off.
//! * `stress` drives the fleet-scale multi-tenant stress scenario:
//!   thousands of synthetic tenants (seeded, zipf-skewed — see
//!   `wasla::workload::synth`) advised in batches under an explicit
//!   admission/deadline/backoff policy. The deterministic report (tick
//!   stats + per-slot decision log) goes to stdout — byte-identical at
//!   any `WASLA_THREADS` — and wall-clock throughput goes to stderr.
//! * `demo` runs the built-in TPC-H-like scenario end-to-end. With
//!   `--cache-dir`, the advisor session persists its calibration and
//!   fit caches there (crash-safe, versioned, checksummed): a rerun
//!   starts warm, a corrupt cache file is quarantined and rebuilt, and
//!   a quarantine that cannot be written maps to the I/O exit code.
//!
//! Every failure surfaces as a [`WaslaError`] with a stable exit
//! code:
//!
//! | exit | class | examples |
//! |------|-------|----------|
//! | `2`  | usage | unknown subcommand or flag value, unknown `--objective` or `--grad` name, `--tier-spec`/`--models` length mismatch |
//! | `3`  | file I/O | unreadable trace/workload/model file, unwritable `--out` |
//! | `4`  | malformed JSON | corrupt model/workload/tier files |
//! | `5`  | overloaded | a batch request shed by admission control (`--queue-cap`) |
//! | `1`  | pipeline | infeasible problems, unmodelable targets, bad traces |

use std::sync::Arc;
use wasla::core::report::{render_layout, render_stages};
use wasla::core::{recommend, AdminConstraint, AdvisorOptions, LayoutProblem};
use wasla::error::WaslaError;
use wasla::model::{calibrate_device, CalibrationGrid, TableModel, TargetCostModel};
use wasla::pipeline::{self, AdviseConfig, RunSettings, Scenario, LVM_STRIPE};
use wasla::simlib::json::FromJson;
use wasla::storage::{DeviceSpec, DiskParams, SsdParams, TargetConfig};
use wasla::workload::{SqlWorkload, WorkloadSet};

const USAGE: &str = "usage:
  wasla-advisor calibrate --device <scsi15k|scsi10k|nearline7200|ssd|ssd2> \
--capacity-gb <G> [--out FILE]
  wasla-advisor fit --trace FILE --objects FILE [--window-s S] [--out FILE]
  wasla-advisor fit --oplog FILE --objects FILE [--materialized] [--window-s S] [--out FILE]
  wasla-advisor advise --workloads FILE --targets FILE [--models FILE,...] \
[--objective minmax|provision-cost|wear-blend] [--grad analytic|fd] [--tier-spec FILE] \
[--regular] [--pin OBJ=T]... [--forbid OBJ=T]... [--out FILE]
  wasla-advisor capture [--scenario tpch|tpcc] [--scale S] [--max-time T] --out-dir DIR
  wasla-advisor replay --oplog FILE [--scenario tpch|tpcc] [--scale S] \
[--objective NAME] [--grad NAME] [--coarse] [--cache-dir DIR]
  wasla-advisor serve --oplog FILE --budget BYTES_PER_TICK [--scenario tpch|tpcc] \
[--scale S] [--pane-s S] [--panes N] [--threshold X] [--alpha A] [--carry-cap N] \
[--fail TICK:TARGET]... [--objective NAME] [--grad NAME] [--coarse] [--cache-dir DIR] [--json]
  wasla-advisor stress [--tenants N] [--targets M] [--batch B] [--seed S] [--zipf T] \
[--objects-min N] [--objects-max N] [--size-mib-min X] [--size-mib-max X] \
[--write-frac F] [--burstiness F] [--interactive-share F] [--batch-share F] \
[--queue-cap N] [--brownout N] [--max-attempts K] [--backoff-base N] [--backoff-cap N]
  wasla-advisor demo [--scale S] [--objective NAME] [--grad NAME] [--cache-dir DIR]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("calibrate") => calibrate(&args[1..]),
        Some("fit") => fit(&args[1..]),
        Some("advise") => advise(&args[1..]),
        Some("capture") => capture(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("stress") => stress(&args[1..]),
        Some("demo") => demo(&args[1..]),
        Some(other) => Err(WaslaError::Usage(format!("unknown subcommand {other:?}"))),
        None => Err(WaslaError::Usage("missing subcommand".to_string())),
    };
    if let Err(err) = result {
        eprintln!("wasla-advisor: {err}");
        if matches!(err, WaslaError::Usage(_)) {
            eprintln!("{USAGE}");
        }
        std::process::exit(err.exit_code());
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn require_flag<'a>(args: &'a [String], name: &str) -> Result<&'a str, WaslaError> {
    flag_value(args, name).ok_or_else(|| WaslaError::Usage(format!("missing {name} FILE")))
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The layout objective named by `--objective`, defaulting to the
/// paper's min-max. Unknown names are usage errors (exit code 2).
fn objective_from_flags(args: &[String]) -> Result<wasla::core::ObjectiveKind, WaslaError> {
    match flag_value(args, "--objective") {
        Some(name) => pipeline::parse_objective(name),
        None => Ok(wasla::core::ObjectiveKind::MinMax),
    }
}

/// The gradient path named by `--grad`, defaulting to the analytic
/// chain rule. Unknown names are usage errors (exit code 2).
fn grad_from_flags(args: &[String]) -> Result<wasla::core::GradPath, WaslaError> {
    match flag_value(args, "--grad") {
        Some(name) => pipeline::parse_grad_path(name),
        None => Ok(wasla::core::GradPath::default()),
    }
}

fn read_file(path: &str) -> Result<String, WaslaError> {
    std::fs::read_to_string(path).map_err(|e| WaslaError::io(path, &e))
}

fn write_file(path: &str, contents: &str) -> Result<(), WaslaError> {
    std::fs::write(path, contents).map_err(|e| WaslaError::io(path, &e))
}

/// Reads and decodes a JSON file, tagging parse errors with the path.
fn load_json<T: FromJson>(path: &str, what: &str) -> Result<T, WaslaError> {
    wasla::simlib::json::from_str(&read_file(path)?).map_err(|e| {
        WaslaError::Json(wasla::simlib::json::JsonError::new(format!(
            "{path}: {what}: {e}"
        )))
    })
}

/// An object inventory entry for the `fit` subcommand.
struct ObjectEntry {
    name: String,
    size: u64,
}

wasla::simlib::impl_json_struct!(ObjectEntry { name, size });

fn fit(args: &[String]) -> Result<(), WaslaError> {
    let objects_path = require_flag(args, "--objects")?;
    let objects: Vec<ObjectEntry> =
        load_json(objects_path, "objects ([{\"name\":..., \"size\":...}])")?;
    let names: Vec<String> = objects.iter().map(|o| o.name.clone()).collect();
    let sizes: Vec<u64> = objects.iter().map(|o| o.size).collect();
    let mut fit_config = wasla::trace::FitConfig::default();
    if let Some(w) = flag_value(args, "--window-s").and_then(|v| v.parse().ok()) {
        fit_config.window_s = w;
    }
    let (set, records) = match (flag_value(args, "--trace"), flag_value(args, "--oplog")) {
        (Some(trace_path), None) => {
            let trace: wasla::storage::Trace = load_json(trace_path, "Trace")?;
            let set = wasla::trace::fit_workloads(&trace, &names, &sizes, &fit_config)?;
            (set, trace.len())
        }
        (None, Some(oplog_path)) => {
            let log = wasla::trace::oplog::OpLog::parse_tsv(&read_file(oplog_path)?)?;
            // The streamed path is the default; --materialized is the
            // cross-check (both produce bit-identical fits).
            let set = if has_flag(args, "--materialized") {
                wasla::trace::fit_workloads(&log.to_trace(), &names, &sizes, &fit_config)?
            } else {
                wasla::trace::oplog::fit_oplog_streamed(
                    &log,
                    &names,
                    &sizes,
                    &fit_config,
                    wasla::trace::oplog::DEFAULT_CHUNK,
                )?
            };
            (set, log.len())
        }
        _ => {
            return Err(WaslaError::Usage(
                "fit takes exactly one of --trace FILE or --oplog FILE".to_string(),
            ));
        }
    };
    set.validate()
        .map_err(|e| WaslaError::Internal(format!("fitted set is inconsistent: {e}")))?;
    let json = wasla::simlib::json::to_string_pretty(&set);
    match flag_value(args, "--out") {
        Some(path) => {
            write_file(path, &json)?;
            eprintln!(
                "fitted {} objects from {records} records → {path}",
                set.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// The built-in scenario a `--scenario` flag names: the paper's
/// TPC-H-like OLAP setup or the TPC-C-like OLTP setup, each with its
/// standard workload mix and capture settings (OLTP runs are
/// open-ended, so they get a hard time cap).
fn scenario_from_flags(
    args: &[String],
) -> Result<(Scenario, Vec<SqlWorkload>, RunSettings), WaslaError> {
    let scale: f64 = flag_value(args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let name = flag_value(args, "--scenario").unwrap_or("tpch");
    match name {
        "tpch" => Ok((
            Scenario::homogeneous_disks(4, scale),
            vec![SqlWorkload::olap1_21(3)],
            RunSettings::default(),
        )),
        "tpcc" => {
            let max_time: f64 = flag_value(args, "--max-time")
                .and_then(|v| v.parse().ok())
                .unwrap_or(60.0);
            Ok((
                Scenario::oltp_disks(scale),
                vec![SqlWorkload::oltp()],
                RunSettings {
                    max_time: Some(max_time),
                    ..RunSettings::default()
                },
            ))
        }
        other => Err(WaslaError::Usage(format!(
            "unknown --scenario {other:?} (tpch or tpcc)"
        ))),
    }
}

fn capture(args: &[String]) -> Result<(), WaslaError> {
    let out_dir = require_flag(args, "--out-dir")?;
    let (scenario, workloads, settings) = scenario_from_flags(args)?;
    let outcome = wasla::replay::capture_oplog(&scenario, &workloads, &settings)?;
    std::fs::create_dir_all(out_dir).map_err(|e| WaslaError::io(out_dir, &e))?;
    let oplog_path = format!("{out_dir}/oplog.tsv");
    write_file(&oplog_path, &outcome.log.to_tsv())?;
    let objects: Vec<ObjectEntry> = scenario
        .catalog
        .names()
        .into_iter()
        .zip(scenario.catalog.sizes())
        .map(|(name, size)| ObjectEntry { name, size })
        .collect();
    write_file(
        &format!("{out_dir}/objects.json"),
        &wasla::simlib::json::to_string_pretty(&objects),
    )?;
    eprintln!(
        "captured {} ops over {:.2}s under SEE → {oplog_path}",
        outcome.log.len(),
        outcome.log.span().as_secs()
    );
    Ok(())
}

fn replay(args: &[String]) -> Result<(), WaslaError> {
    let oplog_path = require_flag(args, "--oplog")?;
    let (scenario, _workloads, _settings) = scenario_from_flags(args)?;
    let log = wasla::trace::oplog::OpLog::parse_tsv(&read_file(oplog_path)?)?;
    let mut config = if has_flag(args, "--coarse") {
        AdviseConfig::fast()
    } else {
        AdviseConfig::full()
    };
    config.advisor.solver.objective = objective_from_flags(args)?;
    config.advisor.solver.grad = grad_from_flags(args)?;
    let validation = match flag_value(args, "--cache-dir") {
        Some(dir) => {
            let (mut service, notes) = wasla::Service::open(0x5eed, dir)?;
            for note in &notes {
                eprintln!("cache: {note}");
            }
            let v =
                wasla::replay::replay_validate(service.session_mut(), &log, &scenario, &config)?;
            service.persist()?;
            v
        }
        None => {
            let mut session = wasla::AdvisorSession::new();
            wasla::replay::replay_validate(&mut session, &log, &scenario, &config)?
        }
    };
    print!(
        "{}",
        wasla::replay::render_validation(&validation, &scenario)
    );
    Ok(())
}

/// Parses `--fail TICK:TARGET` occurrences into injected failures.
fn failures_from_flags(args: &[String]) -> Result<Vec<wasla::daemon::TargetFailure>, WaslaError> {
    flag_values(args, "--fail")
        .into_iter()
        .map(|spec| {
            let bad = || WaslaError::Usage(format!("--fail expects TICK:TARGET, got {spec:?}"));
            let (tick, target) = spec.split_once(':').ok_or_else(bad)?;
            Ok(wasla::daemon::TargetFailure {
                tick: tick.parse().map_err(|_| bad())?,
                target: target.parse().map_err(|_| bad())?,
            })
        })
        .collect()
}

fn serve(args: &[String]) -> Result<(), WaslaError> {
    let oplog_path = require_flag(args, "--oplog")?;
    let budget: u64 = require_flag(args, "--budget")?
        .parse()
        .map_err(|_| WaslaError::Usage("--budget expects a byte count".to_string()))?;
    let (scenario, _workloads, _settings) = scenario_from_flags(args)?;
    let log = wasla::trace::oplog::OpLog::parse_tsv(&read_file(oplog_path)?)?;
    let mut config = if has_flag(args, "--coarse") {
        AdviseConfig::fast()
    } else {
        AdviseConfig::full()
    };
    config.advisor.solver.objective = objective_from_flags(args)?;
    config.advisor.solver.grad = grad_from_flags(args)?;
    let numeric = |name: &str, default: f64| -> Result<f64, WaslaError> {
        match flag_value(args, name) {
            Some(v) => v
                .parse()
                .map_err(|_| WaslaError::Usage(format!("{name} expects a number, got {v:?}"))),
            None => Ok(default),
        }
    };
    let defaults = wasla::daemon::DaemonConfig::default();
    let daemon = wasla::daemon::DaemonConfig {
        window: wasla::trace::oplog::WindowPlan {
            pane_s: numeric("--pane-s", defaults.window.pane_s)?,
            panes_per_window: numeric("--panes", defaults.window.panes_per_window as f64)? as usize,
        },
        drift_threshold: numeric("--threshold", defaults.drift_threshold)?,
        budget_bytes_per_tick: budget,
        alpha: numeric("--alpha", defaults.alpha)?,
        carry_cap_ticks: numeric("--carry-cap", defaults.carry_cap_ticks as f64)? as u64,
        target_failures: failures_from_flags(args)?,
    };
    let mut service = match flag_value(args, "--cache-dir") {
        Some(dir) => {
            let (service, notes) = wasla::Service::open(scenario.seed, dir)?;
            for note in &notes {
                eprintln!("cache: {note}");
            }
            service
        }
        None => wasla::Service::new(scenario.seed),
    };
    let report = service.run_loop(&log, &scenario, &config, &daemon)?;
    service.persist()?;
    for note in &report.degraded {
        eprintln!("degraded: {note}");
    }
    if has_flag(args, "--json") {
        println!("{}", report.render_decisions());
    } else {
        print!("{}", wasla::daemon::render_ticks(&report));
    }
    Ok(())
}

fn calibrate(args: &[String]) -> Result<(), WaslaError> {
    let device = require_flag(args, "--device")?;
    let capacity_gb: f64 = flag_value(args, "--capacity-gb")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| WaslaError::Usage("missing or non-numeric --capacity-gb".to_string()))?;
    let capacity = (capacity_gb * 1e9) as u64;
    let spec = match device {
        "scsi15k" => DeviceSpec::Disk(DiskParams::scsi_15k(capacity)),
        "scsi10k" => DeviceSpec::Disk(DiskParams::scsi_10k(capacity)),
        "nearline7200" => DeviceSpec::Disk(DiskParams::nearline_7200(capacity)),
        "ssd" => DeviceSpec::Ssd(SsdParams::sata_gen1(capacity)),
        "ssd2" => DeviceSpec::Ssd(SsdParams::sata_gen2(capacity)),
        other => {
            return Err(WaslaError::Usage(format!("unknown device type {other:?}")));
        }
    };
    eprintln!("calibrating {device} ({capacity_gb} GB)...");
    let model = calibrate_device(&spec, &CalibrationGrid::default(), 7);
    let json = model.to_json();
    match flag_value(args, "--out") {
        Some(path) => {
            write_file(path, &json)?;
            eprintln!("model written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn parse_constraint(s: &str) -> Result<(String, usize), WaslaError> {
    let (obj, t) = s.split_once('=').ok_or_else(|| {
        WaslaError::Usage(format!(
            "constraint must look like OBJECT=TARGET_INDEX: {s}"
        ))
    })?;
    let target: usize = t
        .parse()
        .map_err(|_| WaslaError::Usage(format!("target index must be an integer: {s}")))?;
    Ok((obj.to_string(), target))
}

fn advise(args: &[String]) -> Result<(), WaslaError> {
    let workloads_path = require_flag(args, "--workloads")?;
    let targets_path = require_flag(args, "--targets")?;
    let workloads: WorkloadSet = load_json(workloads_path, "WorkloadSet")?;
    let mut targets: Vec<TargetConfig> = load_json(targets_path, "Vec<TargetConfig>")?;

    // Tier overrides: one Tier per target, in target order. Targets
    // parsed from old spec files carry their device-derived default
    // tier, so this flag is only needed for custom economics.
    if let Some(path) = flag_value(args, "--tier-spec") {
        let tiers: Vec<wasla::storage::Tier> = load_json(path, "Vec<Tier>")?;
        if tiers.len() != targets.len() {
            return Err(WaslaError::Usage(format!(
                "--tier-spec needs one tier per target ({} tiers for {} targets)",
                tiers.len(),
                targets.len()
            )));
        }
        for (target, tier) in targets.iter_mut().zip(tiers) {
            target.tier = tier;
        }
    }

    // Cost models: either provided per target, or calibrated here.
    let models: Vec<Arc<dyn wasla::model::CostModel>> = match flag_value(args, "--models") {
        Some(list) => {
            let paths: Vec<&str> = list.split(',').collect();
            if paths.len() != targets.len() {
                return Err(WaslaError::Usage(format!(
                    "--models needs one file per target ({} files for {} targets)",
                    paths.len(),
                    targets.len()
                )));
            }
            paths
                .iter()
                .zip(&targets)
                .map(|(path, t)| {
                    let table: TableModel = load_json(path, "TableModel")?;
                    let member = TargetCostModel::member_spec(t)?;
                    Ok(Arc::new(TargetCostModel {
                        member: table,
                        width: t.width(),
                        stripe_unit: t.stripe_unit,
                        parallelism: member.build().parallelism(),
                        name: t.name.clone(),
                        tier: t.tier.clone(),
                    }) as Arc<dyn wasla::model::CostModel>)
                })
                .collect::<Result<_, WaslaError>>()?
        }
        None => {
            eprintln!("calibrating cost models for {} targets...", targets.len());
            TargetCostModel::for_targets(&targets, &CalibrationGrid::default(), 7)?
                .into_iter()
                .map(|m| Arc::new(m) as Arc<dyn wasla::model::CostModel>)
                .collect()
        }
    };

    let expect_id = |name: &str| -> Result<usize, WaslaError> {
        workloads
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| WaslaError::Usage(format!("no object named {name} in the workload set")))
    };
    let mut constraints = Vec::new();
    for c in flag_values(args, "--pin") {
        let (obj, target) = parse_constraint(c)?;
        constraints.push(AdminConstraint::PinTo {
            object: expect_id(&obj)?,
            target,
        });
    }
    for c in flag_values(args, "--forbid") {
        let (obj, target) = parse_constraint(c)?;
        constraints.push(AdminConstraint::Forbid {
            object: expect_id(&obj)?,
            target,
        });
    }

    let problem = LayoutProblem {
        kinds: vec![wasla::workload::ObjectKind::Table; workloads.len()],
        capacities: targets.iter().map(|t| t.capacity()).collect(),
        target_names: targets.iter().map(|t| t.name.clone()).collect(),
        models,
        workloads,
        stripe_size: LVM_STRIPE as f64,
        constraints,
    };
    let mut options = AdvisorOptions {
        regularize: has_flag(args, "--regular"),
        ..AdvisorOptions::default()
    };
    options.solver.objective = objective_from_flags(args)?;
    options.solver.grad = grad_from_flags(args)?;
    let rec = recommend(&problem, &options)?;
    println!("{}", render_stages(&problem, &rec.stages));
    println!(
        "{}",
        render_layout(&problem, rec.final_layout(), problem.n())
    );
    println!(
        "advisor time: {:.2}s (solver {:.2}s, regularization {:.2}s){}",
        rec.timings.total_s(),
        rec.timings.solver_s,
        rec.timings.regularize_s,
        if rec.fell_back_to_see {
            " — SEE is predicted optimal for this workload"
        } else {
            ""
        }
    );
    if let Some(path) = flag_value(args, "--out") {
        let json = wasla::simlib::json::to_string_pretty(rec.final_layout());
        write_file(path, &json)?;
        eprintln!("layout written to {path}");
    }
    Ok(())
}

fn stress(args: &[String]) -> Result<(), WaslaError> {
    let opts = wasla::StressOptions::from_args(args)?;
    eprintln!(
        "stressing {} tenants on {} shared targets (batch {})...",
        opts.spec.tenants, opts.spec.targets, opts.batch
    );
    let outcome = wasla::stress::run_stress(&opts)?;
    print!("{}", outcome.render_report());
    eprintln!("{}", outcome.render_timing());
    Ok(())
}

fn demo(args: &[String]) -> Result<(), WaslaError> {
    let scale: f64 = flag_value(args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let scenario = Scenario::homogeneous_disks(4, scale);
    let workloads = [SqlWorkload::olap1_63(7)];
    let mut config = AdviseConfig::full();
    config.advisor.solver.objective = objective_from_flags(args)?;
    config.advisor.solver.grad = grad_from_flags(args)?;
    eprintln!("running the built-in TPC-H-like demo at scale {scale}...");
    let outcome = match flag_value(args, "--cache-dir") {
        Some(dir) => {
            let (mut service, notes) = wasla::Service::open(0x5eed, dir)?;
            for note in &notes {
                eprintln!("cache: {note}");
            }
            let outcome = service
                .advise_batch(&[wasla::AdviseRequest {
                    scenario: scenario.clone(),
                    workloads: workloads.to_vec(),
                    config: config.clone(),
                    seed: Some(AdvisorOptions::default().seed),
                    deadline: None,
                }])
                .pop()
                .ok_or_else(|| {
                    WaslaError::Internal("one request in, one outcome out".to_string())
                })??;
            service.persist()?;
            outcome
        }
        None => pipeline::advise(&scenario, &workloads, &config)?,
    };
    for note in &outcome.degraded {
        eprintln!("degraded: {note}");
    }
    let rec = &outcome.recommendation;
    println!("{}", render_stages(&outcome.problem, &rec.stages));
    println!("{}", render_layout(&outcome.problem, rec.final_layout(), 8));
    let optimized = pipeline::run_with_layout(
        &scenario,
        &workloads,
        rec.final_layout(),
        &RunSettings::default(),
    )?;
    println!(
        "SEE {:.0}s → optimized {:.0}s ({:.2}x)",
        outcome.baseline_run.elapsed.as_secs(),
        optimized.elapsed.as_secs(),
        optimized.speedup_vs(&outcome.baseline_run)
    );
    Ok(())
}
