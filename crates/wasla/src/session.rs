//! Sessioned advising: memoized stages and the batch service loop.
//!
//! [`AdvisorSession`] runs the staged pipeline (see
//! [`stages`](crate::stages)) while memoizing the outputs of the pure
//! stages in [`StageCache`]s:
//!
//! * calibration tables, keyed by `(DeviceSpec, CalibrationGrid,
//!   seed)` content hash — the dominant cost of a cold advise;
//! * fitted workload sets, keyed by `(trace content hash, fit config,
//!   object inventory)`.
//!
//! A warm session advising over a scenario whose device types it has
//! already calibrated skips recalibration entirely and produces a
//! recommendation byte-identical to the cold path (cached stage
//! outputs are bit-identical to freshly computed ones; only wall-clock
//! timings differ).
//!
//! [`Service`] fans a batch of advise requests across the
//! deterministic [`par`] pool: distinct calibrations are prewarmed
//! serially first (each calibration is internally parallel, so this
//! avoids nested fan-out), then requests run concurrently against
//! worker-local snapshots of the session caches, and newly computed
//! stage outputs merge back in request order — so batch results are
//! bit-identical at any `WASLA_THREADS` setting.

use crate::error::WaslaError;
use crate::persist;
use crate::pipeline::{assemble_problem, AdviseConfig, AdviseOutcome, DegradedNote, Scenario};
use crate::stages::{
    CalibrateInput, CalibrateStage, FitInput, FitStage, RegularizeInput, RegularizeStage,
    SolveStage, TraceInput, TraceStage,
};
use std::path::PathBuf;
use wasla_core::{
    CacheStats, LayoutProblem, ObjectiveKind, Recommendation, SolveQuality, Stage, StageCache,
};
use wasla_exec::DeviceEvent;
use wasla_model::{calibration_fault, CalibrationGrid, TableModel, TargetCostModel};
use wasla_simlib::fault::{self, SolverBudget};
use wasla_simlib::par;
use wasla_storage::{TargetConfig, Trace};
use wasla_trace::oplog::{fit_oplog_streamed, OpLog, DEFAULT_CHUNK};
use wasla_trace::{fit_workloads_lossy, FitConfig, SalvageReport};
use wasla_workload::{DeadlineClass, SqlWorkload, WorkloadSet};

/// Hit/miss counters for a session's stage caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Calibration-table cache counters.
    pub calibration: CacheStats,
    /// Workload-fit cache counters.
    pub fit: CacheStats,
}

/// A stateful advisor: the staged pipeline plus memoized outputs of
/// the cacheable stages.
#[derive(Clone, Debug, Default)]
pub struct AdvisorSession {
    calibrations: StageCache<TableModel>,
    fits: StageCache<WorkloadSet>,
}

impl AdvisorSession {
    /// A fresh session with empty caches.
    pub fn new() -> Self {
        AdvisorSession::default()
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            calibration: self.calibrations.stats(),
            fit: self.fits.stats(),
        }
    }

    /// Number of calibration tables held.
    pub fn calibrations_cached(&self) -> usize {
        self.calibrations.len()
    }

    /// Number of fitted workload sets held.
    pub fn fits_cached(&self) -> usize {
        self.fits.len()
    }

    /// The stage caches, borrowed (the persistence layer serializes
    /// them without draining the session).
    pub(crate) fn caches(&self) -> (&StageCache<TableModel>, &StageCache<WorkloadSet>) {
        (&self.calibrations, &self.fits)
    }

    /// Rebuilds a session around restored caches (counters start at
    /// zero: restored entries are warm data that has served nothing).
    pub(crate) fn from_caches(
        calibrations: StageCache<TableModel>,
        fits: StageCache<WorkloadSet>,
    ) -> Self {
        AdvisorSession { calibrations, fits }
    }

    /// The calibration table for one target's member device,
    /// computing it on a cache miss.
    fn member_table(
        &mut self,
        config: &TargetConfig,
        grid: &CalibrationGrid,
        seed: u64,
    ) -> Result<TableModel, WaslaError> {
        let spec = TargetCostModel::member_spec(config)?;
        let stage = CalibrateStage { grid };
        let input = CalibrateInput { spec, seed };
        let key = stage
            .cache_key(&input)
            .ok_or_else(|| WaslaError::Internal("calibrate stage must be cacheable".to_string()))?;
        Ok(self
            .calibrations
            .get_or_insert_with(key, || stage.table(&input))
            .clone())
    }

    /// Target cost models for a scenario's targets, assembling each
    /// around a (possibly cached) member calibration table.
    pub fn models_for(
        &mut self,
        targets: &[TargetConfig],
        grid: &CalibrationGrid,
        seed: u64,
    ) -> Result<Vec<TargetCostModel>, WaslaError> {
        targets
            .iter()
            .map(|config| {
                let member = self.member_table(config, grid, seed)?;
                TargetCostModel::with_member(config, member).map_err(WaslaError::from)
            })
            .collect()
    }

    /// Fitted workload descriptions for a trace, reusing the cache
    /// when the same trace and inventory were fitted before (under the
    /// same layout objective — the objective id partitions the cache).
    pub fn fit(
        &mut self,
        trace: &Trace,
        names: &[String],
        sizes: &[u64],
        config: &FitConfig,
        objective: ObjectiveKind,
    ) -> Result<WorkloadSet, WaslaError> {
        let stage = FitStage { config, objective };
        let input = FitInput {
            trace,
            names,
            sizes,
        };
        let key = stage
            .cache_key(&input)
            .ok_or_else(|| WaslaError::Internal("fit stage must be cacheable".to_string()))?;
        if let Some(cached) = self.fits.get(key) {
            return Ok(cached.clone());
        }
        let fitted = stage.run(&input)?;
        self.fits.insert(key, fitted.clone());
        Ok(fitted)
    }

    /// Like [`fit`](AdvisorSession::fit), but for a trace whose tail
    /// the active fault plan damages: records past the keep point get
    /// an out-of-range stream id (a torn tail), and the fitter salvages
    /// the valid prefix. The damaged trace is cached under its *own*
    /// content identity, so warm and cold sessions agree byte-for-byte
    /// under the same fault plan.
    fn fit_salvaged(
        &mut self,
        trace: &Trace,
        names: &[String],
        sizes: &[u64],
        config: &FitConfig,
        objective: ObjectiveKind,
        keep_fraction: f64,
    ) -> Result<(WorkloadSet, SalvageReport), WaslaError> {
        let keep = ((trace.len() as f64) * keep_fraction) as usize;
        self.fit_salvaged_keyed(
            trace.content_hash_damaged(keep),
            trace.len(),
            keep,
            names,
            sizes,
            config,
            objective,
            || {
                let mut damaged = Trace::new();
                for (i, rec) in trace.records().iter().enumerate() {
                    let mut rec = *rec;
                    if i >= keep {
                        rec.stream = u32::MAX;
                    }
                    damaged.push(rec);
                }
                damaged
            },
        )
    }

    /// Salvage keyed by the damaged trace's content hash. A cache hit
    /// answers without rebuilding the damaged records at all (the hash
    /// is computed in place over the clean source); only a miss pays
    /// for `build_damaged` and the lossy fit. Both the trace path and
    /// the op-log path route through here, so a salvage cached from
    /// either representation serves the other — and warm ≡ cold holds
    /// for replayed logs under the same fault plan.
    #[allow(clippy::too_many_arguments)]
    fn fit_salvaged_keyed(
        &mut self,
        damaged_hash: u64,
        total: usize,
        keep: usize,
        names: &[String],
        sizes: &[u64],
        config: &FitConfig,
        objective: ObjectiveKind,
        build_damaged: impl FnOnce() -> Trace,
    ) -> Result<(WorkloadSet, SalvageReport), WaslaError> {
        let stage = FitStage { config, objective };
        let key = stage.key_for_hash(damaged_hash, names, sizes);
        if let Some(cached) = self.fits.get(key) {
            // The engine-produced prefix is entirely valid, so the
            // salvage boundary is exactly the damage point.
            return Ok((
                cached.clone(),
                SalvageReport {
                    kept: keep,
                    dropped: total - keep,
                },
            ));
        }
        let damaged = build_damaged();
        let (fitted, salvage) = fit_workloads_lossy(&damaged, names, sizes, config)?;
        self.fits.insert(key, fitted.clone());
        Ok((fitted, salvage))
    }

    /// Fitted workload descriptions from a captured op-log, streamed
    /// through the chunked reader without ever materializing the
    /// equivalent [`Trace`] on the clean path. The result is cached
    /// under [`OpLog::trace_content_hash`] — the same key the
    /// materialized path uses — so a fit computed from a trace run
    /// serves a later op-log ingest of the same I/O and vice versa.
    ///
    /// Under an active trace fault the log's tail is salvaged exactly
    /// like [`advise`](AdvisorSession::advise) salvages a damaged live
    /// trace, keyed by the damaged content hash; the returned report is
    /// `Some` when records were dropped.
    pub fn ingest_oplog(
        &mut self,
        log: &OpLog,
        names: &[String],
        sizes: &[u64],
        config: &FitConfig,
        objective: ObjectiveKind,
    ) -> Result<(WorkloadSet, Option<SalvageReport>), WaslaError> {
        let trace_fault = fault::plan().and_then(|p| p.trace_fault(log.trace_content_hash()));
        if let Some(tf) = trace_fault {
            let keep = ((log.len() as f64) * tf.keep_fraction) as usize;
            let (fitted, salvage) = self.fit_salvaged_keyed(
                log.trace_content_hash_damaged(keep),
                log.len(),
                keep,
                names,
                sizes,
                config,
                objective,
                || {
                    let mut damaged = Trace::new();
                    for (i, rec) in log.records().iter().enumerate() {
                        let mut rec = rec.as_block_record();
                        if i >= keep {
                            rec.stream = u32::MAX;
                        }
                        damaged.push(rec);
                    }
                    damaged
                },
            )?;
            let dropped = salvage.degraded();
            return Ok((fitted, dropped.then_some(salvage)));
        }
        let stage = FitStage { config, objective };
        let key = stage.key_for_hash(log.trace_content_hash(), names, sizes);
        if let Some(cached) = self.fits.get(key) {
            return Ok((cached.clone(), None));
        }
        let fitted = fit_oplog_streamed(log, names, sizes, config, DEFAULT_CHUNK)?;
        self.fits.insert(key, fitted.clone());
        Ok((fitted, None))
    }

    /// The advise pipeline fed from a captured op-log instead of a
    /// fresh trace-collection run: streamed ingest → calibrate →
    /// solve → regularize. No simulation runs; the log stands in for
    /// the operational system's observed I/O.
    pub fn advise_from_oplog(
        &mut self,
        log: &OpLog,
        scenario: &Scenario,
        config: &AdviseConfig,
    ) -> Result<OpLogAdvice, WaslaError> {
        let mut degraded: Vec<DegradedNote> = Vec::new();
        let names = scenario.catalog.names();
        let sizes = scenario.catalog.sizes();
        let (fitted, salvage) = self.ingest_oplog(
            log,
            &names,
            &sizes,
            &config.fit,
            config.advisor.solver.objective,
        )?;
        if let Some(s) = salvage {
            degraded.push(DegradedNote::TraceSalvaged {
                kept: s.kept,
                dropped: s.dropped,
            });
        }
        let models = self.models_for(&scenario.targets, &config.grid, scenario.seed)?;
        for target in &scenario.targets {
            let spec = TargetCostModel::member_spec(target)?;
            if let Some(f) = calibration_fault(spec, scenario.seed) {
                degraded.push(DegradedNote::CalibrationDegraded {
                    device: target.name.clone(),
                    factor: f.latency_factor(),
                });
            }
        }
        let problem =
            assemble_problem(scenario, fitted.clone(), models, config.constraints.clone());
        let solve = SolveStage {
            options: &config.advisor,
        };
        let solved = solve.run(&problem)?;
        let finish = RegularizeStage {
            options: &config.advisor,
        };
        let recommendation = finish.run(&RegularizeInput {
            problem: &problem,
            solved,
        })?;
        if recommendation.quality.degraded() {
            degraded.push(DegradedNote::SolverDegraded {
                quality: recommendation.quality,
            });
        }
        Ok(OpLogAdvice {
            fitted,
            problem,
            recommendation,
            degraded,
        })
    }

    /// The full staged pipeline — trace → fit → calibrate → solve →
    /// regularize — with the pure stages served from this session's
    /// caches.
    pub fn advise(
        &mut self,
        scenario: &Scenario,
        workloads: &[SqlWorkload],
        config: &AdviseConfig,
    ) -> Result<AdviseOutcome, WaslaError> {
        let mut degraded: Vec<DegradedNote> = Vec::new();
        let trace_stage = TraceStage {
            settings: &config.trace_run,
        };
        let trace_outcome = trace_stage.run(&TraceInput {
            scenario,
            workloads,
        })?;
        for event in &trace_outcome.device_events {
            let target = scenario.targets[event.target()].name.clone();
            degraded.push(match event {
                DeviceEvent::Degraded { factor, .. } => DegradedNote::DeviceDegraded {
                    target,
                    factor: *factor,
                },
                DeviceEvent::Failed { .. } => DegradedNote::DeviceFailed { target },
            });
        }
        let baseline_run = trace_outcome.report;
        let trace = baseline_run.trace.as_ref().ok_or_else(|| {
            WaslaError::Internal("trace stage returned a report without a trace".to_string())
        })?;

        let names = scenario.catalog.names();
        let sizes = scenario.catalog.sizes();
        let trace_fault = fault::plan().and_then(|p| p.trace_fault(trace.content_hash()));
        let objective = config.advisor.solver.objective;
        let fitted = match trace_fault {
            Some(tf) => {
                let (fitted, salvage) = self.fit_salvaged(
                    trace,
                    &names,
                    &sizes,
                    &config.fit,
                    objective,
                    tf.keep_fraction,
                )?;
                if salvage.degraded() {
                    degraded.push(DegradedNote::TraceSalvaged {
                        kept: salvage.kept,
                        dropped: salvage.dropped,
                    });
                }
                fitted
            }
            None => self.fit(trace, &names, &sizes, &config.fit, objective)?,
        };

        let models = self.models_for(&scenario.targets, &config.grid, scenario.seed)?;
        // Calibration faults are applied inside `calibrate_device`;
        // re-query the plan here to note which targets got a degraded
        // model (the cached table carries the degradation with it).
        for target in &scenario.targets {
            let spec = TargetCostModel::member_spec(target)?;
            if let Some(f) = calibration_fault(spec, scenario.seed) {
                degraded.push(DegradedNote::CalibrationDegraded {
                    device: target.name.clone(),
                    factor: f.latency_factor(),
                });
            }
        }
        let problem =
            assemble_problem(scenario, fitted.clone(), models, config.constraints.clone());

        let solve = SolveStage {
            options: &config.advisor,
        };
        let solved = solve.run(&problem)?;
        let finish = RegularizeStage {
            options: &config.advisor,
        };
        let recommendation = finish.run(&RegularizeInput {
            problem: &problem,
            solved,
        })?;
        if recommendation.quality.degraded() {
            degraded.push(DegradedNote::SolverDegraded {
                quality: recommendation.quality,
            });
        }

        Ok(AdviseOutcome {
            baseline_run,
            fitted,
            problem,
            recommendation,
            degraded,
        })
    }

    /// Folds a worker-local session (started as a clone of this one)
    /// back into this session: new cache entries land first-write-wins
    /// in merge order, and the counter deltas relative to `baseline`
    /// are accumulated.
    fn absorb(&mut self, local: AdvisorSession, baseline: &SessionStats) {
        self.calibrations
            .add_stats(local.calibrations.stats().since(&baseline.calibration));
        self.fits.add_stats(local.fits.stats().since(&baseline.fit));
        for (key, table) in local.calibrations.into_entries() {
            self.calibrations.insert(key, table);
        }
        for (key, fitted) in local.fits.into_entries() {
            self.fits.insert(key, fitted);
        }
    }
}

/// What [`AdvisorSession::advise_from_oplog`] produced. Unlike
/// [`AdviseOutcome`] there is no baseline run report: the op-log *is*
/// the baseline observation.
pub struct OpLogAdvice {
    /// The fitted per-object workload descriptions.
    pub fitted: WorkloadSet,
    /// The assembled layout problem (with calibrated models).
    pub problem: LayoutProblem,
    /// The advisor's recommendation.
    pub recommendation: Recommendation,
    /// Degradations the pipeline worked around (empty on a clean run).
    pub degraded: Vec<DegradedNote>,
}

/// One request in a [`Service::advise_batch`] call.
#[derive(Clone)]
pub struct AdviseRequest {
    /// The scenario to advise.
    pub scenario: Scenario,
    /// The SQL workloads to trace and fit.
    pub workloads: Vec<SqlWorkload>,
    /// Pipeline configuration.
    pub config: AdviseConfig,
    /// Seed for the advisor's randomized starts. `None` derives a
    /// per-request seed from the service's base seed and the request
    /// index ([`par::task_seed`]), keeping batch results independent
    /// of thread count and batch composition order.
    pub seed: Option<u64>,
    /// The tenant's deadline class. `None` behaves like
    /// [`DeadlineClass::Standard`] for admission priority but imposes
    /// no solve-budget deadline at all (the historical behavior).
    pub deadline: Option<DeadlineClass>,
}

impl AdviseRequest {
    /// A request with the default (index-derived) seed and no
    /// deadline.
    pub fn new(scenario: Scenario, workloads: Vec<SqlWorkload>, config: AdviseConfig) -> Self {
        AdviseRequest {
            scenario,
            workloads,
            config,
            seed: None,
            deadline: None,
        }
    }

    /// The same request under a deadline class.
    pub fn with_deadline(mut self, deadline: DeadlineClass) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Admission, deadline, and retry policy for one
/// [`Service::advise_batch_with`] call.
///
/// The default policy reproduces the historical `advise_batch`
/// behavior byte-for-byte: unbounded admission, no brownout, and the
/// original retry budget of two attempts (one retry), deterministic by
/// request index.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchPolicy {
    /// Hard admission bound: requests whose admission position is at
    /// or past this capacity are rejected with
    /// [`WaslaError::Overloaded`] before any pipeline work runs.
    /// `None` admits everything.
    pub queue_capacity: Option<usize>,
    /// Soft admission bound (brownout): admitted requests at or past
    /// this position run at the cheapest solve rung (rate-greedy) and
    /// carry a [`DegradedNote::Shed`] instead of being rejected.
    /// `None` browns nothing out.
    pub brownout_threshold: Option<usize>,
    /// Total attempts per request under an active fault plan (the
    /// first try plus retries). The default of 2 is the historical
    /// single-retry budget. Values are clamped to at least 1.
    pub max_attempts: u32,
    /// Base virtual backoff (in abstract slots) before the first
    /// retry; doubles per attempt. Backoff is *virtual*: simulators
    /// model time rather than waiting on it, so the schedule is
    /// recorded in the decision log instead of slept.
    pub backoff_base: u64,
    /// Cap on the exponential backoff slot count.
    pub backoff_cap: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            queue_capacity: None,
            brownout_threshold: None,
            max_attempts: 2,
            backoff_base: 1,
            backoff_cap: 8,
        }
    }
}

impl BatchPolicy {
    /// The deterministic virtual backoff taken after failed `attempt`
    /// (0-based): exponential in the attempt index, capped, plus
    /// bounded jitter derived from the request key via
    /// [`par::task_seed`] — so retry schedules are reproducible at any
    /// `WASLA_THREADS` and under any batch composition.
    pub fn backoff_slots(&self, request_key: u64, attempt: u32) -> u64 {
        let slot = self
            .backoff_base
            .saturating_mul(1u64 << attempt.min(16))
            .clamp(1, self.backoff_cap.max(1));
        slot + par::task_seed(request_key, attempt as u64 + 1) % slot
    }
}

/// The tighter (cheaper-solve) of two budgets.
fn tighter(a: Option<SolverBudget>, b: Option<SolverBudget>) -> Option<SolverBudget> {
    fn rank(x: Option<SolverBudget>) -> u8 {
        match x {
            None => 0,
            Some(SolverBudget::Tight) => 1,
            Some(SolverBudget::PgOnly) => 2,
            Some(SolverBudget::GreedyOnly) => 3,
        }
    }
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

/// The solve budget a deadline class grants on a given attempt. Each
/// consumed retry spends deadline in backoff, so the solve budget
/// tightens one rung per attempt — the request degrades through the
/// anytime chain (full → budgeted → PG-only → rate-greedy) instead of
/// failing. `Batch` has no deadline: full quality at any attempt.
fn deadline_budget(class: DeadlineClass, attempt: u32) -> Option<SolverBudget> {
    let base_rung = match class {
        DeadlineClass::Batch => return None,
        DeadlineClass::Standard => 0,
        DeadlineClass::Interactive => 1,
    };
    match base_rung + attempt.min(8) {
        0 => None,
        1 => Some(SolverBudget::Tight),
        2 => Some(SolverBudget::PgOnly),
        _ => Some(SolverBudget::GreedyOnly),
    }
}

/// Admission order of a batch: deadline priority first (interactive
/// before standard before batch; requests without a class rank as
/// standard), request index as the tie-break. A pure function of the
/// request list, so positions are identical at any thread count.
fn admission_order(requests: &[AdviseRequest]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| {
        (
            requests[i]
                .deadline
                .map_or(DeadlineClass::Standard.priority(), |c| c.priority()),
            i,
        )
    });
    order
}

/// How one batch slot ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotDisposition {
    /// Admitted and advised at full quality with no degradations.
    Ok,
    /// Admitted and advised, but with typed degradation notes.
    Degraded,
    /// Admitted but ended in a typed error.
    Failed,
    /// Rejected by admission control ([`WaslaError::Overloaded`]).
    Rejected,
}

impl SlotDisposition {
    /// Stable lower-case label for the decision log.
    pub fn label(self) -> &'static str {
        match self {
            SlotDisposition::Ok => "ok",
            SlotDisposition::Degraded => "degraded",
            SlotDisposition::Failed => "failed",
            SlotDisposition::Rejected => "rejected",
        }
    }
}

/// The per-request decision record of one batch: admission outcome,
/// retry/backoff schedule, and final disposition. Every field is a
/// deterministic function of (requests, policy, fault plan), so the
/// rendered log is byte-identical at any `WASLA_THREADS`.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotDecision {
    /// Request index in the batch.
    pub index: usize,
    /// The request's deadline class (`None` ranks as standard).
    pub class: Option<DeadlineClass>,
    /// Position in the admission order.
    pub position: usize,
    /// False when admission control rejected the request outright.
    pub admitted: bool,
    /// True when the request was browned out (cheapest-rung solve).
    pub shed: bool,
    /// Attempts used (faulted tries plus the one that ran; equals the
    /// policy budget when every attempt faulted).
    pub attempts: u32,
    /// Virtual backoff slots taken after each faulted attempt.
    pub backoff: Vec<u64>,
    /// Solve quality of the successful outcome, if any.
    pub quality: Option<SolveQuality>,
    /// How the slot ended.
    pub disposition: SlotDisposition,
}

/// Everything [`Service::advise_batch_with`] produced: the per-request
/// outcomes plus the decision log.
pub struct BatchReport {
    /// Per-request results, in request order.
    pub outcomes: Vec<Result<AdviseOutcome, WaslaError>>,
    /// Per-request decisions, in request order.
    pub decisions: Vec<SlotDecision>,
}

impl BatchReport {
    /// Renders the decision log in a stable line-per-slot text form
    /// (the `WASLA_THREADS` 1-vs-8 byte-compare target in CI).
    pub fn render_decisions(&self) -> String {
        render_decisions(&self.decisions)
    }
}

/// Renders slot decisions one line per slot, stable across runs.
pub fn render_decisions(decisions: &[SlotDecision]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in decisions {
        let backoff: Vec<String> = d.backoff.iter().map(|b| b.to_string()).collect();
        let quality = match d.quality {
            Some(q) => format!("{q:?}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "slot={} class={} pos={} admitted={} shed={} attempts={} backoff=[{}] quality={} disposition={}",
            d.index,
            d.class.map_or("default", |c| c.label()),
            d.position,
            if d.admitted { "yes" } else { "no" },
            if d.shed { "yes" } else { "no" },
            d.attempts,
            backoff.join(","),
            quality,
            d.disposition.label(),
        );
    }
    out
}

/// A long-lived advising service: one shared [`AdvisorSession`] plus a
/// deterministic batch loop, optionally backed by a crash-safe cache
/// directory.
pub struct Service {
    session: AdvisorSession,
    base_seed: u64,
    cache_dir: Option<PathBuf>,
}

impl Service {
    /// A service with empty caches and the given base seed for
    /// per-request seed derivation.
    pub fn new(base_seed: u64) -> Self {
        Service {
            session: AdvisorSession::new(),
            base_seed,
            cache_dir: None,
        }
    }

    /// Opens a service backed by a persisted cache directory: stage
    /// caches saved by a previous [`persist`](Service::persist) are
    /// restored, so a restarted service starts warm and reproduces
    /// warm results byte-for-byte. Missing files mean a cold start;
    /// corrupt or version-skewed files are quarantined (renamed to
    /// `<file>.quarantined`, reported as a
    /// [`DegradedNote::CacheQuarantined`]) and the cache rebuilds
    /// transparently — never a panic, never a poisoned session.
    pub fn open(
        base_seed: u64,
        cache_dir: impl Into<PathBuf>,
    ) -> Result<(Service, Vec<DegradedNote>), WaslaError> {
        let cache_dir = cache_dir.into();
        let (session, notes) = persist::load_session(&cache_dir)?;
        Ok((
            Service {
                session,
                base_seed,
                cache_dir: Some(cache_dir),
            },
            notes,
        ))
    }

    /// Writes the session caches to the cache directory (versioned,
    /// checksummed, atomic rename-on-write). A no-op for services
    /// without a cache directory.
    pub fn persist(&self) -> Result<(), WaslaError> {
        match &self.cache_dir {
            Some(dir) => persist::save_session(dir, &self.session),
            None => Ok(()),
        }
    }

    /// The shared session (cache statistics, warm state).
    pub fn session(&self) -> &AdvisorSession {
        &self.session
    }

    /// Mutable access to the shared session, for direct stage work —
    /// op-log ingestion and replay advising run against the same
    /// caches [`advise_batch`](Service::advise_batch) warms and
    /// [`persist`](Service::persist) saves.
    pub fn session_mut(&mut self) -> &mut AdvisorSession {
        &mut self.session
    }

    /// The cache directory this service persists to, if any. The
    /// daemon loop stores its controller checkpoint alongside the
    /// stage caches.
    pub(crate) fn cache_dir(&self) -> Option<&std::path::Path> {
        self.cache_dir.as_deref()
    }

    /// Advises every request under the default [`BatchPolicy`],
    /// fanning across the [`par`] pool.
    ///
    /// Distinct member calibrations are prewarmed serially first (each
    /// is internally parallel); the fan-out then runs against
    /// worker-local snapshots of the warm caches, and anything newly
    /// computed merges back into the shared session in request order.
    /// Results are bit-identical at any `WASLA_THREADS` setting, and a
    /// warm service returns byte-identical recommendations to a cold
    /// one (only wall-clock timings differ).
    pub fn advise_batch(
        &mut self,
        requests: &[AdviseRequest],
    ) -> Vec<Result<AdviseOutcome, WaslaError>> {
        self.advise_batch_with(requests, &BatchPolicy::default())
            .outcomes
    }

    /// [`advise_batch`](Service::advise_batch) under an explicit
    /// admission/deadline/retry policy, returning the decision log
    /// alongside the outcomes.
    ///
    /// Every request resolves to exactly one of: an [`AdviseOutcome`]
    /// (possibly with typed [`DegradedNote`]s), or a typed
    /// [`WaslaError`] ([`WaslaError::Overloaded`] for rejected
    /// requests, [`WaslaError::Fault`] for persistent injected
    /// faults) — never a panic. Admission positions, shed/brownout
    /// assignments, retry counts, and backoff schedules are pure
    /// functions of `(requests, policy, fault plan)`, so the whole
    /// report is byte-identical at any `WASLA_THREADS`.
    pub fn advise_batch_with(
        &mut self,
        requests: &[AdviseRequest],
        policy: &BatchPolicy,
    ) -> BatchReport {
        let n = requests.len();
        let order = admission_order(requests);
        let mut position = vec![0usize; n];
        for (pos, &i) in order.iter().enumerate() {
            position[i] = pos;
        }
        let admitted: Vec<bool> = (0..n)
            .map(|i| policy.queue_capacity.is_none_or(|c| position[i] < c))
            .collect();
        let shed: Vec<bool> = (0..n)
            .map(|i| admitted[i] && policy.brownout_threshold.is_some_and(|t| position[i] >= t))
            .collect();

        // Prewarm: every distinct (device, grid, seed) calibration the
        // admitted requests will need, serially at this level (each
        // calibration is internally parallel). Rejected requests never
        // touch the pipeline, so they warm nothing. Modeling errors
        // are left for the per-request run to report.
        for (i, request) in requests.iter().enumerate() {
            if !admitted[i] {
                continue;
            }
            for target in &request.scenario.targets {
                let _ =
                    self.session
                        .member_table(target, &request.config.grid, request.scenario.seed);
            }
        }

        let base_seed = self.base_seed;
        let attempts_budget = policy.max_attempts.max(1);
        let plan = fault::plan();
        let snapshot = self.session.clone();
        let baseline = snapshot.stats();
        let indices: Vec<usize> = (0..n).collect();
        type SlotRun = (
            Result<AdviseOutcome, WaslaError>,
            SlotDecision,
            Option<AdvisorSession>,
        );
        let runs: Vec<SlotRun> = par::par_map(&indices, |&i| {
            let request = &requests[i];
            let mut decision = SlotDecision {
                index: i,
                class: request.deadline,
                position: position[i],
                admitted: admitted[i],
                shed: shed[i],
                attempts: 0,
                backoff: Vec::new(),
                quality: None,
                disposition: SlotDisposition::Rejected,
            };
            if !admitted[i] {
                // Typed load shedding: rejected before any work ran.
                let err = WaslaError::Overloaded {
                    position: position[i],
                    capacity: policy.queue_capacity.unwrap_or(0),
                };
                return (Err(err), decision, None);
            }
            let mut local = snapshot.clone();
            let seed = request
                .seed
                .unwrap_or_else(|| par::task_seed(base_seed, i as u64));
            // Bounded deterministic retry with virtual backoff: an
            // injected request fault consumes an attempt and records
            // its backoff slots; attempts roll independently per
            // (request index, attempt), so a transient fault succeeds
            // on retry and a persistent one surfaces as a typed
            // per-request error — the rest of the batch is unaffected.
            // Under a deadline class, each consumed attempt tightens
            // the solve budget one rung (backoff spends deadline).
            let request_key = fault::request_key(base_seed, i as u64);
            let mut outcome = None;
            for attempt in 0..attempts_budget {
                if plan.is_some_and(|p| p.request_fault(request_key, attempt)) {
                    decision
                        .backoff
                        .push(policy.backoff_slots(request_key, attempt));
                    continue;
                }
                decision.attempts = attempt + 1;
                let mut config = request.config.clone();
                config.advisor.seed = seed;
                let budget = if shed[i] {
                    // Brownout: cheapest rung, unconditionally.
                    Some(SolverBudget::GreedyOnly)
                } else {
                    request.deadline.and_then(|c| deadline_budget(c, attempt))
                };
                config.advisor.solve_budget = tighter(config.advisor.solve_budget, budget);
                outcome = Some(local.advise(&request.scenario, &request.workloads, &config));
                break;
            }
            let outcome = outcome.unwrap_or_else(|| {
                decision.attempts = attempts_budget;
                Err(WaslaError::Fault {
                    attempts: attempts_budget,
                    detail: "injected request fault".to_string(),
                })
            });
            let outcome = outcome.map(|mut o| {
                if shed[i] {
                    o.degraded.push(DegradedNote::Shed {
                        position: position[i],
                        threshold: policy.brownout_threshold.unwrap_or(0),
                    });
                }
                o
            });
            decision.quality = outcome.as_ref().ok().map(|o| o.recommendation.quality);
            decision.disposition = match &outcome {
                Ok(o) if o.is_degraded() => SlotDisposition::Degraded,
                Ok(_) => SlotDisposition::Ok,
                Err(_) => SlotDisposition::Failed,
            };
            (outcome, decision, Some(local))
        });

        let mut outcomes = Vec::with_capacity(runs.len());
        let mut decisions = Vec::with_capacity(runs.len());
        for (outcome, decision, local) in runs {
            if let Some(local) = local {
                self.session.absorb(local, &baseline);
            }
            outcomes.push(outcome);
            decisions.push(decision);
        }
        BatchReport {
            outcomes,
            decisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scenario;

    #[test]
    fn warm_session_skips_recalibration_and_matches_cold() {
        let scenario = Scenario::homogeneous_disks(4, 0.01);
        let workloads = [SqlWorkload::olap1_21(3)];
        let config = AdviseConfig::fast();

        let mut session = AdvisorSession::new();
        let cold = session.advise(&scenario, &workloads, &config).unwrap();
        let after_cold = session.stats();
        // Four identical disks: one calibration, one fit, all misses.
        assert_eq!(after_cold.calibration.misses, 1);
        assert_eq!(after_cold.calibration.hits, 3);
        assert_eq!(session.calibrations_cached(), 1);

        let warm = session.advise(&scenario, &workloads, &config).unwrap();
        let after_warm = session.stats();
        assert_eq!(after_warm.calibration.misses, 1, "no recalibration");
        assert_eq!(after_warm.fit.misses, 1, "fit reused");

        // Same pipeline, same seeds → byte-identical recommendation
        // (timings excluded: they are wall-clock).
        assert_eq!(
            cold.recommendation.solver_layout,
            warm.recommendation.solver_layout
        );
        assert_eq!(
            cold.recommendation.regular_layout,
            warm.recommendation.regular_layout
        );
        assert_eq!(cold.recommendation.converged, warm.recommendation.converged);
        assert_eq!(
            cold.recommendation.fell_back_to_see,
            warm.recommendation.fell_back_to_see
        );
    }

    #[test]
    fn session_matches_cold_pipeline_advise() {
        let scenario = Scenario::homogeneous_disks(4, 0.01);
        let workloads = [SqlWorkload::olap1_21(3)];
        let config = AdviseConfig::fast();
        let via_pipeline = crate::pipeline::advise(&scenario, &workloads, &config).unwrap();
        let mut session = AdvisorSession::new();
        let via_session = session.advise(&scenario, &workloads, &config).unwrap();
        assert_eq!(
            via_pipeline.recommendation.solver_layout,
            via_session.recommendation.solver_layout
        );
        assert_eq!(
            via_pipeline.recommendation.regular_layout,
            via_session.recommendation.regular_layout
        );
    }
}
