//! Crash-safe persistence for advisor-session stage caches.
//!
//! A [`Service`](crate::session::Service) opened on a cache directory
//! restores its calibration and fit caches from two JSON files
//! (`calibrations.json`, `fits.json`), each a versioned, checksummed
//! snapshot:
//!
//! ```text
//! { "version": 1,
//!   "kind": "calibrations",
//!   "checksum": <FNV-1a over the canonical entries JSON>,
//!   "entries": [[key, value], ...] }
//! ```
//!
//! Durability discipline:
//!
//! * **Atomic writes** — snapshots are written to `<file>.tmp` and
//!   renamed into place, so a crash mid-write leaves the previous
//!   snapshot intact (rename is atomic on POSIX filesystems).
//! * **Corruption is quarantined, not fatal** — a file that fails to
//!   parse, decodes to the wrong kind, carries a different format
//!   version, or whose checksum does not match its entries is renamed
//!   to `<file>.quarantined` and reported as a typed
//!   [`DegradedNote::CacheQuarantined`]; the cache rebuilds cold.
//!   Loading never panics and never poisons a session with bad data.
//! * **Warm ≡ cold** — restored entries are bit-identical to freshly
//!   computed ones (the in-tree JSON codec round-trips `u64` keys and
//!   `f64` table values exactly), so a restarted service reproduces
//!   warm results byte-for-byte.
//!
//! The only hard error is failing to move damage out of the way: if
//! the quarantine rename itself fails (e.g. the quarantine path is
//! blocked), loading returns [`WaslaError::Io`] naming the quarantine
//! path — the CLI maps that to exit code 3.

use crate::error::WaslaError;
use crate::pipeline::DegradedNote;
use crate::session::AdvisorSession;
use std::path::{Path, PathBuf};
use wasla_core::StageCache;
use wasla_simlib::hash::Fnv64;
use wasla_simlib::json::{self, FromJson, Json, ToJson};

/// Snapshot format version; bump on any incompatible change. A
/// version-skewed file is quarantined and rebuilt, never misread.
pub const CACHE_VERSION: u64 = 1;

/// File name of the calibration-table snapshot inside a cache dir.
pub const CALIBRATIONS_FILE: &str = "calibrations.json";

/// File name of the workload-fit snapshot inside a cache dir.
pub const FITS_FILE: &str = "fits.json";

/// File name of the daemon controller checkpoint inside a cache dir.
pub const CONTROLLER_FILE: &str = "controller.json";

/// Saves both session caches into `dir` (created if missing), each
/// with an atomic tmp-file-then-rename write.
pub fn save_session(dir: &Path, session: &AdvisorSession) -> Result<(), WaslaError> {
    std::fs::create_dir_all(dir).map_err(|e| WaslaError::io(dir.display().to_string(), &e))?;
    let (calibrations, fits) = session.caches();
    save_cache(dir, CALIBRATIONS_FILE, "calibrations", calibrations)?;
    save_cache(dir, FITS_FILE, "fits", fits)
}

/// Loads a session from `dir`. Missing files mean cold caches; bad
/// files are quarantined and reported. Only a failing quarantine
/// rename is an error.
pub fn load_session(dir: &Path) -> Result<(AdvisorSession, Vec<DegradedNote>), WaslaError> {
    let mut notes = Vec::new();
    let calibrations = load_cache(dir, CALIBRATIONS_FILE, "calibrations", &mut notes)?;
    let fits = load_cache(dir, FITS_FILE, "fits", &mut notes)?;
    Ok((AdvisorSession::from_caches(calibrations, fits), notes))
}

/// Saves a daemon controller checkpoint into `dir` (created if
/// missing) under the same version/kind/checksum discipline as the
/// stage caches; the checksum covers the canonical rendering of the
/// `state` field. Atomic tmp-file-then-rename write.
pub fn save_controller(
    dir: &Path,
    state: &crate::daemon::ControllerState,
) -> Result<(), WaslaError> {
    std::fs::create_dir_all(dir).map_err(|e| WaslaError::io(dir.display().to_string(), &e))?;
    let body = state.to_json();
    let doc = Json::Obj(vec![
        ("version".to_string(), CACHE_VERSION.to_json()),
        ("kind".to_string(), "controller".to_json()),
        ("checksum".to_string(), checksum(&body).to_json()),
        ("state".to_string(), body),
    ]);
    let path = dir.join(CONTROLLER_FILE);
    let tmp = dir.join(format!("{CONTROLLER_FILE}.tmp"));
    std::fs::write(&tmp, json::to_string(&doc))
        .map_err(|e| WaslaError::io(tmp.display().to_string(), &e))?;
    std::fs::rename(&tmp, &path).map_err(|e| WaslaError::io(path.display().to_string(), &e))
}

/// Loads a daemon controller checkpoint from `dir`. A missing file is
/// a cold start (`None`); a corrupt, version-skewed, wrong-kind, or
/// checksum-mismatched file is quarantined to `<file>.quarantined`,
/// reported as a [`DegradedNote::CacheQuarantined`], and the
/// controller restarts cold. Only a failing quarantine rename is an
/// error.
pub fn load_controller(
    dir: &Path,
) -> Result<(Option<crate::daemon::ControllerState>, Vec<DegradedNote>), WaslaError> {
    let path = dir.join(CONTROLLER_FILE);
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((None, Vec::new())),
        Err(e) => return Err(WaslaError::io(path.display().to_string(), &e)),
    };
    match decode_controller(&raw) {
        Ok(state) => Ok((Some(state), Vec::new())),
        Err(_reason) => {
            let quarantined = quarantine(&path)?;
            Ok((
                None,
                vec![DegradedNote::CacheQuarantined { path: quarantined }],
            ))
        }
    }
}

/// Decodes and validates one controller checkpoint; any `Err` means
/// "quarantine".
fn decode_controller(raw: &str) -> Result<crate::daemon::ControllerState, String> {
    let doc = Json::parse(raw).map_err(|e| e.to_string())?;
    let field = |name: &str| {
        doc.field(name)
            .ok_or_else(|| format!("missing field {name:?}"))
    };
    let version = u64::from_json(field("version")?).map_err(|e| e.to_string())?;
    if version != CACHE_VERSION {
        return Err(format!("version skew: {version} != {CACHE_VERSION}"));
    }
    let file_kind = String::from_json(field("kind")?).map_err(|e| e.to_string())?;
    if file_kind != "controller" {
        return Err(format!("kind mismatch: {file_kind:?} != \"controller\""));
    }
    let declared = u64::from_json(field("checksum")?).map_err(|e| e.to_string())?;
    let body = field("state")?;
    let actual = checksum(body);
    if declared != actual {
        return Err(format!("checksum mismatch: {declared} != {actual}"));
    }
    crate::daemon::ControllerState::from_json(body).map_err(|e| e.to_string())
}

/// The canonical JSON array a cache's entries serialize to; the
/// checksum is computed over exactly this rendering.
fn entries_json<V: ToJson>(entries: &[(u64, V)]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|(key, value)| Json::Arr(vec![key.to_json(), value.to_json()]))
            .collect(),
    )
}

fn checksum(entries: &Json) -> u64 {
    Fnv64::new().write_str(&json::to_string(entries)).finish()
}

fn save_cache<V: ToJson>(
    dir: &Path,
    file: &str,
    kind: &str,
    cache: &StageCache<V>,
) -> Result<(), WaslaError> {
    let entries = entries_json(cache.entries());
    let doc = Json::Obj(vec![
        ("version".to_string(), CACHE_VERSION.to_json()),
        ("kind".to_string(), kind.to_json()),
        ("checksum".to_string(), checksum(&entries).to_json()),
        ("entries".to_string(), entries),
    ]);
    let path = dir.join(file);
    let tmp = dir.join(format!("{file}.tmp"));
    std::fs::write(&tmp, json::to_string(&doc))
        .map_err(|e| WaslaError::io(tmp.display().to_string(), &e))?;
    std::fs::rename(&tmp, &path).map_err(|e| WaslaError::io(path.display().to_string(), &e))
}

fn load_cache<V: FromJson>(
    dir: &Path,
    file: &str,
    kind: &str,
    notes: &mut Vec<DegradedNote>,
) -> Result<StageCache<V>, WaslaError> {
    let path = dir.join(file);
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(StageCache::new()),
        Err(e) => return Err(WaslaError::io(path.display().to_string(), &e)),
    };
    match decode_cache(&raw, kind) {
        Ok(cache) => Ok(cache),
        Err(_reason) => {
            let quarantined = quarantine(&path)?;
            notes.push(DegradedNote::CacheQuarantined { path: quarantined });
            Ok(StageCache::new())
        }
    }
}

/// Decodes and validates one snapshot; any `Err` means "quarantine".
fn decode_cache<V: FromJson>(raw: &str, kind: &str) -> Result<StageCache<V>, String> {
    let doc = Json::parse(raw).map_err(|e| e.to_string())?;
    let field = |name: &str| {
        doc.field(name)
            .ok_or_else(|| format!("missing field {name:?}"))
    };
    let version = u64::from_json(field("version")?).map_err(|e| e.to_string())?;
    if version != CACHE_VERSION {
        return Err(format!("version skew: {version} != {CACHE_VERSION}"));
    }
    let file_kind = String::from_json(field("kind")?).map_err(|e| e.to_string())?;
    if file_kind != kind {
        return Err(format!("kind mismatch: {file_kind:?} != {kind:?}"));
    }
    let declared = u64::from_json(field("checksum")?).map_err(|e| e.to_string())?;
    let entries = field("entries")?;
    let actual = checksum(entries);
    if declared != actual {
        return Err(format!("checksum mismatch: {declared} != {actual}"));
    }
    let rows = match entries {
        Json::Arr(rows) => rows,
        _ => return Err("entries must be an array".to_string()),
    };
    let mut decoded = Vec::with_capacity(rows.len());
    for row in rows {
        let pair = match row {
            Json::Arr(pair) if pair.len() == 2 => pair,
            _ => return Err("each entry must be a [key, value] pair".to_string()),
        };
        let key = u64::from_json(&pair[0]).map_err(|e| e.to_string())?;
        let value = V::from_json(&pair[1]).map_err(|e| e.to_string())?;
        decoded.push((key, value));
    }
    Ok(StageCache::from_entries(decoded))
}

/// Moves a damaged snapshot to `<file>.quarantined`. Failing to move
/// it is the one fatal path: the bad file would otherwise be re-read
/// (and re-rejected) forever.
fn quarantine(path: &Path) -> Result<String, WaslaError> {
    let quarantine_path = PathBuf::from(format!("{}.quarantined", path.display()));
    std::fs::rename(path, &quarantine_path)
        .map_err(|e| WaslaError::io(quarantine_path.display().to_string(), &e))?;
    Ok(quarantine_path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wasla-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let dir = scratch_dir("roundtrip");
        let mut cache: StageCache<u64> = StageCache::new();
        cache.insert(u64::MAX, 1); // extreme keys must survive JSON
        cache.insert(0x1234_5678_9abc_def0, 2);
        save_cache(&dir, "test.json", "test", &cache).unwrap();
        let mut notes = Vec::new();
        let back: StageCache<u64> = load_cache(&dir, "test.json", "test", &mut notes).unwrap();
        assert!(notes.is_empty());
        assert_eq!(back.entries(), cache.entries());
        assert!(!dir.join("test.json.tmp").exists(), "tmp file left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let dir = scratch_dir("missing");
        let mut notes = Vec::new();
        let cache: StageCache<u64> = load_cache(&dir, "nope.json", "test", &mut notes).unwrap();
        assert!(cache.is_empty());
        assert!(notes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_is_quarantined_and_rebuilt_cold() {
        let dir = scratch_dir("damage");
        let mut cache: StageCache<u64> = StageCache::new();
        cache.insert(1, 10);
        let cases: Vec<(&str, String)> = vec![
            ("garbage", "{not json".to_string()),
            (
                "version skew",
                r#"{"version": 999, "kind": "test", "checksum": 0, "entries": []}"#.to_string(),
            ),
            (
                "kind mismatch",
                r#"{"version": 1, "kind": "other", "checksum": 0, "entries": []}"#.to_string(),
            ),
            ("checksum mismatch", {
                save_cache(&dir, "test.json", "test", &cache).unwrap();
                let good = std::fs::read_to_string(dir.join("test.json")).unwrap();
                good.replace("[[1,10]]", "[[1,99]]")
            }),
        ];
        for (label, contents) in cases {
            let _ = std::fs::remove_file(dir.join("test.json.quarantined"));
            std::fs::write(dir.join("test.json"), contents).unwrap();
            let mut notes = Vec::new();
            let back: StageCache<u64> = load_cache(&dir, "test.json", "test", &mut notes).unwrap();
            assert!(back.is_empty(), "{label}: cache must rebuild cold");
            assert_eq!(notes.len(), 1, "{label}: expected a quarantine note");
            assert!(
                matches!(&notes[0], DegradedNote::CacheQuarantined { path }
                    if path.ends_with("test.json.quarantined")),
                "{label}: got {:?}",
                notes[0]
            );
            assert!(dir.join("test.json.quarantined").exists(), "{label}");
            assert!(
                !dir.join("test.json").exists(),
                "{label}: damage left in place"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blocked_quarantine_is_a_typed_io_error() {
        let dir = scratch_dir("blocked");
        std::fs::write(dir.join("test.json"), "{not json").unwrap();
        // A non-empty directory at the quarantine path blocks the rename.
        let blocker = dir.join("test.json.quarantined");
        std::fs::create_dir_all(blocker.join("occupied")).unwrap();
        let mut notes = Vec::new();
        let err = load_cache::<u64>(&dir, "test.json", "test", &mut notes).unwrap_err();
        assert_eq!(err.exit_code(), 3, "quarantine failure must map to I/O");
        assert!(
            matches!(&err, WaslaError::Io { path, .. } if path.ends_with("test.json.quarantined")),
            "error must name the quarantine path, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
